//! Pluggable search strategies over the joint multi-axis design space.
//!
//! [`Explorer::joint_sweep`](crate::Explorer::joint_sweep) enumerates
//! and evaluates *every* statically-legal joint point — fine for the
//! 42-point unroll space, wasteful for a joint space that multiplies
//! interchange, tiling and flag axes in. A [`SearchStrategy`] instead
//! decides which points deserve a tier-1 (transform + behavioral
//! estimate) evaluation, using the tier-0 joint analytic bands
//! ([`defacto_synth::JointAnalyticModel`]) to rule subtrees out:
//!
//! - [`Exhaustive`] — evaluates everything; the ground-truth baseline;
//! - [`BranchAndBound`] — seeds at the Figure-2 saturation point,
//!   orders the remaining candidates by their tier-0 cycle lower bound
//!   and prunes every point whose band *proves* it cannot beat the
//!   incumbent. Selections are **bit-identical** to the exhaustive
//!   sweep (see the soundness argument on [`BranchAndBound`]);
//! - [`CoordinateDescent`] — walks one axis at a time from the
//!   saturation seed, moving on strict improvement, and reports a
//!   measured optimality-gap bound instead of an exactness proof.
//!
//! Strategies are pure decision procedures: all evaluation, bounding
//! and trace recording goes through a [`StrategyContext`] provided by
//! the explorer, so the decision sequence — and therefore the trace and
//! the selection — is deterministic at any worker count.

use crate::error::Result;
use crate::exhaustive::best_joint_performance;
use crate::explorer::EvaluatedJointDesign;
use crate::space::{Axis, JointPoint};
use defacto_synth::AnalyticBand;
use std::cmp::Ordering;
use std::collections::{HashMap, HashSet};

/// Which search strategy drives a guided joint exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StrategyKind {
    /// Evaluate every point of the space (the ground-truth baseline).
    Exhaustive,
    /// Per-axis local descent from the saturation seed; reports an
    /// optimality-gap bound.
    CoordinateDescent,
    /// Bound-and-prune with tier-0 bands; selections bit-identical to
    /// [`StrategyKind::Exhaustive`] (the default).
    #[default]
    BranchAndBound,
}

impl StrategyKind {
    /// Every strategy, in documentation order.
    pub const ALL: [StrategyKind; 3] = [
        StrategyKind::Exhaustive,
        StrategyKind::CoordinateDescent,
        StrategyKind::BranchAndBound,
    ];

    /// Stable kebab-case label, for JSON output and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            StrategyKind::Exhaustive => "exhaustive",
            StrategyKind::CoordinateDescent => "coordinate-descent",
            StrategyKind::BranchAndBound => "branch-and-bound",
        }
    }
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for StrategyKind {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s {
            "exhaustive" => Ok(StrategyKind::Exhaustive),
            "coordinate-descent" => Ok(StrategyKind::CoordinateDescent),
            "branch-and-bound" => Ok(StrategyKind::BranchAndBound),
            other => Err(format!(
                "unknown strategy `{other}` (expected exhaustive|coordinate-descent|branch-and-bound)"
            )),
        }
    }
}

/// The evaluation services a strategy runs against. Implemented by the
/// explorer (tier-1 evaluations fan out across its engine's workers;
/// tier-0 bands come from the joint analytic model; recording goes to
/// the trace sink) and by lightweight mocks in tests.
pub trait StrategyContext {
    /// Every point of the space, in enumeration order.
    fn points(&self) -> &[JointPoint];

    /// The Figure-2 saturation seed as a joint point, when it is a
    /// member of the space.
    fn seed(&self) -> Option<JointPoint>;

    /// Tier-1 evaluate a batch, order-preserving (workers may fan out;
    /// results come back in argument order).
    ///
    /// # Errors
    ///
    /// Propagates the earliest (in argument order) evaluation failure.
    fn evaluate_batch(&self, points: &[JointPoint]) -> Result<Vec<EvaluatedJointDesign>>;

    /// Tier-0 bands for a batch, order-preserving. `None` per point
    /// when no analytic model admits it — such points can never be
    /// pruned.
    fn bound_batch(&self, points: &[JointPoint]) -> Vec<Option<AnalyticBand>>;

    /// Record one tier-1 step (a [`TraceEvent::StrategyStep`]
    /// (crate::TraceEvent::StrategyStep)); `incumbent` is the best
    /// fitting cycle count *before* this step.
    fn record_step(&self, design: &EvaluatedJointDesign, incumbent: Option<u64>);

    /// Record one bound-based prune (a [`TraceEvent::BoundPrune`]
    /// (crate::TraceEvent::BoundPrune)); `threshold` is the cycle bound
    /// `band.cycles_lo` exceeded, `None` for a capacity prune.
    fn record_prune(&self, point: &JointPoint, band: &AnalyticBand, threshold: Option<u64>);
}

/// What a strategy run did and found.
#[derive(Debug, Clone)]
pub struct GuidedOutcome {
    /// Every tier-1-evaluated design, in decision order. The selection
    /// is [`best_joint_performance`] over this set.
    pub evaluated: Vec<EvaluatedJointDesign>,
    /// Points excluded by a tier-0 bound without a tier-1 evaluation.
    pub pruned: u64,
    /// Upper bound on how many cycles the selection may be worse than
    /// the true optimum. `Some(0)` for strategies whose selection is
    /// proven exact ([`Exhaustive`], [`BranchAndBound`]); a measured
    /// bound for [`CoordinateDescent`]; `None` when no bound exists
    /// (the strategy selected nothing that fits).
    pub gap_cycles: Option<u64>,
}

/// A search strategy over the joint space (see the module docs).
pub trait SearchStrategy: std::fmt::Debug {
    /// Which strategy this is.
    fn kind(&self) -> StrategyKind;

    /// Run the search to completion against `cx`.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures (a transform failure on an
    /// enumerated point is a membership-soundness bug, never skipped).
    fn run(&self, cx: &dyn StrategyContext) -> Result<GuidedOutcome>;
}

/// The strategy implementation for `kind`.
pub fn strategy_for(kind: StrategyKind) -> Box<dyn SearchStrategy> {
    match kind {
        StrategyKind::Exhaustive => Box::new(Exhaustive),
        StrategyKind::CoordinateDescent => Box::new(CoordinateDescent),
        StrategyKind::BranchAndBound => Box::new(BranchAndBound),
    }
}

/// Running best-fitting-cycles tracker; commits steps to the trace in
/// decision order.
#[derive(Debug, Default)]
struct Incumbent(Option<u64>);

impl Incumbent {
    fn commit(&mut self, cx: &dyn StrategyContext, d: &EvaluatedJointDesign) {
        cx.record_step(d, self.0);
        if d.estimate.fits {
            self.0 = Some(
                self.0
                    .map_or(d.estimate.cycles, |c| c.min(d.estimate.cycles)),
            );
        }
    }
}

/// Evaluate every point of the space, in enumeration order.
#[derive(Debug, Clone, Copy, Default)]
pub struct Exhaustive;

impl SearchStrategy for Exhaustive {
    fn kind(&self) -> StrategyKind {
        StrategyKind::Exhaustive
    }

    fn run(&self, cx: &dyn StrategyContext) -> Result<GuidedOutcome> {
        let evaluated = cx.evaluate_batch(cx.points())?;
        let mut incumbent = Incumbent::default();
        for d in &evaluated {
            incumbent.commit(cx, d);
        }
        Ok(GuidedOutcome {
            evaluated,
            pruned: 0,
            gap_cycles: Some(0),
        })
    }
}

/// Best-first branch-and-bound over the joint space.
///
/// One parallel tier-0 pass prices every point, then:
///
/// 1. points whose band proves `slices_lo > capacity`
///    (`!fits_possible`) are pruned — their true estimate has
///    `fits == false`, so [`best_joint_performance`] would filter them
///    anyway;
/// 2. the saturation seed and every point the model declined are
///    evaluated unconditionally;
/// 3. the rest are visited in `(cycles_lo, enumeration index)` order;
///    a point is pruned when `cycles_lo > T`, where `T` is the minimum
///    of the exact cycles of the best fitting design evaluated so far
///    and the smallest `cycles_hi` among certainly-fitting bands. Once
///    one sorted candidate prunes, every later one does too.
///
/// **Soundness (bit-identity):** suppose the exhaustive winner `w` were
/// pruned. A capacity prune contradicts `w.fits`. A cycle prune gives
/// `w.cycles ≥ w.cycles_lo > T` (the band brackets the true estimate);
/// but `T` is either the exact cycle count of some fitting design, or a
/// certainly-fitting band's `cycles_hi` ≥ that point's true cycles — in
/// both cases some fitting design has cycles ≤ `T` < `w.cycles`,
/// contradicting `w`'s optimality (strictly, so ties are impossible).
/// Hence the winner is always evaluated, and
/// [`best_joint_performance`] — a pure minimum over the evaluated set —
/// returns exactly the exhaustive selection.
#[derive(Debug, Clone, Copy, Default)]
pub struct BranchAndBound;

impl SearchStrategy for BranchAndBound {
    fn kind(&self) -> StrategyKind {
        StrategyKind::BranchAndBound
    }

    fn run(&self, cx: &dyn StrategyContext) -> Result<GuidedOutcome> {
        let points = cx.points();
        let bands = cx.bound_batch(points);
        debug_assert_eq!(bands.len(), points.len());

        // Capacity prunes first, in enumeration order.
        let mut pruned: u64 = 0;
        let mut capacity_pruned = vec![false; points.len()];
        for (i, band) in bands.iter().enumerate() {
            if let Some(b) = band {
                if !b.fits_possible {
                    cx.record_prune(&points[i], b, None);
                    capacity_pruned[i] = true;
                    pruned += 1;
                }
            }
        }

        let seed_idx = cx
            .seed()
            .and_then(|s| points.iter().position(|p| *p == s))
            .filter(|&i| !capacity_pruned[i]);

        // Unconditional head: the seed, then every surviving point the
        // model declined (no band ⇒ no bound ⇒ must evaluate).
        let mut head: Vec<usize> = seed_idx.into_iter().collect();
        head.extend(
            (0..points.len())
                .filter(|&i| bands[i].is_none() && !capacity_pruned[i] && Some(i) != seed_idx),
        );

        // The bounded candidates, cheapest lower bound first; ties go to
        // enumeration order. Sorting makes the prune condition monotone
        // along the walk: once one candidate's bound exceeds the
        // threshold, every later one's does too.
        let mut ranked: Vec<usize> = (0..points.len())
            .filter(|&i| bands[i].is_some() && !capacity_pruned[i] && Some(i) != seed_idx)
            .collect();
        ranked.sort_by_key(|&i| (bands[i].as_ref().expect("ranked have bands").cycles_lo, i));

        // Threshold seed: any certainly-fitting band's upper cycle bound
        // already upper-bounds the winner's cycles, before any tier-1
        // evaluation has run.
        let certain_hi: Option<u64> = bands
            .iter()
            .flatten()
            .filter(|b| b.fits_certain)
            .map(|b| b.cycles_hi)
            .min();

        let mut evaluated = Vec::new();
        let mut incumbent = Incumbent::default();
        let head_points: Vec<JointPoint> = head.iter().map(|&i| points[i].clone()).collect();
        for d in cx.evaluate_batch(&head_points)? {
            incumbent.commit(cx, &d);
            evaluated.push(d);
        }

        for (pos, &i) in ranked.iter().enumerate() {
            let threshold = match (certain_hi, incumbent.0) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            let b = bands[i].as_ref().expect("ranked have bands");
            if let Some(t) = threshold {
                if b.cycles_lo > t {
                    for &j in &ranked[pos..] {
                        cx.record_prune(
                            &points[j],
                            bands[j].as_ref().expect("ranked have bands"),
                            Some(t),
                        );
                        pruned += 1;
                    }
                    break;
                }
            }
            let mut batch = cx.evaluate_batch(std::slice::from_ref(&points[i]))?;
            let d = batch.pop().expect("one result per point");
            incumbent.commit(cx, &d);
            evaluated.push(d);
        }

        Ok(GuidedOutcome {
            evaluated,
            pruned,
            gap_cycles: Some(0),
        })
    }
}

/// Per-axis local descent from the saturation seed.
///
/// Each pass visits the axes in a fixed order (unroll, interchange,
/// tile, narrow, pack); for each axis the current point's neighbors —
/// the space members differing from it along that axis only — are
/// band-pruned against the current design, batch-evaluated, and the
/// walk moves on strict improvement under the selection order (fitting
/// first, then cycles, slices, coordinate). The walk is strictly
/// decreasing in a total order over a finite set, so it terminates; it
/// stops after the first full pass with no move.
///
/// The reported [`GuidedOutcome::gap_cycles`] is
/// `selected.cycles − min(cycles_lo)` over the whole space's bands —
/// the true optimum's cycles are at least that minimum (every band
/// brackets its point's true estimate), so the selection is provably
/// within `gap_cycles` of optimal. A point the model declines drops the
/// floor to zero (its true cycles are unbounded below).
#[derive(Debug, Clone, Copy, Default)]
pub struct CoordinateDescent;

/// Total selection order: fitting designs first, then (cycles, slices),
/// then the joint coordinate — the [`best_joint_performance`] order
/// extended to non-fitting designs so a not-yet-fitting walk can still
/// make progress.
fn descent_rank(a: &EvaluatedJointDesign, b: &EvaluatedJointDesign) -> Ordering {
    (!a.estimate.fits, a.estimate.cycles, a.estimate.slices)
        .cmp(&(!b.estimate.fits, b.estimate.cycles, b.estimate.slices))
        .then_with(|| a.point.cmp(&b.point))
}

/// The unroll factor applied to each *original* loop level:
/// `p.unroll[k]` unrolls original level `p.permutation[k]`.
fn original_factors(p: &JointPoint) -> Vec<i64> {
    let mut orig = vec![1; p.unroll.len()];
    for (k, &l) in p.permutation.iter().enumerate() {
        if let Some(slot) = orig.get_mut(l) {
            *slot = p.unroll[k];
        }
    }
    orig
}

/// Indices of `cur`'s neighbors along `axis`, in enumeration order.
fn axis_neighbors(points: &[JointPoint], cur: &JointPoint, axis: Axis) -> Vec<usize> {
    points
        .iter()
        .enumerate()
        .filter(|(_, q)| {
            *q != cur
                && match axis {
                    Axis::Unroll => {
                        q.permutation == cur.permutation
                            && q.tile == cur.tile
                            && q.narrow == cur.narrow
                            && q.pack == cur.pack
                    }
                    Axis::Interchange => {
                        q.permutation != cur.permutation
                            && q.tile == cur.tile
                            && q.narrow == cur.narrow
                            && q.pack == cur.pack
                            && original_factors(q) == original_factors(cur)
                    }
                    // Tiled points live at all-ones unroll under the
                    // identity order, so the tile axis hops between tile
                    // choices (and back out to the untiled baseline).
                    Axis::Tile => {
                        q.tile != cur.tile
                            && q.narrow == cur.narrow
                            && q.pack == cur.pack
                            && (q.tile.is_some()
                                || (q.is_unroll_only() && q.unroll.iter().all(|&f| f == 1)))
                    }
                    Axis::Narrow => {
                        q.narrow != cur.narrow
                            && q.unroll == cur.unroll
                            && q.permutation == cur.permutation
                            && q.tile == cur.tile
                            && q.pack == cur.pack
                    }
                    Axis::Pack => {
                        q.pack != cur.pack
                            && q.unroll == cur.unroll
                            && q.permutation == cur.permutation
                            && q.tile == cur.tile
                            && q.narrow == cur.narrow
                    }
                }
        })
        .map(|(i, _)| i)
        .collect()
}

impl SearchStrategy for CoordinateDescent {
    fn kind(&self) -> StrategyKind {
        StrategyKind::CoordinateDescent
    }

    fn run(&self, cx: &dyn StrategyContext) -> Result<GuidedOutcome> {
        let points = cx.points();
        if points.is_empty() {
            return Ok(GuidedOutcome {
                evaluated: Vec::new(),
                pruned: 0,
                gap_cycles: None,
            });
        }
        let bands = cx.bound_batch(points);

        // With no model at all the descent cannot bound a gap; fall
        // back to the exhaustive baseline, which is exact.
        if bands.iter().all(Option::is_none) {
            return Exhaustive.run(cx);
        }

        // The first enumerated point is the all-ones identity baseline.
        let seed_idx = cx
            .seed()
            .and_then(|s| points.iter().position(|p| *p == s))
            .unwrap_or(0);

        let mut designs: HashMap<usize, EvaluatedJointDesign> = HashMap::new();
        let mut order: Vec<usize> = Vec::new();
        let mut pruned_set: HashSet<usize> = HashSet::new();
        let mut incumbent = Incumbent::default();

        let eval_indices = |idxs: &[usize],
                            designs: &mut HashMap<usize, EvaluatedJointDesign>,
                            order: &mut Vec<usize>,
                            incumbent: &mut Incumbent|
         -> Result<()> {
            let fresh: Vec<usize> = idxs
                .iter()
                .copied()
                .filter(|i| !designs.contains_key(i))
                .collect();
            let batch: Vec<JointPoint> = fresh.iter().map(|&i| points[i].clone()).collect();
            for (i, d) in fresh.iter().zip(cx.evaluate_batch(&batch)?) {
                incumbent.commit(cx, &d);
                designs.insert(*i, d);
                order.push(*i);
            }
            Ok(())
        };

        eval_indices(&[seed_idx], &mut designs, &mut order, &mut incumbent)?;
        let mut cur = seed_idx;

        loop {
            let mut moved = false;
            for axis in Axis::ALL {
                let nbrs = axis_neighbors(points, &points[cur], axis);
                if nbrs.is_empty() {
                    continue;
                }
                let cur_d = designs[&cur].clone();
                let mut candidates = Vec::new();
                for i in nbrs {
                    if designs.contains_key(&i) {
                        candidates.push(i);
                        continue;
                    }
                    match &bands[i] {
                        Some(b) if !b.fits_possible => {
                            if pruned_set.insert(i) {
                                cx.record_prune(&points[i], b, None);
                            }
                        }
                        Some(b) if cur_d.estimate.fits && b.cycles_lo > cur_d.estimate.cycles => {
                            if pruned_set.insert(i) {
                                cx.record_prune(&points[i], b, Some(cur_d.estimate.cycles));
                            }
                        }
                        _ => candidates.push(i),
                    }
                }
                eval_indices(&candidates, &mut designs, &mut order, &mut incumbent)?;
                let best = candidates
                    .iter()
                    .copied()
                    .chain(std::iter::once(cur))
                    .min_by(|&a, &b| descent_rank(&designs[&a], &designs[&b]))
                    .expect("candidate set includes the current point");
                if best != cur {
                    cur = best;
                    moved = true;
                }
            }
            if !moved {
                break;
            }
        }

        let evaluated: Vec<EvaluatedJointDesign> =
            order.iter().map(|i| designs[i].clone()).collect();
        let gap_cycles = best_joint_performance(&evaluated).map(|sel| {
            let floor = bands
                .iter()
                .map(|b| match b {
                    Some(b) if b.fits_possible => b.cycles_lo,
                    // A missing or capacity-pruned band cannot lower-
                    // bound the optimum... a capacity-pruned point can
                    // never be the optimum, so only a missing band
                    // forces the floor to zero.
                    Some(_) => u64::MAX,
                    None => 0,
                })
                .min()
                .unwrap_or(0);
            sel.estimate.cycles.saturating_sub(floor)
        });
        Ok(GuidedOutcome {
            evaluated,
            pruned: pruned_set.len() as u64,
            gap_cycles,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defacto_synth::Estimate;
    use std::cell::RefCell;

    fn point(u: i64, narrow: bool) -> JointPoint {
        JointPoint {
            unroll: vec![u],
            permutation: vec![0],
            tile: None,
            narrow,
            pack: false,
        }
    }

    fn estimate(cycles: u64, slices: u32, fits: bool) -> Estimate {
        Estimate {
            cycles,
            slices,
            memory_busy_cycles: 0,
            compute_busy_cycles: 0,
            bits_from_memory: 0,
            registers: 0,
            balance: 1.0,
            clock_ns: 40,
            fits,
            provenance: Default::default(),
        }
    }

    fn band(lo: u64, hi: u64, fits_possible: bool, fits_certain: bool) -> AnalyticBand {
        AnalyticBand {
            cycles_lo: lo,
            cycles_hi: hi,
            slices_lo: 1,
            slices_hi: 1,
            mem_busy_lo: 0,
            mem_busy_hi: u64::MAX,
            comp_busy_lo: 0,
            comp_busy_hi: u64::MAX,
            bits_lo: 0,
            bits_hi: u64::MAX,
            registers: 0,
            balance_lo: 0.0,
            balance_hi: f64::INFINITY,
            fits_possible,
            fits_certain,
            clock_ns: 40,
        }
    }

    /// A scripted space: per-point exact estimates and optional bands.
    struct MockCx {
        points: Vec<JointPoint>,
        estimates: Vec<Estimate>,
        bands: Vec<Option<AnalyticBand>>,
        seed: Option<JointPoint>,
        evaluations: RefCell<u64>,
        incumbents: RefCell<Vec<Option<u64>>>,
        prunes: RefCell<Vec<JointPoint>>,
    }

    impl MockCx {
        fn new(
            rows: Vec<(JointPoint, Estimate, Option<AnalyticBand>)>,
            seed: Option<JointPoint>,
        ) -> MockCx {
            let (points, rest): (Vec<_>, Vec<_>) =
                rows.into_iter().map(|(p, e, b)| (p, (e, b))).unzip();
            let (estimates, bands) = rest.into_iter().unzip();
            MockCx {
                points,
                estimates,
                bands,
                seed,
                evaluations: RefCell::new(0),
                incumbents: RefCell::new(Vec::new()),
                prunes: RefCell::new(Vec::new()),
            }
        }

        fn exhaustive_winner(&self) -> EvaluatedJointDesign {
            let all: Vec<EvaluatedJointDesign> = self
                .points
                .iter()
                .zip(&self.estimates)
                .map(|(p, e)| EvaluatedJointDesign {
                    point: p.clone(),
                    estimate: e.clone(),
                })
                .collect();
            best_joint_performance(&all)
                .expect("a fitting point")
                .clone()
        }
    }

    impl StrategyContext for MockCx {
        fn points(&self) -> &[JointPoint] {
            &self.points
        }

        fn seed(&self) -> Option<JointPoint> {
            self.seed.clone()
        }

        fn evaluate_batch(&self, points: &[JointPoint]) -> Result<Vec<EvaluatedJointDesign>> {
            *self.evaluations.borrow_mut() += points.len() as u64;
            Ok(points
                .iter()
                .map(|p| {
                    let i = self.points.iter().position(|q| q == p).expect("member");
                    EvaluatedJointDesign {
                        point: p.clone(),
                        estimate: self.estimates[i].clone(),
                    }
                })
                .collect())
        }

        fn bound_batch(&self, points: &[JointPoint]) -> Vec<Option<AnalyticBand>> {
            points
                .iter()
                .map(|p| {
                    let i = self.points.iter().position(|q| q == p).expect("member");
                    self.bands[i].clone()
                })
                .collect()
        }

        fn record_step(&self, _design: &EvaluatedJointDesign, incumbent: Option<u64>) {
            self.incumbents.borrow_mut().push(incumbent);
        }

        fn record_prune(&self, point: &JointPoint, _band: &AnalyticBand, _threshold: Option<u64>) {
            self.prunes.borrow_mut().push(point.clone());
        }
    }

    #[test]
    fn strategy_kind_labels_round_trip() {
        for kind in StrategyKind::ALL {
            assert_eq!(kind.label().parse::<StrategyKind>().unwrap(), kind);
            assert_eq!(strategy_for(kind).kind(), kind);
        }
        let err = "sideways".parse::<StrategyKind>().unwrap_err();
        assert_eq!(
            err,
            "unknown strategy `sideways` (expected exhaustive|coordinate-descent|branch-and-bound)"
        );
        assert_eq!(StrategyKind::default(), StrategyKind::BranchAndBound);
    }

    #[test]
    fn exhaustive_evaluates_every_point_with_monotone_incumbent() {
        let cx = MockCx::new(
            vec![
                (point(1, false), estimate(500, 10, true), None),
                (point(2, false), estimate(300, 20, true), None),
                (point(4, false), estimate(400, 30, true), None),
            ],
            None,
        );
        let out = Exhaustive.run(&cx).unwrap();
        assert_eq!(out.evaluated.len(), 3);
        assert_eq!(out.pruned, 0);
        assert_eq!(out.gap_cycles, Some(0));
        assert_eq!(*cx.incumbents.borrow(), vec![None, Some(500), Some(300)]);
    }

    #[test]
    fn branch_and_bound_prunes_and_matches_exhaustive() {
        // The seed (u=2) is good; u=8's lower bound (450) exceeds both
        // the seed's exact 300 and u=4's certain upper bound 420.
        let cx = MockCx::new(
            vec![
                (
                    point(1, false),
                    estimate(500, 10, true),
                    Some(band(480, 520, true, true)),
                ),
                (
                    point(2, false),
                    estimate(300, 20, true),
                    Some(band(280, 330, true, true)),
                ),
                (
                    point(4, false),
                    estimate(400, 30, true),
                    Some(band(380, 420, true, true)),
                ),
                (
                    point(8, false),
                    estimate(470, 40, true),
                    Some(band(450, 490, true, true)),
                ),
            ],
            Some(point(2, false)),
        );
        let out = BranchAndBound.run(&cx).unwrap();
        let selected = best_joint_performance(&out.evaluated).unwrap();
        assert_eq!(selected.point, cx.exhaustive_winner().point);
        assert_eq!(selected.estimate, cx.exhaustive_winner().estimate);
        assert_eq!(out.gap_cycles, Some(0));
        // u=1 (lo 480 > 300) and u=8 (lo 450 > 300) prune; only the
        // seed and u=4 (lo 380, but 380 > 330? no: threshold is
        // min(exact 300, certain_hi 330) = 300, and 380 > 300) — so
        // u=4 prunes too: one evaluation total.
        assert_eq!(out.evaluated.len(), 1);
        assert_eq!(out.pruned, 3);
        assert_eq!(*cx.evaluations.borrow(), 1);
        // The pruned set never contains the selection.
        assert!(cx.prunes.borrow().iter().all(|p| *p != selected.point));
    }

    #[test]
    fn branch_and_bound_capacity_prune_is_sound() {
        // The fastest band belongs to a point that cannot fit; it must
        // be pruned on capacity and the fitting point selected.
        let cx = MockCx::new(
            vec![
                (
                    point(1, false),
                    estimate(100, 99999, false),
                    Some(band(90, 110, false, false)),
                ),
                (
                    point(2, false),
                    estimate(300, 20, true),
                    Some(band(280, 330, true, true)),
                ),
            ],
            None,
        );
        let out = BranchAndBound.run(&cx).unwrap();
        let selected = best_joint_performance(&out.evaluated).unwrap();
        assert_eq!(selected.point, point(2, false));
        assert_eq!(out.pruned, 1);
    }

    #[test]
    fn branch_and_bound_without_model_degrades_to_exhaustive() {
        let cx = MockCx::new(
            vec![
                (point(1, false), estimate(500, 10, true), None),
                (point(2, false), estimate(300, 20, true), None),
            ],
            None,
        );
        let out = BranchAndBound.run(&cx).unwrap();
        assert_eq!(out.evaluated.len(), 2);
        assert_eq!(out.pruned, 0);
        assert_eq!(
            best_joint_performance(&out.evaluated).unwrap().point,
            point(2, false)
        );
    }

    #[test]
    fn coordinate_descent_walks_axes_and_bounds_the_gap() {
        // Optimum (u=4, narrow) is two moves from the seed: unroll
        // descent to u=4, then the narrow flip.
        let rows = vec![
            (
                point(1, false),
                estimate(500, 10, true),
                Some(band(480, 520, true, true)),
            ),
            (
                point(2, false),
                estimate(400, 20, true),
                Some(band(380, 430, true, true)),
            ),
            (
                point(4, false),
                estimate(300, 30, true),
                Some(band(280, 330, true, true)),
            ),
            (
                point(1, true),
                estimate(450, 10, true),
                Some(band(430, 470, true, true)),
            ),
            (
                point(2, true),
                estimate(350, 20, true),
                Some(band(330, 380, true, true)),
            ),
            (
                point(4, true),
                estimate(250, 30, true),
                Some(band(230, 280, true, true)),
            ),
        ];
        let cx = MockCx::new(rows, Some(point(1, false)));
        let out = CoordinateDescent.run(&cx).unwrap();
        let selected = best_joint_performance(&out.evaluated).unwrap();
        assert_eq!(selected.point, point(4, true));
        // Gap bound: selected 250 − floor 230 = 20, and the true gap
        // (0) is within it.
        assert_eq!(out.gap_cycles, Some(20));
        // Incumbents were monotone non-increasing.
        let incs: Vec<Option<u64>> = cx.incumbents.borrow().clone();
        for w in incs.windows(2) {
            if let (Some(a), Some(b)) = (w[0], w[1]) {
                assert!(b <= a, "incumbent went up: {incs:?}");
            }
        }
    }

    #[test]
    fn coordinate_descent_gap_floors_at_zero_without_full_coverage() {
        // One point has no band: the floor drops to zero and the gap
        // equals the selection's own cycles.
        let cx = MockCx::new(
            vec![
                (
                    point(1, false),
                    estimate(500, 10, true),
                    Some(band(480, 520, true, true)),
                ),
                (point(2, false), estimate(300, 20, true), None),
            ],
            None,
        );
        let out = CoordinateDescent.run(&cx).unwrap();
        let selected = best_joint_performance(&out.evaluated).unwrap();
        assert_eq!(out.gap_cycles, Some(selected.estimate.cycles));
    }
}
