//! Error type for design space exploration.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, DseError>;

/// Errors raised while exploring a design space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DseError {
    /// The kernel body is not a perfect loop nest.
    NotPerfectNest,
    /// The kernel has no loops to unroll.
    NoLoops,
    /// A transformation failed while evaluating a design point.
    Xform(defacto_xform::XformError),
    /// An unroll vector outside the design space was requested.
    OutsideSpace(String),
}

impl fmt::Display for DseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DseError::NotPerfectNest => write!(f, "kernel body is not a perfect loop nest"),
            DseError::NoLoops => write!(f, "kernel has no loops to explore"),
            DseError::Xform(e) => write!(f, "transformation failed: {e}"),
            DseError::OutsideSpace(m) => write!(f, "unroll vector outside design space: {m}"),
        }
    }
}

impl std::error::Error for DseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DseError::Xform(e) => Some(e),
            _ => None,
        }
    }
}

impl From<defacto_xform::XformError> for DseError {
    fn from(e: defacto_xform::XformError) -> Self {
        DseError::Xform(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(!DseError::NoLoops.to_string().is_empty());
        assert!(DseError::Xform(defacto_xform::XformError::NotPerfectNest)
            .to_string()
            .contains("transformation"));
    }
}
