//! Incremental re-exploration across kernel edits.
//!
//! An [`IncrementalSession`] owns what one `defacto watch` invocation
//! needs to re-answer "which design?" quickly after every edit of a
//! kernel file:
//!
//! - a persistent content-addressed store ([`PersistentCache`]) shared
//!   across processes, so estimates survive restarts and structurally
//!   identical kernels (alpha renames, reordered declarations, shifted
//!   bounds) hit without re-evaluating;
//! - a shared [`EvalEngine`] whose memo cache persists across edits
//!   within the session;
//! - the previous revision's canonical form and prepared artifacts, so a
//!   localized edit re-runs only the invalidated analyses
//!   ([`PreparedKernel::prepare_reusing`]) and the search warm-starts
//!   from the previous selection's surroundings.
//!
//! Soundness: the warm start only *warms caches*. The Figure-2 search
//! replays serially over them, so the visited sequence, selected design
//! and termination reason are bit-identical to a cold run — the
//! [`TraceEvent::WarmStart`] marker emitted before the search lets the
//! auditor (and the tests) verify that independently.

use crate::engine::EvalEngine;
use crate::error::Result;
use crate::explorer::{Explorer, Fidelity};
use crate::search::SearchResult;
use crate::trace::{NullSink, TraceEvent, TraceSink};
use defacto_cache::{CacheTelemetry, PersistentCache};
use defacto_ir::{canonicalize, CanonicalKernel, Kernel};
use defacto_synth::{FpgaDevice, MemoryModel};
use defacto_xform::{PreparedKernel, UnrollVector};
use std::sync::Arc;
use std::time::Instant;

/// What one incremental re-exploration did, beyond the search result.
#[derive(Debug)]
pub struct IncrementalOutcome {
    /// The search result (selection, visited points, stats). The stats'
    /// `persist_hits`/`persist_misses` report how much the store
    /// answered.
    pub result: SearchResult,
    /// True when a previous run's selection record for this exact
    /// canonical kernel and context seeded a warm start.
    pub warm: bool,
    /// Canonical subtree paths whose hashes changed relative to the
    /// previous revision (empty on the first revision, or when the edit
    /// was structure-preserving).
    pub changed: Vec<String>,
    /// True when the previous revision's prepared artifacts were reused
    /// (the normalized innermost body was unchanged).
    pub reused_analyses: bool,
    /// Estimates the store held for this kernel and context before the
    /// search ran.
    pub preloaded: u64,
    /// Store-wide telemetry after this run.
    pub telemetry: CacheTelemetry,
    /// Wall-clock time of the whole re-exploration (canonicalization,
    /// preparation and search).
    pub wall: std::time::Duration,
}

/// Previous-revision state carried between edits.
struct Previous {
    canonical: CanonicalKernel,
    prepared: Option<Arc<PreparedKernel>>,
}

/// A long-lived exploration session over successive revisions of one
/// kernel (the engine behind `defacto watch`). See the module docs.
pub struct IncrementalSession {
    store: Arc<PersistentCache>,
    engine: Arc<EvalEngine>,
    sink: Arc<dyn TraceSink>,
    mem: MemoryModel,
    device: FpgaDevice,
    fidelity: Fidelity,
    previous: Option<Previous>,
}

impl std::fmt::Debug for IncrementalSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IncrementalSession")
            .field("store", &self.store.path())
            .field("revisions", &u8::from(self.previous.is_some()))
            .finish_non_exhaustive()
    }
}

impl IncrementalSession {
    /// A session persisting into `store`, with the paper's default
    /// platform and a default engine.
    pub fn new(store: Arc<PersistentCache>) -> Self {
        IncrementalSession {
            store,
            engine: Arc::new(EvalEngine::default()),
            sink: Arc::new(NullSink),
            mem: MemoryModel::wildstar_pipelined(),
            device: FpgaDevice::virtex1000(),
            fidelity: Fidelity::Full,
            previous: None,
        }
    }

    /// Share (or configure) the evaluation engine.
    pub fn engine(mut self, engine: Arc<EvalEngine>) -> Self {
        self.engine = engine;
        self
    }

    /// Record every warm-start marker and search decision into `sink`.
    pub fn trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = sink;
        self
    }

    /// Use a different memory model.
    pub fn memory(mut self, mem: MemoryModel) -> Self {
        self.mem = mem;
        self
    }

    /// Target a different device.
    pub fn device(mut self, device: FpgaDevice) -> Self {
        self.device = device;
        self
    }

    /// Select the evaluation fidelity of the underlying explorer.
    pub fn fidelity(mut self, fidelity: Fidelity) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// The persistent store backing the session.
    pub fn store(&self) -> &Arc<PersistentCache> {
        &self.store
    }

    /// Explore (or re-explore) `kernel` — the entry point `defacto
    /// watch` calls per file change. Selections are bit-identical to a
    /// cold [`Explorer::explore`] with the same configuration: the
    /// previous revision only warms caches, never steers the search.
    ///
    /// # Errors
    ///
    /// Propagates analysis and evaluation failures; the session state is
    /// left at the last *successful* revision, so a broken intermediate
    /// edit does not lose the warm state.
    pub fn explore(&mut self, kernel: &Kernel) -> Result<IncrementalOutcome> {
        let started = Instant::now();
        let canonical = canonicalize(kernel);
        let changed = match &self.previous {
            Some(prev) => canonical.changed_subtrees(&prev.canonical),
            None => Vec::new(),
        };

        let mut explorer = Explorer::new(kernel)
            .engine(self.engine.clone())
            .persistent(self.store.clone())
            .trace(self.sink.clone())
            .memory(self.mem.clone())
            .device(self.device.clone())
            .fidelity(self.fidelity);

        // Re-derive only the invalidated point-invariant analyses: when
        // the normalized innermost body is unchanged, the previous
        // revision's access table, uniform sets and offset copies carry
        // over (bounds-only edits additionally re-run dependence
        // analysis).
        let mut reused_analyses = false;
        if let Some(prev_prepared) = self.previous.as_ref().and_then(|p| p.prepared.clone()) {
            if let Ok(prepared) = PreparedKernel::prepare_reusing(kernel, &prev_prepared) {
                reused_analyses = prepared.base_body() == prev_prepared.base_body()
                    && prepared.var_names() == prev_prepared.var_names();
                explorer = explorer.with_prepared(Arc::new(prepared));
            }
        }

        // Warm start: a previous selection for this exact canonical
        // kernel and context means the store already holds the estimates
        // the search will ask for; announce it so auditors can check the
        // replayed search still justifies its selection on its own.
        let key = explorer.persist_key();
        let previous_selection = self.store.selection(key);
        let preloaded = self.store.estimates_for(key) as u64;
        let warm = previous_selection.is_some();
        if self.sink.enabled() {
            if let Some(sel) = &previous_selection {
                self.sink.record(&TraceEvent::WarmStart {
                    previous: UnrollVector(sel.unroll.clone()),
                    preloaded,
                    changed: changed.clone(),
                });
            }
        }

        let result = explorer.explore()?;
        self.previous = Some(Previous {
            prepared: explorer.prepared_arc(),
            canonical,
        });
        Ok(IncrementalOutcome {
            result,
            warm,
            changed,
            reused_analyses,
            preloaded,
            telemetry: self.store.telemetry(),
            wall: started.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::MemorySink;
    use defacto_ir::parse_kernel;

    const FIR: &str = "kernel fir { in S: i32[96]; in C: i32[32]; inout D: i32[64];
       for j in 0..64 { for i in 0..32 {
         D[j] = D[j] + S[i + j] * C[i]; } } }";

    /// Alpha-renamed, decl-reordered variant of `FIR` — canonically
    /// identical.
    const FIR_RENAMED: &str = "kernel f { in coef: i32[32]; inout acc: i32[64]; in sig: i32[96];
       for a in 0..64 { for b in 0..32 {
         acc[a] = acc[a] + sig[b + a] * coef[b]; } } }";

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("defacto-incr-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn second_revision_is_warm_and_selects_identically() {
        let dir = tmpdir("warm");
        let store = Arc::new(PersistentCache::open(&dir).unwrap());
        let mut session = IncrementalSession::new(store);
        let k = parse_kernel(FIR).unwrap();
        let cold = session.explore(&k).unwrap();
        assert!(!cold.warm);
        assert_eq!(cold.result.stats.persist_hits, 0);
        // Unchanged kernel: everything replays from the memo cache (the
        // same engine), selection identical.
        let warm = session.explore(&k).unwrap();
        assert!(warm.warm);
        assert!(warm.changed.is_empty());
        assert!(warm.reused_analyses);
        assert_eq!(warm.result.stats.evaluated, 0);
        assert_eq!(cold.result.selected, warm.result.selected);
        assert_eq!(cold.result.visited, warm.result.visited);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn renamed_kernel_hits_the_store_across_sessions() {
        let dir = tmpdir("renamed");
        let k = parse_kernel(FIR).unwrap();
        let renamed = parse_kernel(FIR_RENAMED).unwrap();
        let cold = {
            let store = Arc::new(PersistentCache::open(&dir).unwrap());
            let mut session = IncrementalSession::new(store);
            session.explore(&k).unwrap()
        };
        // A fresh session (fresh engine, empty memo) over the renamed
        // kernel: every estimate comes from the persistent store, and the
        // selection is identical.
        let store = Arc::new(PersistentCache::open(&dir).unwrap());
        let mut session = IncrementalSession::new(store);
        let warm = session.explore(&renamed).unwrap();
        assert!(warm.warm, "renamed kernel shares the canonical selection");
        assert_eq!(warm.result.stats.evaluated, 0);
        assert!(warm.result.stats.persist_hits > 0);
        assert_eq!(warm.result.stats.persist_hit_rate(), 1.0);
        assert_eq!(
            cold.result.selected.unroll, warm.result.selected.unroll,
            "selection must be invariant under alpha-renaming"
        );
        assert_eq!(cold.result.selected.estimate, warm.result.selected.estimate);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_start_marker_precedes_an_auditable_trace() {
        let dir = tmpdir("trace");
        let store = Arc::new(PersistentCache::open(&dir).unwrap());
        let k = parse_kernel(FIR).unwrap();
        let sink = Arc::new(MemorySink::new());
        let mut session = IncrementalSession::new(store).trace(sink.clone());
        session.explore(&k).unwrap();
        let cold_events = sink.events();
        assert!(
            !cold_events
                .iter()
                .any(|e| matches!(e, TraceEvent::WarmStart { .. })),
            "cold runs must not emit warm-start markers"
        );
        sink.clear();
        session.explore(&k).unwrap();
        let warm_events = sink.events();
        assert!(matches!(warm_events[0], TraceEvent::WarmStart { .. }));
        // Stripped of the marker, the warm trace is byte-identical to the
        // cold one and audit-clean.
        assert_eq!(
            crate::trace::to_jsonl(&warm_events[1..]),
            crate::trace::to_jsonl(&cold_events)
        );
        let (sat, space) = Explorer::new(&k).analyze().unwrap();
        let report = crate::audit::audit_search_trace(&warm_events, &space, &sat);
        assert!(report.violations.is_empty(), "{report:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bounds_edit_reuses_body_analyses_and_reselects() {
        let dir = tmpdir("bounds");
        let store = Arc::new(PersistentCache::open(&dir).unwrap());
        let mut session = IncrementalSession::new(store);
        let k = parse_kernel(FIR).unwrap();
        session.explore(&k).unwrap();
        // Same body, halved outer trip count: the body analyses carry
        // over; dependence analysis re-runs; estimates are fresh.
        let edited = parse_kernel(
            "kernel fir { in S: i32[96]; in C: i32[32]; inout D: i32[64];
               for j in 0..32 { for i in 0..32 {
                 D[j] = D[j] + S[i + j] * C[i]; } } }",
        )
        .unwrap();
        let out = session.explore(&edited).unwrap();
        assert!(!out.warm, "edited kernel has no prior selection");
        assert!(out.reused_analyses);
        assert!(!out.changed.is_empty());
        assert!(out.result.stats.evaluated > 0);
        // The fresh selection matches a from-scratch exploration.
        let scratch = Explorer::new(&edited).explore().unwrap();
        assert_eq!(out.result.selected, scratch.selected);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
