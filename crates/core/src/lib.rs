//! Balance-guided hardware design space exploration for FPGA-based
//! systems — a reproduction of **So, Hall & Diniz, PLDI 2002** ("A
//! Compiler Approach to Fast Hardware Design Space Exploration in
//! FPGA-based Systems", the DEFACTO system).
//!
//! Given an affine loop-nest kernel, the [`Explorer`] searches the space
//! of unroll-factor vectors for the design that (1) fits the FPGA,
//! (2) minimizes execution time, and (3) among comparable designs is the
//! smallest. The search is guided by the *balance* metric `B = F/C`
//! (data fetch rate over data consumption rate) and its monotonicity
//! around the *saturation point*, which lets it prune all but a fraction
//! of a percent of the space.
//!
//! ```
//! use defacto::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let fir = defacto_ir::parse_kernel(
//!     "kernel fir { in S: i32[96]; in C: i32[32]; inout D: i32[64];
//!        for j in 0..64 { for i in 0..32 {
//!          D[j] = D[j] + S[i + j] * C[i]; } } }",
//! )?;
//! let result = Explorer::new(&fir)
//!     .memory(MemoryModel::wildstar_pipelined())
//!     .device(FpgaDevice::virtex1000())
//!     .explore()?;
//! println!(
//!     "selected {} ({} cycles, {} slices) after visiting {} of {} designs",
//!     result.selected.unroll,
//!     result.selected.estimate.cycles,
//!     result.selected.estimate.slices,
//!     result.visited.len(),
//!     result.space_size,
//! );
//! # Ok(())
//! # }
//! ```

pub mod audit;
pub mod engine;
pub mod error;
pub mod exhaustive;
pub mod explorer;
pub mod incremental;
pub mod lint;
pub mod multi;
pub mod saturation;
pub mod search;
pub mod space;
pub mod strategies;
pub mod strategy;
pub mod trace;

pub use audit::{
    audit_joint_trace, audit_search_trace, audit_strategy_trace, AuditReport, AuditViolation,
    Invariant,
};
pub use defacto_analysis::{lint_kernel, lint_source, LintReport};
pub use defacto_ir::{diag, Diagnostic, Severity};
pub use engine::{
    CacheKey, CacheShardStats, CounterSnapshot, EstimateCache, EvalEngine, EvalStats,
};
pub use error::{DseError, Result};
pub use exhaustive::{
    best_joint_performance, exhaustive_joint_sweep, exhaustive_sweep, parallel_sweep,
};
pub use explorer::{EvaluatedDesign, EvaluatedJointDesign, Explorer, Fidelity, JointSearchResult};
pub use incremental::{IncrementalOutcome, IncrementalSession};
pub use multi::{map_pipeline, PipelineMapping, PipelineOptions, PipelineStage, StagePlacement};
pub use saturation::{saturation_analysis, SaturationInfo};
pub use search::{
    doubling_frontier, run_search, run_search_instrumented, run_search_with_sink, SearchConfig,
    SearchResult, Termination, VisitOutcome,
};
pub use space::{Axis, DesignSpace, JointPoint, PrunedCounts};
pub use strategies::{hill_climb, random_search, StrategyOutcome};
pub use strategy::{
    strategy_for, BranchAndBound, CoordinateDescent, Exhaustive, GuidedOutcome, SearchStrategy,
    StrategyContext, StrategyKind,
};
pub use trace::{to_jsonl, JsonlSink, MemorySink, NullSink, RingBufferSink, TraceEvent, TraceSink};

// Re-export the component crates so downstream users need only one
// dependency.
pub use defacto_analysis as analysis;
pub use defacto_cache as cache;
pub use defacto_ir as ir;
pub use defacto_synth as synth;
pub use defacto_xform as xform;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::audit::{
        audit_joint_trace, audit_search_trace, audit_strategy_trace, AuditReport,
    };
    pub use crate::engine::{EvalEngine, EvalStats};
    pub use crate::exhaustive::{exhaustive_sweep, parallel_sweep};
    pub use crate::explorer::{
        EvaluatedDesign, EvaluatedJointDesign, Explorer, Fidelity, JointSearchResult,
    };
    pub use crate::incremental::{IncrementalOutcome, IncrementalSession};
    pub use crate::multi::{map_pipeline, PipelineMapping, PipelineOptions, PipelineStage};
    pub use crate::saturation::{saturation_analysis, SaturationInfo};
    pub use crate::search::{SearchResult, Termination};
    pub use crate::space::{Axis, DesignSpace, JointPoint};
    pub use crate::strategies::{hill_climb, random_search, StrategyOutcome};
    pub use crate::strategy::{GuidedOutcome, SearchStrategy, StrategyKind};
    pub use crate::trace::{MemorySink, TraceEvent, TraceSink};
    pub use defacto_analysis::{lint_kernel, lint_source, LintReport};
    pub use defacto_ir::{parse_kernel, Diagnostic, Kernel, KernelBuilder, Severity};
    pub use defacto_synth::{Estimate, FpgaDevice, MemoryModel};
    pub use defacto_xform::{TransformOptions, UnrollVector};
}
