//! Saturation-point analysis (paper §5.1).
//!
//! The *saturation point* is the unroll product at which the transformed
//! loop body's memory parallelism reaches the board's bandwidth: with `R`
//! uniformly generated read sets and `W` write sets remaining after
//! scalar replacement and redundant-write elimination,
//! `Psat = lcm(gcd(R, W), NumMemories)`. The *saturation set* holds the
//! unroll vectors whose product is `Psat` over the loops that actually
//! vary memory addresses; the search starts from the most promising
//! member (`U_init`), chosen from the dependence structure: a loop that
//! carries no dependence unrolls into fully parallel copies, otherwise
//! loops with larger minimum dependence distances are preferred.

use crate::error::Result;
use crate::space::DesignSpace;
use defacto_analysis::{analyze_dependences_with_bounds, AccessTable};
use defacto_ir::Kernel;
use defacto_xform::{normalize_loops, transform, TransformOptions, UnrollVector};
use std::collections::HashMap;

/// The result of saturation analysis for one kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SaturationInfo {
    /// `R`: uniformly generated read sets with steady memory accesses.
    pub read_sets: usize,
    /// `W`: uniformly generated write sets with steady memory accesses.
    pub write_sets: usize,
    /// The saturation product `Psat = lcm(gcd(R,W), NumMemories)`.
    pub psat: i64,
    /// Per loop level: does unrolling it add memory parallelism?
    pub unrollable: Vec<bool>,
    /// The saturation set: members of the space with product `Psat`
    /// (or the nearest achievable product for tiny kernels).
    pub sat_set: Vec<UnrollVector>,
    /// The search's starting point.
    pub u_init: UnrollVector,
    /// Loop levels in unroll-preference order (dependence-free loops
    /// first, then larger minimum dependence distances, then outermost).
    pub preference: Vec<usize>,
}

impl SaturationInfo {
    /// Choose the preferred member of `candidates` for a given unroll
    /// product.
    ///
    /// Following §5.3, the search "unrolls all loops in the nest, with
    /// larger unroll factors for the loops carrying larger minimum
    /// nonzero dependence distances" (dependence-free loops count as
    /// unbounded distance). Concretely, each loop gets a weight from its
    /// preference rank and the candidate minimizing
    /// `Σ (ln(uₗ) / wₗ)²` wins: factor mass is spread across loops,
    /// biased toward preferred ones. At the saturation product this
    /// degenerates to unrolling only the most-preferred loop (`Sat_i` for
    /// a dependence-free loop `i`, as the paper prescribes); at larger
    /// products it grows several loops together.
    pub fn pick_preferred(&self, candidates: &[UnrollVector]) -> Option<UnrollVector> {
        let weight = |level: usize| -> f64 {
            let rank = self
                .preference
                .iter()
                .position(|&l| l == level)
                .unwrap_or(self.preference.len());
            2.0 / (1.0 + rank as f64)
        };
        candidates
            .iter()
            .min_by(|a, b| {
                let score = |u: &UnrollVector| -> f64 {
                    u.factors()
                        .iter()
                        .enumerate()
                        .map(|(l, &f)| {
                            let t = (f.max(1) as f64).ln() / weight(l);
                            t * t
                        })
                        .sum()
                };
                score(a)
                    .partial_cmp(&score(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    // Deterministic tie-break: larger factors on preferred
                    // loops, then the lexicographically smaller vector.
                    .then_with(|| {
                        // Compare without materializing the permuted
                        // factor vectors (this runs per candidate pair).
                        let bk = self.preference.iter().map(|&l| b.factors()[l]);
                        let ak = self.preference.iter().map(|&l| a.factors()[l]);
                        bk.cmp(ak)
                    })
                    .then_with(|| a.factors().cmp(b.factors()))
            })
            .cloned()
    }

    /// Choose the growth candidate for `Increase`/`SelectBetween`: factor
    /// mass spread evenly across loops (minimize `Σ ln(uₗ)²`), with ties
    /// broken toward preferred loops. Even spreading keeps growing
    /// operator parallelism *and* reuse together — the trajectory the
    /// paper's compute-bound designs follow until the memory or capacity
    /// wall.
    pub fn pick_growth(&self, candidates: &[UnrollVector]) -> Option<UnrollVector> {
        candidates
            .iter()
            .min_by(|a, b| {
                let score = |u: &UnrollVector| -> f64 {
                    u.factors()
                        .iter()
                        .map(|&f| {
                            let t = (f.max(1) as f64).ln();
                            t * t
                        })
                        .sum()
                };
                score(a)
                    .partial_cmp(&score(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| {
                        // Compare without materializing the permuted
                        // factor vectors (this runs per candidate pair).
                        let bk = self.preference.iter().map(|&l| b.factors()[l]);
                        let ak = self.preference.iter().map(|&l| a.factors()[l]);
                        bk.cmp(ak)
                    })
                    .then_with(|| a.factors().cmp(b.factors()))
            })
            .cloned()
    }
}

/// Run saturation analysis and build the design space.
///
/// `explore_override` forces the per-loop explore flags (e.g. to widen a
/// figure sweep beyond the memory-varying loops); by default the space
/// explores exactly the loops that vary steady memory addresses.
///
/// # Errors
///
/// Fails when the kernel is not a perfect loop nest or baseline
/// transformation fails.
pub fn saturation_analysis(
    kernel: &Kernel,
    opts: &TransformOptions,
    explore_override: Option<&[bool]>,
) -> Result<(SaturationInfo, DesignSpace)> {
    let normalized = normalize_loops(kernel)?;
    let nest = normalized
        .perfect_nest()
        .ok_or(crate::error::DseError::NotPerfectNest)?;
    let depth = nest.depth();
    if depth == 0 {
        return Err(crate::error::DseError::NoLoops);
    }
    let trips = nest.trip_counts();
    let vars: Vec<String> = nest.loops().iter().map(|l| l.var.clone()).collect();
    let var_refs: Vec<&str> = vars.iter().map(String::as_str).collect();

    // Dependence structure of the source nest, for U_init preferences.
    let table = AccessTable::from_stmts(nest.innermost_body());
    let bounds: Vec<(i64, i64)> = nest
        .loops()
        .iter()
        .map(|l| (l.lower, l.upper - 1))
        .collect();
    let deps = analyze_dependences_with_bounds(&table, &var_refs, &bounds);

    // Baseline transformation *without peeling*: first-iteration register
    // loads stay guarded, so guarded accesses (one-time chain fills) are
    // distinguishable from steady traffic.
    let baseline_opts = TransformOptions {
        peel: false,
        ..opts.clone()
    };
    let baseline = transform(&normalized, &UnrollVector::ones(depth), &baseline_opts)?;
    let all = AccessTable::from_stmts(baseline.kernel.body());

    // Uniformly generated sets over the steady (non-guarded) accesses,
    // keyed by (array, is_write, signature).
    type SetKey = (String, bool, Vec<Vec<i64>>);
    let mut sets: HashMap<SetKey, Vec<usize>> = HashMap::new();
    let mut varying = vec![false; depth];
    for acc in all.accesses().iter().filter(|a| !a.conditional) {
        let sig = acc.access.coeff_signature(&var_refs);
        let is_varying: Vec<usize> = (0..depth)
            .filter(|&l| sig.iter().any(|row| row[l] != 0))
            .collect();
        if is_varying.is_empty() {
            continue;
        }
        for &l in &is_varying {
            varying[l] = true;
        }
        sets.entry((acc.access.array.clone(), acc.is_write, sig))
            .or_default()
            .push(acc.id.0);
    }
    let read_sets = sets.keys().filter(|(_, w, _)| !w).count();
    let write_sets = sets.keys().filter(|(_, w, _)| *w).count();

    let num_memories = opts.num_memories.max(1) as i64;
    let g = gcd(read_sets as i64, write_sets as i64).max(1);
    let psat = lcm(g, num_memories);

    // Exploration flags and the design space.
    let mut explore: Vec<bool> = match explore_override {
        Some(flags) => flags.to_vec(),
        None => {
            // Explore memory-varying loops; if none (degenerate), explore
            // everything.
            if varying.iter().any(|&v| v) {
                varying.clone()
            } else {
                vec![true; depth]
            }
        }
    };
    // A body carrying scalar state across iterations (rotate register
    // chains, scalars read before written) only admits innermost unroll
    // factors: jamming any outer level would interleave iterations and
    // reorder the chain. Pin those levels so the space holds only legal
    // points and the search never trips the jam legality check mid-sweep.
    // The predicate is the legality analysis's — the same one
    // `unroll_and_jam` and `PreparedKernel::validate_factors` enforce, so
    // the space and the transform gate can never disagree.
    if depth >= 2
        && !defacto_analysis::legality::carried_scalars(nest.innermost_body(), &var_refs).is_empty()
    {
        for flag in explore.iter_mut().take(depth - 1) {
            *flag = false;
        }
    }
    let space = DesignSpace::new(&trips, &explore);

    // Preference order.
    let mut levels: Vec<usize> = (0..depth).collect();
    levels.sort_by_key(|&l| {
        let carries = deps.loop_carries_dependence(l);
        let min_dist = deps.min_positive_distance(l).unwrap_or(1);
        // Dependence-free loops first; then larger minimum distances;
        // then outermost.
        (carries, std::cmp::Reverse(min_dist), l)
    });
    let preference = levels;

    // Saturation set: product Psat over the explored loops; fall back to
    // the largest achievable product below Psat for tiny spaces.
    let base = space.base_vector();
    let max = space.max_vector();
    let mut sat_set = space.members_with_product(psat, &base, &max);
    if sat_set.is_empty() {
        let mut p = psat - 1;
        while p >= 1 && sat_set.is_empty() {
            sat_set = space.members_with_product(p, &base, &max);
            p -= 1;
        }
    }

    let info_partial = SaturationInfo {
        read_sets,
        write_sets,
        psat,
        unrollable: explore,
        sat_set: sat_set.clone(),
        u_init: base.clone(),
        preference,
    };
    let u_init = info_partial.pick_preferred(&sat_set).unwrap_or(base);
    let info = SaturationInfo {
        u_init,
        ..info_partial
    };
    Ok((info, space))
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

fn lcm(a: i64, b: i64) -> i64 {
    if a == 0 || b == 0 {
        return a.max(b).max(1);
    }
    a / gcd(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;
    use defacto_ir::parse_kernel;

    const FIR: &str = "kernel fir { in S: i32[96]; in C: i32[32]; inout D: i32[64];
       for j in 0..64 { for i in 0..32 {
         D[j] = D[j] + S[i + j] * C[i]; } } }";

    const MM: &str = "kernel mm { in A: i32[32][16]; in B: i32[16][4]; inout C: i32[32][4];
       for i in 0..32 { for j in 0..4 { for k in 0..16 {
         C[i][j] = C[i][j] + A[i][k] * B[k][j]; } } } }";

    fn analyze(src: &str) -> (SaturationInfo, DesignSpace) {
        let k = parse_kernel(src).unwrap();
        saturation_analysis(&k, &TransformOptions::default(), None).unwrap()
    }

    #[test]
    fn fir_saturation() {
        let (info, space) = analyze(FIR);
        // Steady sets: D reads, D writes, S reads (C is fully guarded).
        assert_eq!(info.read_sets, 2);
        assert_eq!(info.write_sets, 1);
        assert_eq!(info.psat, 4);
        assert_eq!(info.unrollable, vec![true, true]);
        assert_eq!(space.size(), 42);
        // Sat set: products of 4: (1,4), (2,2), (4,1).
        assert_eq!(info.sat_set.len(), 3);
        // The outer loop j carries no dependence: U_init unrolls it.
        assert_eq!(info.u_init, UnrollVector(vec![4, 1]));
        assert_eq!(info.preference[0], 0);
    }

    #[test]
    fn mm_excludes_innermost_loop() {
        let (info, space) = analyze(MM);
        // The paper: "we only consider unroll factors for the two
        // outermost loops, since through loop-invariant code motion the
        // compiler has eliminated all memory accesses in the innermost
        // loop."
        assert_eq!(info.unrollable, vec![true, true, false]);
        // Space: divisors(32)=6 × divisors(4)=3 × {1}.
        assert_eq!(space.size(), 18);
        // Steady sets: C reads + C writes (A and B loads are guarded).
        assert_eq!(info.read_sets, 1);
        assert_eq!(info.write_sets, 1);
        assert_eq!(info.psat, 4);
        // i and j are both dependence-free: unroll preference favors an
        // outer loop; U_init has product 4 on (i, j).
        assert_eq!(info.u_init.factors()[2], 1);
        assert_eq!(info.u_init.product(), 4);
        assert_eq!(info.u_init, UnrollVector(vec![4, 1, 1]));
    }

    #[test]
    fn explore_override() {
        let k = parse_kernel(MM).unwrap();
        let (info, space) =
            saturation_analysis(&k, &TransformOptions::default(), Some(&[true, true, true]))
                .unwrap();
        assert_eq!(space.size(), 18 * 5); // divisors(16) = 5
        assert!(info.unrollable[2]);
    }

    #[test]
    fn wavefront_prefers_larger_distance_loop() {
        // Both loops carry dependences; the i loop at distance 4, the j
        // loop at distance 1 → prefer i.
        let k = parse_kernel(
            "kernel wf { inout A: i32[36][36]; inout E: i32[36][36];
               for i in 0..32 { for j in 0..32 {
                 A[i + 4][j] = A[i][j] + 1;
                 E[i][j + 1] = E[i][j] + 1;
               } } }",
        )
        .unwrap();
        let (info, _) = saturation_analysis(&k, &TransformOptions::default(), None).unwrap();
        assert_eq!(info.preference[0], 0);
    }

    #[test]
    fn carried_scalar_pins_outer_levels() {
        // A rotate chain only admits innermost unroll factors; the space
        // must exclude outer-level factors so the search never trips the
        // jam legality check mid-sweep.
        let src = "kernel rc { in A: i32[4][8]; out B: i32[4][8]; var r0: i32; var r1: i32;
           for i in 0..4 { for j in 0..8 {
             r0 = A[i][j]; rotate(r0, r1); B[i][j] = r0; } } }";
        let k = parse_kernel(src).unwrap();
        let (info, space) = saturation_analysis(&k, &TransformOptions::default(), None).unwrap();
        assert!(!info.unrollable[0]);
        assert_eq!(space.size(), 4); // divisors(8), outer pinned to 1
                                     // The pin also overrides an explicit explore request.
        let (_, space) =
            saturation_analysis(&k, &TransformOptions::default(), Some(&[true, true])).unwrap();
        assert_eq!(space.size(), 4);
    }

    #[test]
    fn carried_scalar_pinning_routes_through_the_legality_summary() {
        // Regression for the predicate dedup: saturation's flag pinning,
        // `PreparedKernel::validate_factors`, and `unroll_and_jam` all
        // consult the same `LegalitySummary` carried-scalar fact. The pin
        // must therefore exactly track the summary, and everything left in
        // the pinned space must pass the transform-side gate.
        use defacto_xform::PreparedKernel;
        let src = "kernel rc { in A: i32[4][8]; out B: i32[4][8]; var r0: i32; var r1: i32;
           for i in 0..4 { for j in 0..8 {
             r0 = A[i][j]; rotate(r0, r1); B[i][j] = r0; } } }";
        let k = parse_kernel(src).unwrap();
        let prepared = PreparedKernel::prepare(&k).unwrap();
        // r0 is written before it is read; only r1's value crosses
        // iterations.
        assert_eq!(prepared.legality().carried_scalars(), ["r1"]);
        let (_, space) = saturation_analysis(&k, &TransformOptions::default(), None).unwrap();
        for u in space.iter() {
            assert!(
                prepared.validate_factors(u.factors()).is_ok(),
                "pinned space admitted {u:?} but the transform gate rejects it"
            );
        }
        // A kernel whose summary records no carried scalar must not pin.
        let fir = parse_kernel(FIR).unwrap();
        let fir_prepared = PreparedKernel::prepare(&fir).unwrap();
        assert!(fir_prepared.legality().carried_scalars().is_empty());
        let (info, _) = saturation_analysis(&fir, &TransformOptions::default(), None).unwrap();
        assert!(info.unrollable.iter().all(|&b| b));
    }

    #[test]
    fn single_memory_board_lowers_psat() {
        let k = parse_kernel(FIR).unwrap();
        let opts = TransformOptions {
            num_memories: 1,
            custom_layout: false,
            ..TransformOptions::default()
        };
        let (info, _) = saturation_analysis(&k, &opts, None).unwrap();
        assert_eq!(info.psat, 1);
        assert_eq!(info.u_init.product(), 1);
    }
}
