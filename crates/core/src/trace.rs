//! Structured search traces.
//!
//! The paper's argument rests on the Figure-2 search visiting only a
//! handful of points while provably landing near the best design
//! (Observations 1–3 on balance monotonicity around `Psat`). A
//! [`SearchResult`](crate::SearchResult) alone cannot show *why* a step
//! doubled, halved or converged; this module turns every run into a
//! checkable artifact. The search emits one typed [`TraceEvent`] per
//! decision into a pluggable [`TraceSink`]:
//!
//! - [`NullSink`] — the default; records nothing at zero cost;
//! - [`MemorySink`] — collects every event, for the
//!   [auditor](crate::audit) and tests;
//! - [`RingBufferSink`] — keeps the last `N` events, for always-on
//!   tracing in long-running services;
//! - [`JsonlSink`] — streams events as JSON Lines to any writer (the
//!   CLI's `--trace out.jsonl`).
//!
//! Events are **deterministic by construction**: they describe the
//! search's decisions (which are bit-identical at any worker count), not
//! the engine's runtime behaviour. Nondeterministic observability —
//! wall-clock per evaluation, per-shard cache hit/miss counters — lives
//! in [`EvalStats`](crate::EvalStats) and
//! [`CacheShardStats`](crate::engine::CacheShardStats) instead, so a
//! trace taken at 8 workers is byte-identical to one taken at 1.

use crate::search::Termination;
use crate::space::JointPoint;
use defacto_xform::UnrollVector;
use std::collections::VecDeque;
use std::io::Write;
use std::sync::Mutex;

/// One step of a search (or pipeline mapping), in emission order.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// The search asked for one design point's estimate. `cache_hit` is
    /// the *search-level* revisit flag — true when this exact point was
    /// already visited earlier in the same search — so it is identical
    /// at any worker count (an engine-level prefetch hit is not a
    /// revisit).
    Visit {
        /// The design point.
        unroll: UnrollVector,
        /// Its balance `B = F/C`.
        balance: f64,
        /// Estimated execution cycles.
        cycles: u64,
        /// Estimated area in slices.
        slices: u32,
        /// Whether the design fits the device.
        fits: bool,
        /// True when this point was already visited in this search.
        cache_hit: bool,
    },
    /// `Increase(U)`: the unroll product doubled while every design was
    /// still compute bound.
    Increase {
        /// The point doubled from.
        from: UnrollVector,
        /// The point doubled to (`P(to) = 2·P(from)`).
        to: UnrollVector,
    },
    /// `SelectBetween(Usmall, Ularge)`: the binary-search midpoint pick.
    /// `chosen` is `None` when no candidate product remains (the search
    /// has converged).
    SelectBetween {
        /// Lower bound of the bracket.
        lo: UnrollVector,
        /// Upper bound of the bracket.
        hi: UnrollVector,
        /// The member picked strictly between the two products, if any.
        chosen: Option<UnrollVector>,
    },
    /// `FindLargestFit(Ubase, Uinit)`: the fallback scan below the
    /// saturation point when the initial design exceeds capacity.
    FindLargestFit {
        /// The scan's lower bound (the unroll-free baseline).
        base: UnrollVector,
        /// The scan's upper bound (the saturation point).
        init: UnrollVector,
        /// The largest fitting member found (the base vector if none).
        chosen: UnrollVector,
    },
    /// The doubling frontier — the chain of points the search visits
    /// while compute bound, which the parallel engine speculatively
    /// prefetches. Emitted before the search replays serially; the
    /// chain is a pure function of the space, so it is identical
    /// whether or not a prefetch actually ran.
    Frontier {
        /// The chain, saturation point first, products doubling.
        points: Vec<UnrollVector>,
    },
    /// The search stopped; `selected` is the design it returns.
    Terminate {
        /// Why the search stopped.
        reason: Termination,
        /// The selected design point.
        selected: UnrollVector,
    },
    /// Multi-fidelity: a point cleared (or was forced past) the tier-0
    /// analytic filter and will receive a full tier-1 evaluation.
    /// Emitted before the corresponding `Visit` (searches) or before the
    /// tier-1 batch (sweeps), in the space's iteration order.
    TierPromote {
        /// The promoted design point.
        unroll: UnrollVector,
        /// True when the tier-0 filter did *not* keep the point but a
        /// tier-1 evaluation happened anyway — the Figure-2 replay
        /// demanded it, or the tier-0 model declined the point.
        forced: bool,
    },
    /// Multi-fidelity: the tier-0 analytic band proved a point cannot
    /// win, so it never reaches tier 1. The recorded lower bounds are
    /// the proof obligations: `slices_lo` exceeds device capacity, or
    /// `cycles_lo` exceeds the best certain-to-fit upper cycle bound.
    TierPrune {
        /// The pruned design point.
        unroll: UnrollVector,
        /// Tier-0 lower bound on slices.
        slices_lo: u32,
        /// Tier-0 lower bound on cycles.
        cycles_lo: u64,
    },
    /// Incremental re-exploration: the search was warm-started from a
    /// previous run's persistent state. Emitted by
    /// [`crate::incremental::IncrementalSession`] *before* the search's
    /// own events — plain [`crate::Explorer::explore`] runs never emit
    /// it, so cold/warm traces of the same exploration stay
    /// byte-identical. The auditor ignores it; its role is to let
    /// auditors and tests verify that a warm-started search still
    /// selected independently (the events after it are a complete,
    /// self-justifying search).
    WarmStart {
        /// The previous run's selected design the warm start seeded
        /// from.
        previous: UnrollVector,
        /// Estimates preloaded from the persistent store for this
        /// context before the search ran.
        preloaded: u64,
        /// Canonical subtree paths whose hashes changed since the
        /// previous run (empty when only the platform context changed).
        changed: Vec<String>,
    },
    /// Joint multi-axis sweep: one statically-legal [`JointPoint`] was
    /// transformed and estimated. Emitted only by
    /// [`Explorer::joint_sweep`](crate::Explorer::joint_sweep), in the
    /// space's enumeration order, so the auditor can check every visited
    /// point against [`DesignSpace::contains_joint`]
    /// (crate::DesignSpace::contains_joint) — space membership must imply
    /// transform success.
    AxisVisit {
        /// The multi-axis coordinate.
        point: JointPoint,
        /// Its balance `B = F/C`.
        balance: f64,
        /// Estimated execution cycles.
        cycles: u64,
        /// Estimated area in slices.
        slices: u32,
        /// Whether the design fits the device.
        fits: bool,
    },
    /// Guided joint search: a [`SearchStrategy`](crate::SearchStrategy)
    /// spent one tier-1 evaluation on a joint point. Emitted in decision
    /// order (which is deterministic at any worker count — strategies
    /// batch evaluations but commit them serially). `incumbent` is the
    /// best fitting cycle count *before* this step, `None` until the
    /// first fitting design is seen; the auditor checks it is monotone
    /// non-increasing.
    StrategyStep {
        /// The evaluated joint point.
        point: JointPoint,
        /// Its exact tier-1 cycles.
        cycles: u64,
        /// Its exact tier-1 slices.
        slices: u32,
        /// Whether the design fits the device.
        fits: bool,
        /// Best fitting cycles before this step.
        incumbent: Option<u64>,
    },
    /// Guided joint search: a tier-0 joint band proved a point cannot
    /// beat the incumbent, so it never reaches tier 1. The recorded
    /// bounds are the proof obligations: `slices_lo` exceeds device
    /// capacity, or `cycles_lo` exceeds `threshold` (the incumbent-side
    /// cycle bound in force; `None` when the point was pruned on
    /// capacity alone).
    BoundPrune {
        /// The pruned joint point.
        point: JointPoint,
        /// Tier-0 lower bound on cycles.
        cycles_lo: u64,
        /// Tier-0 lower bound on slices.
        slices_lo: u32,
        /// The cycle threshold the lower bound exceeded, if any.
        threshold: Option<u64>,
    },
    /// Multi-FPGA mapping: one pipeline stage was placed.
    StagePlaced {
        /// Stage name.
        stage: String,
        /// Hosting FPGA index.
        fpga: usize,
        /// The design selected for the stage.
        unroll: UnrollVector,
        /// Its estimated cycles.
        cycles: u64,
        /// Its estimated slices.
        slices: u32,
    },
    /// Multi-FPGA mapping: rebalancing improved the bottleneck stage.
    StageRebalanced {
        /// Stage name.
        stage: String,
        /// Hosting FPGA index.
        fpga: usize,
        /// The improved design.
        unroll: UnrollVector,
        /// Cycles before rebalancing.
        from_cycles: u64,
        /// Cycles after rebalancing.
        to_cycles: u64,
    },
}

fn json_factors(u: &UnrollVector) -> String {
    let inner: Vec<String> = u.factors().iter().map(i64::to_string).collect();
    format!("[{}]", inner.join(","))
}

fn json_usizes(xs: &[usize]) -> String {
    let inner: Vec<String> = xs.iter().map(usize::to_string).collect();
    format!("[{}]", inner.join(","))
}

/// The shared joint-point field group used by `axis_visit`,
/// `strategy_step` and `bound_prune` renderings.
fn json_joint_fields(point: &JointPoint) -> String {
    format!(
        "\"unroll\":{},\"permutation\":{},\"tile\":{},\"narrow\":{},\"pack\":{}",
        json_factors(&point.unroll_vector()),
        json_usizes(&point.permutation),
        point
            .tile
            .map_or_else(|| "null".into(), |(l, t)| format!("[{l},{t}]")),
        point.narrow,
        point.pack,
    )
}

fn json_opt_u64(v: Option<u64>) -> String {
    v.map_or_else(|| "null".into(), |x| x.to_string())
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v > 0.0 {
        "\"inf\"".into()
    } else {
        "\"-inf\"".into()
    }
}

/// Kebab-case label of a termination reason, stable for JSON traces.
pub fn termination_label(t: Termination) -> &'static str {
    match t {
        Termination::Balanced => "balanced",
        Termination::MemoryBoundAtInit => "memory-bound-at-init",
        Termination::SpaceConstrained => "space-constrained",
        Termination::Converged => "converged",
        Termination::ExhaustedCompute => "exhausted-compute",
    }
}

impl TraceEvent {
    /// One-line JSON rendering (the JSONL schema documented in
    /// DESIGN.md). Deterministic: equal events render to equal bytes.
    pub fn to_json(&self) -> String {
        match self {
            TraceEvent::Visit {
                unroll,
                balance,
                cycles,
                slices,
                fits,
                cache_hit,
            } => format!(
                "{{\"event\":\"visit\",\"unroll\":{},\"product\":{},\"balance\":{},\
                 \"cycles\":{cycles},\"slices\":{slices},\"fits\":{fits},\"cache_hit\":{cache_hit}}}",
                json_factors(unroll),
                unroll.product(),
                json_f64(*balance),
            ),
            TraceEvent::Increase { from, to } => format!(
                "{{\"event\":\"increase\",\"from\":{},\"to\":{}}}",
                json_factors(from),
                json_factors(to),
            ),
            TraceEvent::SelectBetween { lo, hi, chosen } => format!(
                "{{\"event\":\"select_between\",\"lo\":{},\"hi\":{},\"chosen\":{}}}",
                json_factors(lo),
                json_factors(hi),
                chosen
                    .as_ref()
                    .map_or_else(|| "null".into(), json_factors),
            ),
            TraceEvent::FindLargestFit { base, init, chosen } => format!(
                "{{\"event\":\"find_largest_fit\",\"base\":{},\"init\":{},\"chosen\":{}}}",
                json_factors(base),
                json_factors(init),
                json_factors(chosen),
            ),
            TraceEvent::Frontier { points } => {
                let inner: Vec<String> = points.iter().map(json_factors).collect();
                format!(
                    "{{\"event\":\"frontier\",\"points\":[{}]}}",
                    inner.join(",")
                )
            }
            TraceEvent::Terminate { reason, selected } => format!(
                "{{\"event\":\"terminate\",\"reason\":\"{}\",\"selected\":{}}}",
                termination_label(*reason),
                json_factors(selected),
            ),
            TraceEvent::TierPromote { unroll, forced } => format!(
                "{{\"event\":\"tier_promote\",\"unroll\":{},\"product\":{},\"forced\":{forced}}}",
                json_factors(unroll),
                unroll.product(),
            ),
            TraceEvent::TierPrune {
                unroll,
                slices_lo,
                cycles_lo,
            } => format!(
                "{{\"event\":\"tier_prune\",\"unroll\":{},\"product\":{},\
                 \"slices_lo\":{slices_lo},\"cycles_lo\":{cycles_lo}}}",
                json_factors(unroll),
                unroll.product(),
            ),
            TraceEvent::WarmStart {
                previous,
                preloaded,
                changed,
            } => {
                let inner: Vec<String> = changed.iter().map(|p| format!("\"{p}\"")).collect();
                format!(
                    "{{\"event\":\"warm_start\",\"previous\":{},\"preloaded\":{preloaded},\
                     \"changed\":[{}]}}",
                    json_factors(previous),
                    inner.join(","),
                )
            }
            TraceEvent::AxisVisit {
                point,
                balance,
                cycles,
                slices,
                fits,
            } => format!(
                "{{\"event\":\"axis_visit\",{},\"balance\":{},\"cycles\":{cycles},\
                 \"slices\":{slices},\"fits\":{fits}}}",
                json_joint_fields(point),
                json_f64(*balance),
            ),
            TraceEvent::StrategyStep {
                point,
                cycles,
                slices,
                fits,
                incumbent,
            } => format!(
                "{{\"event\":\"strategy_step\",{},\"cycles\":{cycles},\"slices\":{slices},\
                 \"fits\":{fits},\"incumbent\":{}}}",
                json_joint_fields(point),
                json_opt_u64(*incumbent),
            ),
            TraceEvent::BoundPrune {
                point,
                cycles_lo,
                slices_lo,
                threshold,
            } => format!(
                "{{\"event\":\"bound_prune\",{},\"cycles_lo\":{cycles_lo},\
                 \"slices_lo\":{slices_lo},\"threshold\":{}}}",
                json_joint_fields(point),
                json_opt_u64(*threshold),
            ),
            TraceEvent::StagePlaced {
                stage,
                fpga,
                unroll,
                cycles,
                slices,
            } => format!(
                "{{\"event\":\"stage_placed\",\"stage\":\"{stage}\",\"fpga\":{fpga},\
                 \"unroll\":{},\"cycles\":{cycles},\"slices\":{slices}}}",
                json_factors(unroll),
            ),
            TraceEvent::StageRebalanced {
                stage,
                fpga,
                unroll,
                from_cycles,
                to_cycles,
            } => format!(
                "{{\"event\":\"stage_rebalanced\",\"stage\":\"{stage}\",\"fpga\":{fpga},\
                 \"unroll\":{},\"from_cycles\":{from_cycles},\"to_cycles\":{to_cycles}}}",
                json_factors(unroll),
            ),
        }
    }
}

/// Render a slice of events as a JSONL document (one event per line,
/// trailing newline). Byte-identical for identical event sequences.
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_json());
        out.push('\n');
    }
    out
}

/// Receiver of trace events. Sinks are shared between the search and the
/// engine's worker threads, so they take `&self` and must be `Sync`;
/// implementations serialize internally where needed.
pub trait TraceSink: Send + Sync + std::fmt::Debug {
    /// Record one event.
    fn record(&self, event: &TraceEvent);

    /// Whether recording has any effect. The explorer skips computing
    /// trace-only artifacts (e.g. the frontier event at one worker) when
    /// the sink is disabled.
    fn enabled(&self) -> bool {
        true
    }
}

/// The default sink: records nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _event: &TraceEvent) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// Collects every event in memory, in emission order.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<TraceEvent>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of the events recorded so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("trace sink lock").clone()
    }

    /// The recorded events as a JSONL document.
    pub fn to_jsonl(&self) -> String {
        to_jsonl(&self.events())
    }

    /// Drop all recorded events.
    pub fn clear(&self) {
        self.events.lock().expect("trace sink lock").clear();
    }
}

impl TraceSink for MemorySink {
    fn record(&self, event: &TraceEvent) {
        self.events
            .lock()
            .expect("trace sink lock")
            .push(event.clone());
    }
}

/// Keeps only the most recent `capacity` events — bounded memory for
/// always-on tracing.
#[derive(Debug)]
pub struct RingBufferSink {
    capacity: usize,
    events: Mutex<VecDeque<TraceEvent>>,
}

impl RingBufferSink {
    /// A ring buffer holding at most `capacity` events (≥ 1).
    pub fn new(capacity: usize) -> Self {
        RingBufferSink {
            capacity: capacity.max(1),
            events: Mutex::new(VecDeque::new()),
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events
            .lock()
            .expect("trace sink lock")
            .iter()
            .cloned()
            .collect()
    }
}

impl TraceSink for RingBufferSink {
    fn record(&self, event: &TraceEvent) {
        let mut buf = self.events.lock().expect("trace sink lock");
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(event.clone());
    }
}

/// Streams events as JSON Lines to a writer (a file for the CLI's
/// `--trace out.jsonl`). Write errors are swallowed — tracing is
/// best-effort observability and must never fail the search; callers
/// that need certainty call [`JsonlSink::flush`] and check it.
pub struct JsonlSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink").finish_non_exhaustive()
    }
}

impl JsonlSink {
    /// Stream events to `writer`.
    pub fn new(writer: impl Write + Send + 'static) -> Self {
        JsonlSink {
            out: Mutex::new(Box::new(writer)),
        }
    }

    /// Create (truncate) `path` and stream events to it.
    ///
    /// # Errors
    ///
    /// Propagates the file-creation failure.
    pub fn create(path: &str) -> std::io::Result<Self> {
        Ok(Self::new(std::io::BufWriter::new(std::fs::File::create(
            path,
        )?)))
    }

    /// Flush the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates the I/O failure.
    pub fn flush(&self) -> std::io::Result<()> {
        self.out.lock().expect("trace sink lock").flush()
    }
}

impl TraceSink for JsonlSink {
    fn record(&self, event: &TraceEvent) {
        let mut out = self.out.lock().expect("trace sink lock");
        let _ = writeln!(out, "{}", event.to_json());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn visit(p: i64) -> TraceEvent {
        TraceEvent::Visit {
            unroll: UnrollVector(vec![p, 1]),
            balance: 2.0,
            cycles: 100,
            slices: 10,
            fits: true,
            cache_hit: false,
        }
    }

    #[test]
    fn jsonl_schema_is_stable() {
        let json = visit(4).to_json();
        assert_eq!(
            json,
            "{\"event\":\"visit\",\"unroll\":[4,1],\"product\":4,\"balance\":2,\
             \"cycles\":100,\"slices\":10,\"fits\":true,\"cache_hit\":false}"
        );
        let t = TraceEvent::Terminate {
            reason: Termination::Balanced,
            selected: UnrollVector(vec![4, 1]),
        };
        assert_eq!(
            t.to_json(),
            "{\"event\":\"terminate\",\"reason\":\"balanced\",\"selected\":[4,1]}"
        );
        let s = TraceEvent::SelectBetween {
            lo: UnrollVector(vec![1, 1]),
            hi: UnrollVector(vec![4, 1]),
            chosen: None,
        };
        assert!(s.to_json().ends_with("\"chosen\":null}"));
    }

    #[test]
    fn tier_event_schema_is_stable() {
        let promote = TraceEvent::TierPromote {
            unroll: UnrollVector(vec![4, 2]),
            forced: false,
        };
        assert_eq!(
            promote.to_json(),
            "{\"event\":\"tier_promote\",\"unroll\":[4,2],\"product\":8,\"forced\":false}"
        );
        let prune = TraceEvent::TierPrune {
            unroll: UnrollVector(vec![8, 4]),
            slices_lo: 14000,
            cycles_lo: 512,
        };
        assert_eq!(
            prune.to_json(),
            "{\"event\":\"tier_prune\",\"unroll\":[8,4],\"product\":32,\
             \"slices_lo\":14000,\"cycles_lo\":512}"
        );
    }

    #[test]
    fn axis_visit_schema_is_stable() {
        let e = TraceEvent::AxisVisit {
            point: JointPoint {
                unroll: vec![4, 1],
                permutation: vec![1, 0],
                tile: None,
                narrow: true,
                pack: false,
            },
            balance: 1.5,
            cycles: 200,
            slices: 40,
            fits: true,
        };
        assert_eq!(
            e.to_json(),
            "{\"event\":\"axis_visit\",\"unroll\":[4,1],\"permutation\":[1,0],\"tile\":null,\
             \"narrow\":true,\"pack\":false,\"balance\":1.5,\"cycles\":200,\"slices\":40,\
             \"fits\":true}"
        );
        let tiled = TraceEvent::AxisVisit {
            point: JointPoint {
                tile: Some((1, 8)),
                ..JointPoint::baseline(2)
            },
            balance: 2.0,
            cycles: 100,
            slices: 10,
            fits: false,
        };
        assert!(tiled.to_json().contains("\"tile\":[1,8]"));
    }

    #[test]
    fn strategy_event_schema_is_stable() {
        let step = TraceEvent::StrategyStep {
            point: JointPoint {
                unroll: vec![4, 1],
                permutation: vec![1, 0],
                tile: None,
                narrow: false,
                pack: true,
            },
            cycles: 300,
            slices: 50,
            fits: true,
            incumbent: Some(420),
        };
        assert_eq!(
            step.to_json(),
            "{\"event\":\"strategy_step\",\"unroll\":[4,1],\"permutation\":[1,0],\
             \"tile\":null,\"narrow\":false,\"pack\":true,\"cycles\":300,\"slices\":50,\
             \"fits\":true,\"incumbent\":420}"
        );
        let first = TraceEvent::StrategyStep {
            point: JointPoint::baseline(2),
            cycles: 500,
            slices: 10,
            fits: true,
            incumbent: None,
        };
        assert!(first.to_json().ends_with("\"incumbent\":null}"));
        let prune = TraceEvent::BoundPrune {
            point: JointPoint {
                tile: Some((1, 8)),
                ..JointPoint::baseline(2)
            },
            cycles_lo: 480,
            slices_lo: 90,
            threshold: Some(450),
        };
        assert_eq!(
            prune.to_json(),
            "{\"event\":\"bound_prune\",\"unroll\":[1,1],\"permutation\":[0,1],\
             \"tile\":[1,8],\"narrow\":false,\"pack\":false,\"cycles_lo\":480,\
             \"slices_lo\":90,\"threshold\":450}"
        );
        let capacity = TraceEvent::BoundPrune {
            point: JointPoint::baseline(2),
            cycles_lo: 1,
            slices_lo: 99999,
            threshold: None,
        };
        assert!(capacity.to_json().ends_with("\"threshold\":null}"));
    }

    #[test]
    fn non_finite_balance_renders_as_string() {
        let e = TraceEvent::Visit {
            unroll: UnrollVector(vec![1]),
            balance: f64::INFINITY,
            cycles: 1,
            slices: 1,
            fits: true,
            cache_hit: false,
        };
        assert!(e.to_json().contains("\"balance\":\"inf\""));
    }

    #[test]
    fn memory_sink_collects_in_order() {
        let sink = MemorySink::new();
        sink.record(&visit(1));
        sink.record(&visit(2));
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0], visit(1));
        assert_eq!(sink.to_jsonl().lines().count(), 2);
    }

    #[test]
    fn ring_buffer_keeps_most_recent() {
        let sink = RingBufferSink::new(2);
        for p in 1..=4 {
            sink.record(&visit(p));
        }
        let events = sink.events();
        assert_eq!(events, vec![visit(3), visit(4)]);
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        #[derive(Clone, Default)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let shared = Shared::default();
        let sink = JsonlSink::new(shared.clone());
        sink.record(&visit(1));
        sink.record(&visit(2));
        sink.flush().unwrap();
        let text = String::from_utf8(shared.0.lock().unwrap().clone()).unwrap();
        assert_eq!(text, to_jsonl(&[visit(1), visit(2)]));
    }

    #[test]
    fn null_sink_is_disabled() {
        assert!(!NullSink.enabled());
        assert!(MemorySink::new().enabled());
    }
}
