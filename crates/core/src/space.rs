//! The design space: divisor unroll-factor vectors.
//!
//! Behavioral synthesis needs constant loop bounds, so the system
//! explores unroll factors that evenly divide each loop's trip count —
//! no cleanup code, every candidate synthesizable. Loops that do not
//! contribute memory parallelism (e.g. the innermost MM loop after
//! loop-invariant code motion removed its accesses) can be pinned to a
//! factor of 1.

use defacto_xform::UnrollVector;

/// The set of candidate unroll vectors for one kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignSpace {
    /// Allowed factors per loop level, ascending, always containing 1.
    factors_per_level: Vec<Vec<i64>>,
}

impl DesignSpace {
    /// Build the space from per-loop trip counts; `explore[l] == false`
    /// pins loop `l` to factor 1.
    pub fn new(trip_counts: &[i64], explore: &[bool]) -> Self {
        let factors_per_level = trip_counts
            .iter()
            .zip(explore)
            .map(|(&n, &on)| if on { divisors(n) } else { vec![1] })
            .collect();
        DesignSpace { factors_per_level }
    }

    /// Number of loop levels.
    pub fn levels(&self) -> usize {
        self.factors_per_level.len()
    }

    /// Allowed factors at `level`, ascending.
    pub fn factors_at(&self, level: usize) -> &[i64] {
        &self.factors_per_level[level]
    }

    /// Total number of candidate vectors.
    pub fn size(&self) -> u64 {
        self.factors_per_level
            .iter()
            .map(|f| f.len() as u64)
            .product()
    }

    /// Is `u` a member of the space?
    pub fn contains(&self, u: &UnrollVector) -> bool {
        u.factors().len() == self.levels()
            && u.factors()
                .iter()
                .zip(&self.factors_per_level)
                .all(|(f, allowed)| allowed.contains(f))
    }

    /// The maximal vector (full unrolling of explored loops).
    pub fn max_vector(&self) -> UnrollVector {
        UnrollVector(
            self.factors_per_level
                .iter()
                .map(|f| *f.last().expect("divisors nonempty"))
                .collect(),
        )
    }

    /// The baseline vector (no unrolling).
    pub fn base_vector(&self) -> UnrollVector {
        UnrollVector(vec![1; self.levels()])
    }

    /// Iterate over every vector in the space (outer levels vary
    /// slowest).
    pub fn iter(&self) -> impl Iterator<Item = UnrollVector> + '_ {
        let mut idx = vec![0usize; self.levels()];
        let mut done = self.size() == 0;
        std::iter::from_fn(move || {
            if done {
                return None;
            }
            let v = UnrollVector(
                idx.iter()
                    .zip(&self.factors_per_level)
                    .map(|(&i, f)| f[i])
                    .collect(),
            );
            // Advance, innermost fastest.
            let mut l = self.levels();
            loop {
                if l == 0 {
                    done = true;
                    break;
                }
                l -= 1;
                idx[l] += 1;
                if idx[l] < self.factors_per_level[l].len() {
                    break;
                }
                idx[l] = 0;
            }
            Some(v)
        })
    }

    /// All members with the given product whose factors lie between `lo`
    /// and `hi` (component-wise, inclusive). Used by the search's
    /// `Increase`/`SelectBetween` steps.
    pub fn members_with_product(
        &self,
        product: i64,
        lo: &UnrollVector,
        hi: &UnrollVector,
    ) -> Vec<UnrollVector> {
        let mut out = Vec::new();
        let mut cur = Vec::with_capacity(self.levels());
        self.enumerate_product(0, product, lo, hi, &mut cur, &mut out);
        out
    }

    fn enumerate_product(
        &self,
        level: usize,
        remaining: i64,
        lo: &UnrollVector,
        hi: &UnrollVector,
        cur: &mut Vec<i64>,
        out: &mut Vec<UnrollVector>,
    ) {
        if level == self.levels() {
            if remaining == 1 {
                out.push(UnrollVector(cur.clone()));
            }
            return;
        }
        for &f in &self.factors_per_level[level] {
            if f < lo.factors()[level] || f > hi.factors()[level] || remaining % f != 0 {
                continue;
            }
            cur.push(f);
            self.enumerate_product(level + 1, remaining / f, lo, hi, cur, out);
            cur.pop();
        }
    }

    /// Every product actually representable by a member of the space,
    /// restricted to `lo..=hi`, ascending. These are exactly the
    /// products for which [`Self::members_with_product`] (with full
    /// bounds) is non-empty, so candidate scans can iterate this set
    /// instead of every integer in a range.
    pub fn products_between(&self, lo: i64, hi: i64) -> Vec<i64> {
        use std::collections::BTreeSet;
        if hi < lo || hi < 1 {
            return Vec::new();
        }
        let mut products: BTreeSet<i64> = BTreeSet::new();
        products.insert(1);
        for factors in &self.factors_per_level {
            let mut next = BTreeSet::new();
            for &p in &products {
                for &f in factors {
                    match p.checked_mul(f) {
                        Some(q) if q <= hi => {
                            next.insert(q);
                        }
                        // Factors are ascending, so every later factor
                        // also overflows the bound.
                        _ => break,
                    }
                }
            }
            products = next;
        }
        products.into_iter().filter(|&p| p >= lo).collect()
    }
}

/// Positive divisors of `n`, ascending (divisors of 1 when `n < 1`).
/// Enumerated in O(√n) by pairing each divisor `d ≤ √n` with `n / d`.
pub fn divisors(n: i64) -> Vec<i64> {
    let n = n.max(1);
    let mut low = Vec::new();
    let mut high = Vec::new();
    let mut d = 1;
    while d * d <= n {
        if n % d == 0 {
            low.push(d);
            if d != n / d {
                high.push(n / d);
            }
        }
        d += 1;
    }
    high.reverse();
    low.extend(high);
    low
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divisor_lists() {
        assert_eq!(divisors(32), vec![1, 2, 4, 8, 16, 32]);
        assert_eq!(divisors(12), vec![1, 2, 3, 4, 6, 12]);
        assert_eq!(divisors(36), vec![1, 2, 3, 4, 6, 9, 12, 18, 36]);
        assert_eq!(divisors(1), vec![1]);
        assert_eq!(divisors(0), vec![1]);
    }

    #[test]
    fn divisors_match_naive_enumeration() {
        for n in 1..=200 {
            let naive: Vec<i64> = (1..=n).filter(|d| n % d == 0).collect();
            assert_eq!(divisors(n), naive, "n = {n}");
        }
    }

    #[test]
    fn products_between_lists_representable_products() {
        let s = DesignSpace::new(&[64, 32], &[true, true]);
        let products = s.products_between(1, 2048);
        // Exactly the powers of two 1..=2048 (products of two powers of
        // two bounded by 64·32).
        let expect: Vec<i64> = (0..=11).map(|k| 1i64 << k).collect();
        assert_eq!(products, expect);
        // Agreement with members_with_product over the whole range.
        let (lo, hi) = (s.base_vector(), s.max_vector());
        for p in 1..=2048 {
            let has_member = !s.members_with_product(p, &lo, &hi).is_empty();
            assert_eq!(products.contains(&p), has_member, "product {p}");
        }
        assert_eq!(s.products_between(3, 7), vec![4]);
        assert_eq!(s.products_between(9, 3), Vec::<i64>::new());
    }

    #[test]
    fn products_between_respects_pinned_levels() {
        let s = DesignSpace::new(&[12, 5, 8], &[true, false, true]);
        let products = s.products_between(1, 96);
        assert!(products.contains(&1));
        assert!(products.contains(&96)); // 12 · 1 · 8
        assert!(!products.contains(&5)); // pinned level contributes only 1
        for &p in &products {
            let m = s.members_with_product(p, &s.base_vector(), &s.max_vector());
            assert!(!m.is_empty(), "product {p} has no member");
        }
    }

    #[test]
    fn fir_space_size() {
        // 64 has 7 divisors, 32 has 6: 42 candidate designs.
        let s = DesignSpace::new(&[64, 32], &[true, true]);
        assert_eq!(s.size(), 42);
        assert_eq!(s.iter().count(), 42);
        assert_eq!(s.max_vector(), UnrollVector(vec![64, 32]));
        assert_eq!(s.base_vector(), UnrollVector(vec![1, 1]));
    }

    #[test]
    fn pinned_levels() {
        let s = DesignSpace::new(&[32, 4, 16], &[true, true, false]);
        assert_eq!(s.size(), 6 * 3);
        assert!(s.contains(&UnrollVector(vec![8, 2, 1])));
        assert!(!s.contains(&UnrollVector(vec![8, 2, 2])));
        assert!(!s.contains(&UnrollVector(vec![5, 1, 1])));
    }

    #[test]
    fn members_with_product() {
        let s = DesignSpace::new(&[64, 32], &[true, true]);
        let lo = s.base_vector();
        let hi = s.max_vector();
        let m4 = s.members_with_product(4, &lo, &hi);
        // (1,4), (2,2), (4,1)
        assert_eq!(m4.len(), 3);
        assert!(m4.contains(&UnrollVector(vec![2, 2])));
        // Bounded below by (2,1): only (2,2) and (4,1).
        let bounded = s.members_with_product(4, &UnrollVector(vec![2, 1]), &hi);
        assert_eq!(bounded.len(), 2);
        // Product not representable by divisors.
        assert!(s.members_with_product(3, &lo, &hi).is_empty());
    }

    #[test]
    fn iteration_covers_space_without_duplicates() {
        let s = DesignSpace::new(&[4, 4], &[true, true]);
        let mut all: Vec<UnrollVector> = s.iter().collect();
        assert_eq!(all.len(), 9);
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 9);
    }
}
