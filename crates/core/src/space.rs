//! The design space: divisor unroll-factor vectors.
//!
//! Behavioral synthesis needs constant loop bounds, so the system
//! explores unroll factors that evenly divide each loop's trip count —
//! no cleanup code, every candidate synthesizable. Loops that do not
//! contribute memory parallelism (e.g. the innermost MM loop after
//! loop-invariant code motion removed its accesses) can be pinned to a
//! factor of 1.

use defacto_xform::UnrollVector;

/// The set of candidate unroll vectors for one kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignSpace {
    /// Allowed factors per loop level, ascending, always containing 1.
    factors_per_level: Vec<Vec<i64>>,
}

impl DesignSpace {
    /// Build the space from per-loop trip counts; `explore[l] == false`
    /// pins loop `l` to factor 1.
    pub fn new(trip_counts: &[i64], explore: &[bool]) -> Self {
        let factors_per_level = trip_counts
            .iter()
            .zip(explore)
            .map(|(&n, &on)| if on { divisors(n) } else { vec![1] })
            .collect();
        DesignSpace { factors_per_level }
    }

    /// Number of loop levels.
    pub fn levels(&self) -> usize {
        self.factors_per_level.len()
    }

    /// Allowed factors at `level`, ascending.
    pub fn factors_at(&self, level: usize) -> &[i64] {
        &self.factors_per_level[level]
    }

    /// Total number of candidate vectors.
    pub fn size(&self) -> u64 {
        self.factors_per_level
            .iter()
            .map(|f| f.len() as u64)
            .product()
    }

    /// Is `u` a member of the space?
    pub fn contains(&self, u: &UnrollVector) -> bool {
        u.factors().len() == self.levels()
            && u.factors()
                .iter()
                .zip(&self.factors_per_level)
                .all(|(f, allowed)| allowed.contains(f))
    }

    /// The maximal vector (full unrolling of explored loops).
    pub fn max_vector(&self) -> UnrollVector {
        UnrollVector(
            self.factors_per_level
                .iter()
                .map(|f| *f.last().expect("divisors nonempty"))
                .collect(),
        )
    }

    /// The baseline vector (no unrolling).
    pub fn base_vector(&self) -> UnrollVector {
        UnrollVector(vec![1; self.levels()])
    }

    /// Iterate over every vector in the space (outer levels vary
    /// slowest).
    pub fn iter(&self) -> impl Iterator<Item = UnrollVector> + '_ {
        let mut idx = vec![0usize; self.levels()];
        let mut done = self.size() == 0;
        std::iter::from_fn(move || {
            if done {
                return None;
            }
            let v = UnrollVector(
                idx.iter()
                    .zip(&self.factors_per_level)
                    .map(|(&i, f)| f[i])
                    .collect(),
            );
            // Advance, innermost fastest.
            let mut l = self.levels();
            loop {
                if l == 0 {
                    done = true;
                    break;
                }
                l -= 1;
                idx[l] += 1;
                if idx[l] < self.factors_per_level[l].len() {
                    break;
                }
                idx[l] = 0;
            }
            Some(v)
        })
    }

    /// All members with the given product whose factors lie between `lo`
    /// and `hi` (component-wise, inclusive). Used by the search's
    /// `Increase`/`SelectBetween` steps.
    pub fn members_with_product(
        &self,
        product: i64,
        lo: &UnrollVector,
        hi: &UnrollVector,
    ) -> Vec<UnrollVector> {
        let mut out = Vec::new();
        let mut cur = Vec::with_capacity(self.levels());
        self.enumerate_product(0, product, lo, hi, &mut cur, &mut out);
        out
    }

    fn enumerate_product(
        &self,
        level: usize,
        remaining: i64,
        lo: &UnrollVector,
        hi: &UnrollVector,
        cur: &mut Vec<i64>,
        out: &mut Vec<UnrollVector>,
    ) {
        if level == self.levels() {
            if remaining == 1 {
                out.push(UnrollVector(cur.clone()));
            }
            return;
        }
        for &f in &self.factors_per_level[level] {
            if f < lo.factors()[level] || f > hi.factors()[level] || remaining % f != 0 {
                continue;
            }
            cur.push(f);
            self.enumerate_product(level + 1, remaining / f, lo, hi, cur, out);
            cur.pop();
        }
    }
}

/// Positive divisors of `n`, ascending (divisors of 1 when `n < 1`).
pub fn divisors(n: i64) -> Vec<i64> {
    let n = n.max(1);
    let mut out: Vec<i64> = (1..=n).filter(|d| n % d == 0).collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divisor_lists() {
        assert_eq!(divisors(32), vec![1, 2, 4, 8, 16, 32]);
        assert_eq!(divisors(12), vec![1, 2, 3, 4, 6, 12]);
        assert_eq!(divisors(1), vec![1]);
        assert_eq!(divisors(0), vec![1]);
    }

    #[test]
    fn fir_space_size() {
        // 64 has 7 divisors, 32 has 6: 42 candidate designs.
        let s = DesignSpace::new(&[64, 32], &[true, true]);
        assert_eq!(s.size(), 42);
        assert_eq!(s.iter().count(), 42);
        assert_eq!(s.max_vector(), UnrollVector(vec![64, 32]));
        assert_eq!(s.base_vector(), UnrollVector(vec![1, 1]));
    }

    #[test]
    fn pinned_levels() {
        let s = DesignSpace::new(&[32, 4, 16], &[true, true, false]);
        assert_eq!(s.size(), 6 * 3);
        assert!(s.contains(&UnrollVector(vec![8, 2, 1])));
        assert!(!s.contains(&UnrollVector(vec![8, 2, 2])));
        assert!(!s.contains(&UnrollVector(vec![5, 1, 1])));
    }

    #[test]
    fn members_with_product() {
        let s = DesignSpace::new(&[64, 32], &[true, true]);
        let lo = s.base_vector();
        let hi = s.max_vector();
        let m4 = s.members_with_product(4, &lo, &hi);
        // (1,4), (2,2), (4,1)
        assert_eq!(m4.len(), 3);
        assert!(m4.contains(&UnrollVector(vec![2, 2])));
        // Bounded below by (2,1): only (2,2) and (4,1).
        let bounded = s.members_with_product(4, &UnrollVector(vec![2, 1]), &hi);
        assert_eq!(bounded.len(), 2);
        // Product not representable by divisors.
        assert!(s.members_with_product(3, &lo, &hi).is_empty());
    }

    #[test]
    fn iteration_covers_space_without_duplicates() {
        let s = DesignSpace::new(&[4, 4], &[true, true]);
        let mut all: Vec<UnrollVector> = s.iter().collect();
        assert_eq!(all.len(), 9);
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 9);
    }
}
