//! The design space: divisor unroll-factor vectors, optionally extended
//! into a typed multi-axis product space.
//!
//! Behavioral synthesis needs constant loop bounds, so the system
//! explores unroll factors that evenly divide each loop's trip count —
//! no cleanup code, every candidate synthesizable. Loops that do not
//! contribute memory parallelism (e.g. the innermost MM loop after
//! loop-invariant code motion removed its accesses) can be pinned to a
//! factor of 1.
//!
//! [`DesignSpace::with_axes`] generalizes the unroll-vector set into a
//! product over typed [`Axis`] domains — unroll × interchange
//! permutation × tile size × narrowing × packing — whose domains are
//! constructed *from* a kernel's
//! [`LegalitySummary`](defacto_analysis::LegalitySummary). Every
//! enumerated [`JointPoint`] is therefore statically proven legal before
//! the engine evaluates anything: the membership filter and the
//! transforms' own gates are literally the same predicates
//! (`defacto_analysis::legality`), so membership implies transform
//! success. Points excluded by legality are counted in
//! [`PrunedCounts`] — the static pruning that keeps joint sweeps
//! tractable.

use defacto_analysis::LegalitySummary;
use defacto_xform::UnrollVector;
use std::fmt;

/// One axis of the joint transformation space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Axis {
    /// Unroll-and-jam factor vectors (the classic space).
    Unroll,
    /// Loop-nest permutations from the summary's legal set.
    Interchange,
    /// Register-tiling `(level, tile-size)` choices on tilable levels.
    Tile,
    /// Bit-width narrowing on/off (only offered when the summary proves
    /// some array actually narrows).
    Narrow,
    /// Data packing on/off (only offered when the summary proves packing
    /// can share a memory word).
    Pack,
}

impl Axis {
    /// Every axis, in canonical order.
    pub const ALL: [Axis; 5] = [
        Axis::Unroll,
        Axis::Interchange,
        Axis::Tile,
        Axis::Narrow,
        Axis::Pack,
    ];

    /// Stable lower-case label, for JSON output and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            Axis::Unroll => "unroll",
            Axis::Interchange => "interchange",
            Axis::Tile => "tile",
            Axis::Narrow => "narrow",
            Axis::Pack => "pack",
        }
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for Axis {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s {
            "unroll" => Ok(Axis::Unroll),
            "interchange" => Ok(Axis::Interchange),
            "tile" => Ok(Axis::Tile),
            "narrow" => Ok(Axis::Narrow),
            "pack" => Ok(Axis::Pack),
            other => Err(format!(
                "unknown axis `{other}` (expected unroll|interchange|tile|narrow|pack)"
            )),
        }
    }
}

/// One point of the joint space: a coordinate per axis. Axes not
/// selected (or pruned to a single choice) sit at their baseline — the
/// identity permutation, no tile, flags off.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JointPoint {
    /// Unroll factors, applied to the *permuted* nest (outermost first).
    pub unroll: Vec<i64>,
    /// Nest permutation: `permutation[k]` is the original level placed at
    /// position `k`.
    pub permutation: Vec<usize>,
    /// Register tiling: `(level, tile_size)` on the original nest, or
    /// `None`.
    pub tile: Option<(usize, i64)>,
    /// Bit-width narrowing enabled for this point.
    pub narrow: bool,
    /// Data packing enabled for this point.
    pub pack: bool,
}

impl JointPoint {
    /// The baseline point of a `depth`-deep nest: all-ones unroll,
    /// identity permutation, no tile, flags off.
    pub fn baseline(depth: usize) -> JointPoint {
        JointPoint {
            unroll: vec![1; depth],
            permutation: (0..depth).collect(),
            tile: None,
            narrow: false,
            pack: false,
        }
    }

    /// The unroll coordinate as an [`UnrollVector`].
    pub fn unroll_vector(&self) -> UnrollVector {
        UnrollVector(self.unroll.clone())
    }

    /// Is the permutation the identity?
    pub fn identity_permutation(&self) -> bool {
        self.permutation.iter().enumerate().all(|(k, &l)| k == l)
    }

    /// True when every non-unroll coordinate sits at its baseline — the
    /// point projects onto the legacy unroll-only space.
    pub fn is_unroll_only(&self) -> bool {
        self.identity_permutation() && self.tile.is_none() && !self.narrow && !self.pack
    }
}

/// How many candidate coordinates legality analysis excluded while the
/// joint space was built — the static pruning that keeps joint sweeps
/// tractable (each count is work the engine never has to evaluate *or*
/// reject at transform time).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrunedCounts {
    /// Nest permutations that would reorder a dependence.
    pub permutations: u64,
    /// (permutation, unroll) combinations whose jam would be illegal
    /// under the permuted nest.
    pub unroll_perm: u64,
    /// Tile candidates on levels whose hoist would reorder a dependence.
    pub tiles: u64,
}

impl PrunedCounts {
    /// Total coordinates pruned by legality.
    pub fn total(&self) -> u64 {
        self.permutations + self.unroll_perm + self.tiles
    }
}

/// The multi-axis half of a [`DesignSpace`] (absent on legacy
/// unroll-only spaces built with [`DesignSpace::new`]).
#[derive(Debug, Clone, PartialEq, Eq)]
struct JointExtension {
    axes: Vec<Axis>,
    points: Vec<JointPoint>,
    pruned: PrunedCounts,
}

/// The set of candidate unroll vectors for one kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignSpace {
    /// Allowed factors per loop level, ascending, always containing 1.
    factors_per_level: Vec<Vec<i64>>,
    /// The joint extension, when built with [`DesignSpace::with_axes`].
    joint: Option<JointExtension>,
}

impl DesignSpace {
    /// Build the space from per-loop trip counts; `explore[l] == false`
    /// pins loop `l` to factor 1.
    pub fn new(trip_counts: &[i64], explore: &[bool]) -> Self {
        let factors_per_level = trip_counts
            .iter()
            .zip(explore)
            .map(|(&n, &on)| if on { divisors(n) } else { vec![1] })
            .collect();
        DesignSpace {
            factors_per_level,
            joint: None,
        }
    }

    /// Build a joint multi-axis space whose axis domains are constructed
    /// from `summary` — see the module docs. `trip_counts`/`explore`
    /// seed the unroll axis exactly like [`DesignSpace::new`] (identical
    /// factor domains, so the unroll-only configuration reproduces the
    /// legacy space bit for bit); `word_bits` is the memory word width
    /// the packing axis is judged against.
    ///
    /// Every enumerated [`JointPoint`] is statically legal:
    ///
    /// - permutations come from [`LegalitySummary::legal_permutations`];
    /// - each (permutation, unroll) pair passes
    ///   [`LegalitySummary::jam_violation_under`] — the exact predicate
    ///   `unroll_and_jam` and `PreparedKernel::validate_factors` gate on;
    /// - tiles sit on [`LegalitySummary::tilable`] levels with dividing
    ///   sizes, attached to the baseline unroll/permutation (register
    ///   tiling is checked against the original nest);
    /// - the narrowing/packing flags are only offered when the summary
    ///   proves they change anything.
    pub fn with_axes(
        trip_counts: &[i64],
        explore: &[bool],
        summary: &LegalitySummary,
        axes: &[Axis],
        word_bits: u32,
    ) -> Self {
        let depth = trip_counts.len();
        let unroll_on = axes.contains(&Axis::Unroll);
        let factors_per_level: Vec<Vec<i64>> = trip_counts
            .iter()
            .zip(explore)
            .map(|(&n, &on)| {
                if unroll_on && on {
                    divisors(n)
                } else {
                    vec![1]
                }
            })
            .collect();
        let base = DesignSpace {
            factors_per_level,
            joint: None,
        };
        let mut pruned = PrunedCounts::default();

        let identity: Vec<usize> = (0..depth).collect();
        let permutations: Vec<Vec<usize>> = if axes.contains(&Axis::Interchange) {
            let legal = summary.legal_permutations().to_vec();
            pruned.permutations = factorial(depth).saturating_sub(legal.len() as u64);
            legal
        } else {
            vec![identity.clone()]
        };

        let narrow_options: &[bool] =
            if axes.contains(&Axis::Narrow) && summary.narrowing_applicable() {
                &[false, true]
            } else {
                &[false]
            };
        let pack_options: &[bool] =
            if axes.contains(&Axis::Pack) && summary.packing_effective(word_bits) {
                &[false, true]
            } else {
                &[false]
            };

        let mut points = Vec::new();
        // The candidate tuple lives in a reused scratch buffer borrowed
        // against the axis domains; a vector is allocated only for the
        // candidates the jam check promotes into the space.
        let mut permuted = vec![0i64; depth];
        for perm in &permutations {
            base.for_each_member(|u| {
                // `u` assigns a factor to each *original* level; the
                // factor follows its loop through the permutation, so
                // position `k` of the permuted nest keeps a divisor of
                // its own trip count. The summary then checks the
                // permuted distance vectors plus the carried-scalar rule
                // — identical to what the transforms would reject, so
                // nothing survives that could fail.
                for (k, &l) in perm.iter().enumerate() {
                    permuted[k] = u[l];
                }
                if summary.jam_violation_under(perm, &permuted).is_some() {
                    pruned.unroll_perm += 1;
                    return;
                }
                for &narrow in narrow_options {
                    for &pack in pack_options {
                        points.push(JointPoint {
                            unroll: permuted.clone(),
                            permutation: perm.clone(),
                            tile: None,
                            narrow,
                            pack,
                        });
                    }
                }
            });
        }
        if axes.contains(&Axis::Tile) {
            for (level, &trip) in trip_counts.iter().enumerate() {
                let candidates: Vec<i64> = divisors(trip)
                    .into_iter()
                    .filter(|&t| t > 1 && t < trip)
                    .collect();
                if !summary.tilable(level) {
                    pruned.tiles += candidates.len() as u64;
                    continue;
                }
                for t in candidates {
                    for &narrow in narrow_options {
                        for &pack in pack_options {
                            points.push(JointPoint {
                                unroll: vec![1; depth],
                                permutation: identity.clone(),
                                tile: Some((level, t)),
                                narrow,
                                pack,
                            });
                        }
                    }
                }
            }
        }

        DesignSpace {
            factors_per_level: base.factors_per_level,
            joint: Some(JointExtension {
                axes: axes.to_vec(),
                points,
                pruned,
            }),
        }
    }

    /// The axes of a joint space (`None` on legacy unroll-only spaces).
    pub fn axes(&self) -> Option<&[Axis]> {
        self.joint.as_ref().map(|j| j.axes.as_slice())
    }

    /// Is this a joint multi-axis space?
    pub fn is_joint(&self) -> bool {
        self.joint.is_some()
    }

    /// The statically-legal joint points, in enumeration order (empty on
    /// legacy spaces).
    pub fn joint_points(&self) -> &[JointPoint] {
        self.joint.as_ref().map_or(&[], |j| j.points.as_slice())
    }

    /// Number of joint points.
    pub fn joint_size(&self) -> u64 {
        self.joint.as_ref().map_or(0, |j| j.points.len() as u64)
    }

    /// Is `p` a member of the joint space? Always false on legacy
    /// spaces. Membership is static proof of legality: the constructor
    /// only admits points the transforms provably accept.
    pub fn contains_joint(&self, p: &JointPoint) -> bool {
        self.joint.as_ref().is_some_and(|j| j.points.contains(p))
    }

    /// How many candidate coordinates legality pruned during
    /// construction (`None` on legacy spaces).
    pub fn pruned_counts(&self) -> Option<PrunedCounts> {
        self.joint.as_ref().map(|j| j.pruned)
    }

    /// Number of loop levels.
    pub fn levels(&self) -> usize {
        self.factors_per_level.len()
    }

    /// Allowed factors at `level`, ascending.
    pub fn factors_at(&self, level: usize) -> &[i64] {
        &self.factors_per_level[level]
    }

    /// Total number of candidate vectors.
    pub fn size(&self) -> u64 {
        self.factors_per_level
            .iter()
            .map(|f| f.len() as u64)
            .product()
    }

    /// Is `u` a member of the space?
    pub fn contains(&self, u: &UnrollVector) -> bool {
        u.factors().len() == self.levels()
            && u.factors()
                .iter()
                .zip(&self.factors_per_level)
                .all(|(f, allowed)| allowed.contains(f))
    }

    /// The maximal vector (full unrolling of explored loops).
    pub fn max_vector(&self) -> UnrollVector {
        UnrollVector(
            self.factors_per_level
                .iter()
                .map(|f| *f.last().expect("divisors nonempty"))
                .collect(),
        )
    }

    /// The baseline vector (no unrolling).
    pub fn base_vector(&self) -> UnrollVector {
        UnrollVector(vec![1; self.levels()])
    }

    /// Iterate over every vector in the space (outer levels vary
    /// slowest).
    pub fn iter(&self) -> impl Iterator<Item = UnrollVector> + '_ {
        let mut idx = vec![0usize; self.levels()];
        let mut done = self.size() == 0;
        std::iter::from_fn(move || {
            if done {
                return None;
            }
            let v = UnrollVector(
                idx.iter()
                    .zip(&self.factors_per_level)
                    .map(|(&i, f)| f[i])
                    .collect(),
            );
            // Advance, innermost fastest.
            let mut l = self.levels();
            loop {
                if l == 0 {
                    done = true;
                    break;
                }
                l -= 1;
                idx[l] += 1;
                if idx[l] < self.factors_per_level[l].len() {
                    break;
                }
                idx[l] = 0;
            }
            Some(v)
        })
    }

    /// Visit every vector in the space (outer levels vary slowest,
    /// identical order to [`Self::iter`]), passing each as a slice
    /// borrowed from a reused buffer — the allocation-free counterpart
    /// of [`Self::iter`] for hot enumeration loops.
    pub fn for_each_member(&self, mut f: impl FnMut(&[i64])) {
        if self.size() == 0 {
            return;
        }
        let levels = self.levels();
        let mut idx = vec![0usize; levels];
        let mut cur: Vec<i64> = self.factors_per_level.iter().map(|f| f[0]).collect();
        loop {
            f(&cur);
            // Advance, innermost fastest.
            let mut l = levels;
            loop {
                if l == 0 {
                    return;
                }
                l -= 1;
                idx[l] += 1;
                if idx[l] < self.factors_per_level[l].len() {
                    cur[l] = self.factors_per_level[l][idx[l]];
                    break;
                }
                idx[l] = 0;
                cur[l] = self.factors_per_level[l][0];
            }
        }
    }

    /// All members with the given product whose factors lie between `lo`
    /// and `hi` (component-wise, inclusive). Used by the search's
    /// `Increase`/`SelectBetween` steps.
    pub fn members_with_product(
        &self,
        product: i64,
        lo: &UnrollVector,
        hi: &UnrollVector,
    ) -> Vec<UnrollVector> {
        let mut out = Vec::new();
        let mut cur = Vec::with_capacity(self.levels());
        self.enumerate_product(0, product, lo, hi, &mut cur, &mut out);
        out
    }

    fn enumerate_product(
        &self,
        level: usize,
        remaining: i64,
        lo: &UnrollVector,
        hi: &UnrollVector,
        cur: &mut Vec<i64>,
        out: &mut Vec<UnrollVector>,
    ) {
        if level == self.levels() {
            if remaining == 1 {
                out.push(UnrollVector(cur.clone()));
            }
            return;
        }
        for &f in &self.factors_per_level[level] {
            if f < lo.factors()[level] || f > hi.factors()[level] || remaining % f != 0 {
                continue;
            }
            cur.push(f);
            self.enumerate_product(level + 1, remaining / f, lo, hi, cur, out);
            cur.pop();
        }
    }

    /// Every product actually representable by a member of the space,
    /// restricted to `lo..=hi`, ascending. These are exactly the
    /// products for which [`Self::members_with_product`] (with full
    /// bounds) is non-empty, so candidate scans can iterate this set
    /// instead of every integer in a range.
    pub fn products_between(&self, lo: i64, hi: i64) -> Vec<i64> {
        use std::collections::BTreeSet;
        if hi < lo || hi < 1 {
            return Vec::new();
        }
        let mut products: BTreeSet<i64> = BTreeSet::new();
        products.insert(1);
        for factors in &self.factors_per_level {
            let mut next = BTreeSet::new();
            for &p in &products {
                for &f in factors {
                    match p.checked_mul(f) {
                        Some(q) if q <= hi => {
                            next.insert(q);
                        }
                        // Factors are ascending, so every later factor
                        // also overflows the bound.
                        _ => break,
                    }
                }
            }
            products = next;
        }
        products.into_iter().filter(|&p| p >= lo).collect()
    }
}

/// Positive divisors of `n`, ascending (divisors of 1 when `n < 1`).
/// Enumerated in O(√n) by pairing each divisor `d ≤ √n` with `n / d`.
pub fn divisors(n: i64) -> Vec<i64> {
    let n = n.max(1);
    let mut low = Vec::new();
    let mut high = Vec::new();
    let mut d = 1;
    while d * d <= n {
        if n % d == 0 {
            low.push(d);
            if d != n / d {
                high.push(n / d);
            }
        }
        d += 1;
    }
    high.reverse();
    low.extend(high);
    low
}

/// `n!` as a `u64` (nest depths are tiny; saturates defensively).
fn factorial(n: usize) -> u64 {
    (1..=n as u64).fold(1u64, |acc, k| acc.saturating_mul(k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divisor_lists() {
        assert_eq!(divisors(32), vec![1, 2, 4, 8, 16, 32]);
        assert_eq!(divisors(12), vec![1, 2, 3, 4, 6, 12]);
        assert_eq!(divisors(36), vec![1, 2, 3, 4, 6, 9, 12, 18, 36]);
        assert_eq!(divisors(1), vec![1]);
        assert_eq!(divisors(0), vec![1]);
    }

    #[test]
    fn divisors_match_naive_enumeration() {
        for n in 1..=200 {
            let naive: Vec<i64> = (1..=n).filter(|d| n % d == 0).collect();
            assert_eq!(divisors(n), naive, "n = {n}");
        }
    }

    #[test]
    fn products_between_lists_representable_products() {
        let s = DesignSpace::new(&[64, 32], &[true, true]);
        let products = s.products_between(1, 2048);
        // Exactly the powers of two 1..=2048 (products of two powers of
        // two bounded by 64·32).
        let expect: Vec<i64> = (0..=11).map(|k| 1i64 << k).collect();
        assert_eq!(products, expect);
        // Agreement with members_with_product over the whole range.
        let (lo, hi) = (s.base_vector(), s.max_vector());
        for p in 1..=2048 {
            let has_member = !s.members_with_product(p, &lo, &hi).is_empty();
            assert_eq!(products.contains(&p), has_member, "product {p}");
        }
        assert_eq!(s.products_between(3, 7), vec![4]);
        assert_eq!(s.products_between(9, 3), Vec::<i64>::new());
    }

    #[test]
    fn products_between_respects_pinned_levels() {
        let s = DesignSpace::new(&[12, 5, 8], &[true, false, true]);
        let products = s.products_between(1, 96);
        assert!(products.contains(&1));
        assert!(products.contains(&96)); // 12 · 1 · 8
        assert!(!products.contains(&5)); // pinned level contributes only 1
        for &p in &products {
            let m = s.members_with_product(p, &s.base_vector(), &s.max_vector());
            assert!(!m.is_empty(), "product {p} has no member");
        }
    }

    #[test]
    fn fir_space_size() {
        // 64 has 7 divisors, 32 has 6: 42 candidate designs.
        let s = DesignSpace::new(&[64, 32], &[true, true]);
        assert_eq!(s.size(), 42);
        assert_eq!(s.iter().count(), 42);
        assert_eq!(s.max_vector(), UnrollVector(vec![64, 32]));
        assert_eq!(s.base_vector(), UnrollVector(vec![1, 1]));
    }

    #[test]
    fn pinned_levels() {
        let s = DesignSpace::new(&[32, 4, 16], &[true, true, false]);
        assert_eq!(s.size(), 6 * 3);
        assert!(s.contains(&UnrollVector(vec![8, 2, 1])));
        assert!(!s.contains(&UnrollVector(vec![8, 2, 2])));
        assert!(!s.contains(&UnrollVector(vec![5, 1, 1])));
    }

    #[test]
    fn members_with_product() {
        let s = DesignSpace::new(&[64, 32], &[true, true]);
        let lo = s.base_vector();
        let hi = s.max_vector();
        let m4 = s.members_with_product(4, &lo, &hi);
        // (1,4), (2,2), (4,1)
        assert_eq!(m4.len(), 3);
        assert!(m4.contains(&UnrollVector(vec![2, 2])));
        // Bounded below by (2,1): only (2,2) and (4,1).
        let bounded = s.members_with_product(4, &UnrollVector(vec![2, 1]), &hi);
        assert_eq!(bounded.len(), 2);
        // Product not representable by divisors.
        assert!(s.members_with_product(3, &lo, &hi).is_empty());
    }

    #[test]
    fn iteration_covers_space_without_duplicates() {
        let s = DesignSpace::new(&[4, 4], &[true, true]);
        let mut all: Vec<UnrollVector> = s.iter().collect();
        assert_eq!(all.len(), 9);
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 9);
    }

    #[test]
    fn for_each_member_matches_iter_order_exactly() {
        for space in [
            DesignSpace::new(&[4, 4], &[true, true]),
            DesignSpace::new(&[12, 5, 8], &[true, false, true]),
            DesignSpace::new(&[7], &[true]),
        ] {
            let collected: Vec<UnrollVector> = space.iter().collect();
            let mut visited = Vec::new();
            space.for_each_member(|u| visited.push(UnrollVector(u.to_vec())));
            assert_eq!(visited, collected);
        }
    }

    const FIR: &str = "kernel fir { in S: i32[96]; in C: i32[32]; inout D: i32[64];
       for j in 0..64 { for i in 0..32 {
         D[j] = D[j] + S[i + j] * C[i]; } } }";

    fn fir_summary() -> LegalitySummary {
        let k = defacto_ir::parse_kernel(FIR).unwrap();
        LegalitySummary::analyze(&k).unwrap()
    }

    #[test]
    fn axis_labels_round_trip() {
        for axis in Axis::ALL {
            assert_eq!(axis.label().parse::<Axis>().unwrap(), axis);
        }
        assert!("unrol".parse::<Axis>().is_err());
        assert!("".parse::<Axis>().is_err());
    }

    #[test]
    fn unroll_only_joint_space_projects_to_the_legacy_space() {
        let summary = fir_summary();
        let legacy = DesignSpace::new(&[64, 32], &[true, true]);
        let joint = DesignSpace::with_axes(&[64, 32], &[true, true], &summary, &[Axis::Unroll], 32);
        assert!(joint.is_joint() && !legacy.is_joint());
        // Same unroll factor domains bit for bit.
        assert_eq!(joint.size(), legacy.size());
        let legacy_vectors: Vec<UnrollVector> = legacy.iter().collect();
        let joint_vectors: Vec<UnrollVector> = joint
            .joint_points()
            .iter()
            .map(|p| {
                assert!(p.is_unroll_only());
                p.unroll_vector()
            })
            .collect();
        assert_eq!(joint_vectors, legacy_vectors);
        assert_eq!(joint.pruned_counts().unwrap().total(), 0);
    }

    #[test]
    fn fir_all_axes_space_shape() {
        let summary = fir_summary();
        let joint = DesignSpace::with_axes(&[64, 32], &[true, true], &summary, &Axis::ALL, 32);
        // FIR: both orders legal, no narrowing/packing applies (i32 at a
        // 32-bit word), every level tilable. 2 perms × 42 unroll vectors
        // + proper-divisor tiles (5 on the 64 loop, 4 on the 32 loop).
        assert_eq!(joint.joint_size(), 2 * 42 + 5 + 4);
        assert_eq!(joint.pruned_counts().unwrap().total(), 0);
        // Membership is exact.
        let member = &joint.joint_points()[0];
        assert!(joint.contains_joint(member));
        let mut outsider = member.clone();
        outsider.unroll = vec![3, 1];
        assert!(!joint.contains_joint(&outsider));
        // Legacy spaces have no joint members.
        assert!(!DesignSpace::new(&[64, 32], &[true, true]).contains_joint(member));
    }

    #[test]
    fn wavefront_legality_prunes_the_joint_space() {
        // A[i][j] = A[i-1][j+1]: distance (1, -1) pins the identity order,
        // blocks outer jam, and makes no level tilable (hoisting any tile
        // loop would cross the carrying level... level 0 carries it, so
        // level 0 itself stays hoistable but level 1 does not).
        let k = defacto_ir::parse_kernel(
            "kernel wf { inout A: i32[9][10];
               for i in 1..9 { for j in 0..8 {
                 A[i][j] = A[i - 1][j + 1] + 1; } } }",
        )
        .unwrap();
        let k = defacto_xform::normalize_loops(&k).unwrap();
        let summary = LegalitySummary::analyze(&k).unwrap();
        let trips: Vec<i64> = k.perfect_nest().unwrap().trip_counts();
        let joint = DesignSpace::with_axes(&trips, &[true, true], &summary, &Axis::ALL, 32);
        let pruned = joint.pruned_counts().unwrap();
        assert_eq!(pruned.permutations, 1, "swap must be pruned");
        assert!(pruned.unroll_perm > 0, "outer jams must be pruned");
        assert!(pruned.tiles > 0, "j-tiles must be pruned");
        // Everything that survives is statically legal: the identity
        // permutation only, and no unroll vector with an outer factor > 1.
        for p in joint.joint_points() {
            assert!(p.identity_permutation());
            assert!(summary
                .jam_violation_under(&p.permutation, &p.unroll)
                .is_none());
            if let Some((level, _)) = p.tile {
                assert!(summary.tilable(level));
            }
        }
    }

    #[test]
    fn flag_axes_only_appear_when_the_summary_proves_them() {
        // u8 input feeding an i32 accumulator with a declared range:
        // packing and narrowing both apply.
        let k = defacto_ir::parse_kernel(
            "kernel p { in A: u8[64]; out B: i32[64] range 0..100;
               for i in 0..64 { B[i] = A[i] + 1; } }",
        )
        .unwrap();
        let summary = LegalitySummary::analyze(&k).unwrap();
        assert!(summary.packing_effective(32));
        assert!(summary.narrowing_applicable());
        let joint = DesignSpace::with_axes(&[64], &[true], &summary, &Axis::ALL, 32);
        // 7 unroll vectors × {narrow off/on} × {pack off/on} + 5 tiles × 4.
        assert_eq!(joint.joint_size(), 7 * 4 + 5 * 4);
        assert!(joint.joint_points().iter().any(|p| p.narrow && p.pack));
        // At a word width the elements already fill, the pack flag
        // collapses back to off.
        let narrow_only = DesignSpace::with_axes(&[64], &[true], &summary, &Axis::ALL, 8);
        assert!(narrow_only.joint_points().iter().all(|p| !p.pack));
    }
}
