//! Platform-aware lint: the capacity rule `DF009`.
//!
//! The front-end rules (`DF001`–`DF008`) live in `defacto_analysis::lint`
//! and need nothing but the kernel. `DF009` asks whether the *platform*
//! can realize the kernel's saturation point — it needs saturation
//! analysis and behavioral-synthesis estimates, so it lives here and is
//! composed with the front-end driver by [`Explorer::lint`].

use crate::explorer::Explorer;
use defacto_analysis::{lint_kernel, LintReport};
use defacto_ir::diag::{codes, Diagnostic};
use defacto_xform::UnrollVector;

impl Explorer<'_> {
    /// The `DF009` capacity check against this explorer's device.
    ///
    /// - **error** when not even the baseline design (no unrolling) fits
    ///   the device — every point of the space is infeasible;
    /// - **warning** when the baseline fits but no saturation-set design
    ///   does: the search will terminate on capacity before reaching
    ///   balance, settling for a memory-starved design.
    ///
    /// Kernels the saturation analysis rejects (imperfect nests) yield no
    /// diagnostics here — the front-end rules already report why.
    pub fn capacity_diagnostics(&self) -> Vec<Diagnostic> {
        let Ok((sat, space)) = self.analyze() else {
            return Vec::new();
        };
        let device = self.device_ref();
        let baseline = UnrollVector::ones(space.levels());
        if let Ok(d) = self.evaluate(&baseline) {
            if !d.estimate.fits {
                return vec![Diagnostic::error(
                    codes::CAPACITY_INFEASIBLE,
                    format!(
                        "baseline design needs {} slices but device `{}` has {}",
                        d.estimate.slices, device.name, device.capacity_slices
                    ),
                )
                .with_help("no unroll vector can fit; target a larger device")];
            }
        }
        let mut smallest: Option<u32> = None;
        for u in &sat.sat_set {
            match self.evaluate(u) {
                Ok(d) if d.estimate.fits => return Vec::new(),
                Ok(d) => {
                    smallest =
                        Some(smallest.map_or(d.estimate.slices, |s| s.min(d.estimate.slices)))
                }
                Err(_) => {}
            }
        }
        match smallest {
            Some(slices) => vec![Diagnostic::warning(
                codes::CAPACITY_INFEASIBLE,
                format!(
                    "no saturation-set design (P(U) = {}) fits device `{}`: \
                     smallest needs {} of {} slices",
                    sat.psat, device.name, slices, device.capacity_slices
                ),
            )
            .with_help(
                "the search will stop on capacity before reaching balance; \
                 target a larger device to exploit the full memory bandwidth",
            )],
            // Empty saturation set (psat above the space maximum): the
            // space itself caps parallelism first, capacity is moot.
            None => Vec::new(),
        }
    }

    /// Lint the kernel with every front-end rule plus the `DF009`
    /// capacity rule for this explorer's platform.
    ///
    /// The kernel is already parsed, so diagnostics carry no source
    /// spans; the CLI composes [`defacto_analysis::lint_source`] (which
    /// has them) with [`Explorer::capacity_diagnostics`] instead.
    pub fn lint(&self) -> LintReport {
        let mut report = lint_kernel(self.kernel_ref());
        for d in self.capacity_diagnostics() {
            report.push(d);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defacto_ir::parse_kernel;
    use defacto_synth::FpgaDevice;

    const FIR: &str = "kernel fir { in S: i32[96]; in C: i32[32]; inout D: i32[64];
       for j in 0..64 { for i in 0..32 {
         D[j] = D[j] + S[i + j] * C[i]; } } }";

    #[test]
    fn fir_on_virtex1000_is_capacity_clean() {
        let k = parse_kernel(FIR).unwrap();
        let report = Explorer::new(&k).lint();
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    }

    #[test]
    fn tiny_device_trips_df009() {
        let k = parse_kernel(FIR).unwrap();
        let tiny = FpgaDevice {
            name: "tiny".into(),
            capacity_slices: 900,
            clock_ns: 40,
        };
        let diags = Explorer::new(&k).device(tiny).capacity_diagnostics();
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, codes::CAPACITY_INFEASIBLE);
    }

    #[test]
    fn df009_is_an_error_when_even_the_baseline_overflows() {
        let k = parse_kernel(FIR).unwrap();
        let hopeless = FpgaDevice {
            name: "hopeless".into(),
            capacity_slices: 1,
            clock_ns: 40,
        };
        let report = Explorer::new(&k).device(hopeless).lint();
        assert!(report.has_errors(), "{:?}", report.diagnostics);
        assert_eq!(report.rule_hits.get("DF009"), Some(&1));
    }
}
