//! Exhaustive sweep of the design space.
//!
//! The paper's figures plot *every* point of the space to show where the
//! search's selection falls; this module provides that ground truth, and
//! the ablation benchmarks use it as the "no pruning" baseline.

use crate::engine::EvalEngine;
use crate::error::Result;
use crate::explorer::EvaluatedDesign;
use crate::space::DesignSpace;
use defacto_xform::UnrollVector;
use std::cmp::Ordering;

/// Evaluate every member of `space` with `eval`, in iteration order.
///
/// # Errors
///
/// Propagates the first evaluation failure.
pub fn exhaustive_sweep<E>(space: &DesignSpace, mut eval: E) -> Result<Vec<EvaluatedDesign>>
where
    E: FnMut(&UnrollVector) -> Result<EvaluatedDesign>,
{
    let mut out = Vec::with_capacity(space.size() as usize);
    for u in space.iter() {
        out.push(eval(&u)?);
    }
    Ok(out)
}

/// [`exhaustive_sweep`] fanned out across `engine`'s workers. Results
/// come back in the space's iteration order, and a failure propagates
/// the error of the *earliest* failing point — exactly what the serial
/// sweep reports — regardless of completion order.
///
/// # Errors
///
/// Propagates the first (in iteration order) evaluation failure.
pub fn parallel_sweep<E>(
    space: &DesignSpace,
    engine: &EvalEngine,
    eval: E,
) -> Result<Vec<EvaluatedDesign>>
where
    E: Fn(&UnrollVector) -> Result<EvaluatedDesign> + Sync,
{
    let members: Vec<UnrollVector> = space.iter().collect();
    engine
        .parallel_map(&members, |u| eval(u))
        .into_iter()
        .collect()
}

/// Order designs by (cycles, slices), ties to the lexicographically
/// smaller unroll vector — comparing factor slices directly, without
/// materializing a key vector per comparison.
fn speed_then_size(a: &EvaluatedDesign, b: &EvaluatedDesign) -> Ordering {
    (a.estimate.cycles, a.estimate.slices)
        .cmp(&(b.estimate.cycles, b.estimate.slices))
        .then_with(|| a.unroll.factors().cmp(b.unroll.factors()))
}

/// The fastest design in a sweep; ties go to the smaller design, then the
/// lexicographically smaller unroll vector (fully deterministic).
pub fn best_performance(sweep: &[EvaluatedDesign]) -> Option<&EvaluatedDesign> {
    sweep
        .iter()
        .filter(|d| d.estimate.fits)
        .min_by(|a, b| speed_then_size(a, b))
}

/// The smallest design within `tolerance` (relative) of the best cycle
/// count — the paper's criterion 3 applied to ground truth.
pub fn smallest_comparable(sweep: &[EvaluatedDesign], tolerance: f64) -> Option<&EvaluatedDesign> {
    let best = best_performance(sweep)?;
    let limit = (best.estimate.cycles as f64 * (1.0 + tolerance)) as u64;
    sweep
        .iter()
        .filter(|d| d.estimate.fits && d.estimate.cycles <= limit)
        .min_by(|a, b| {
            (a.estimate.slices, a.estimate.cycles)
                .cmp(&(b.estimate.slices, b.estimate.cycles))
                .then_with(|| a.unroll.factors().cmp(b.unroll.factors()))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::Explorer;
    use defacto_ir::parse_kernel;

    const FIR: &str = "kernel fir { in S: i32[96]; in C: i32[32]; inout D: i32[64];
       for j in 0..64 { for i in 0..32 {
         D[j] = D[j] + S[i + j] * C[i]; } } }";

    #[test]
    fn sweep_covers_whole_space() {
        let k = parse_kernel(FIR).unwrap();
        let ex = Explorer::new(&k);
        let sweep = ex.sweep().unwrap();
        assert_eq!(sweep.len(), 42);
        let best = best_performance(&sweep).unwrap();
        assert!(best.estimate.fits);
        // The best fitting design beats the baseline.
        let base = sweep.iter().find(|d| d.unroll.product() == 1).unwrap();
        assert!(best.estimate.cycles < base.estimate.cycles);
    }

    #[test]
    fn smallest_comparable_prefers_smaller_area() {
        let k = parse_kernel(FIR).unwrap();
        let ex = Explorer::new(&k);
        let sweep = ex.sweep().unwrap();
        let best = best_performance(&sweep).unwrap();
        let small = smallest_comparable(&sweep, 0.05).unwrap();
        assert!(small.estimate.slices <= best.estimate.slices);
        assert!(small.estimate.cycles as f64 <= best.estimate.cycles as f64 * 1.05);
    }
}
