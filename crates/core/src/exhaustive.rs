//! Exhaustive sweep of the design space.
//!
//! The paper's figures plot *every* point of the space to show where the
//! search's selection falls; this module provides that ground truth, and
//! the ablation benchmarks use it as the "no pruning" baseline.

use crate::engine::EvalEngine;
use crate::error::Result;
use crate::explorer::{EvaluatedDesign, EvaluatedJointDesign};
use crate::space::{DesignSpace, JointPoint};
use defacto_xform::UnrollVector;
use std::cmp::Ordering;

/// Evaluate every member of `space` with `eval`, in iteration order.
///
/// # Errors
///
/// Propagates the first evaluation failure.
pub fn exhaustive_sweep<E>(space: &DesignSpace, mut eval: E) -> Result<Vec<EvaluatedDesign>>
where
    E: FnMut(&UnrollVector) -> Result<EvaluatedDesign>,
{
    let mut out = Vec::with_capacity(space.size() as usize);
    for u in space.iter() {
        out.push(eval(&u)?);
    }
    Ok(out)
}

/// [`exhaustive_sweep`] fanned out across `engine`'s workers. Results
/// come back in the space's iteration order, and a failure propagates
/// the error of the *earliest* failing point — exactly what the serial
/// sweep reports — regardless of completion order.
///
/// # Errors
///
/// Propagates the first (in iteration order) evaluation failure.
pub fn parallel_sweep<E>(
    space: &DesignSpace,
    engine: &EvalEngine,
    eval: E,
) -> Result<Vec<EvaluatedDesign>>
where
    E: Fn(&UnrollVector) -> Result<EvaluatedDesign> + Sync,
{
    let members: Vec<UnrollVector> = space.iter().collect();
    engine
        .parallel_map(&members, |u| eval(u))
        .into_iter()
        .collect()
}

/// Evaluate every point of a joint multi-axis space with `eval`, in the
/// space's enumeration order. The serial counterpart of
/// [`Explorer::joint_sweep`](crate::Explorer::joint_sweep) for callers
/// bringing their own evaluator. Every point is statically legal by
/// construction, so an evaluation failure indicates a
/// membership-soundness bug, not a skippable candidate; it propagates.
///
/// # Errors
///
/// Propagates the first evaluation failure.
pub fn exhaustive_joint_sweep<E>(
    space: &DesignSpace,
    mut eval: E,
) -> Result<Vec<EvaluatedJointDesign>>
where
    E: FnMut(&JointPoint) -> Result<EvaluatedJointDesign>,
{
    let mut out = Vec::with_capacity(space.joint_size() as usize);
    for p in space.joint_points() {
        out.push(eval(p)?);
    }
    Ok(out)
}

/// The fastest design of a joint sweep; ties go to the smaller design,
/// then the lexicographically smaller joint coordinate (fully
/// deterministic).
pub fn best_joint_performance(sweep: &[EvaluatedJointDesign]) -> Option<&EvaluatedJointDesign> {
    sweep.iter().filter(|d| d.estimate.fits).min_by(|a, b| {
        (a.estimate.cycles, a.estimate.slices)
            .cmp(&(b.estimate.cycles, b.estimate.slices))
            .then_with(|| a.point.cmp(&b.point))
    })
}

/// Order designs by (cycles, slices), ties to the lexicographically
/// smaller unroll vector — comparing factor slices directly, without
/// materializing a key vector per comparison.
fn speed_then_size(a: &EvaluatedDesign, b: &EvaluatedDesign) -> Ordering {
    (a.estimate.cycles, a.estimate.slices)
        .cmp(&(b.estimate.cycles, b.estimate.slices))
        .then_with(|| a.unroll.factors().cmp(b.unroll.factors()))
}

/// The fastest design in a sweep; ties go to the smaller design, then the
/// lexicographically smaller unroll vector (fully deterministic).
pub fn best_performance(sweep: &[EvaluatedDesign]) -> Option<&EvaluatedDesign> {
    sweep
        .iter()
        .filter(|d| d.estimate.fits)
        .min_by(|a, b| speed_then_size(a, b))
}

/// The smallest design within `tolerance` (relative) of the best cycle
/// count — the paper's criterion 3 applied to ground truth.
pub fn smallest_comparable(sweep: &[EvaluatedDesign], tolerance: f64) -> Option<&EvaluatedDesign> {
    let best = best_performance(sweep)?;
    // Compare in f64 — the former `as u64` truncation silently shrank
    // the band (e.g. 10 cycles at tolerance 0.7 rounds 16.999… down to
    // 16, excluding a design at exactly 17). The tiny relative epsilon
    // keeps designs sitting exactly at the tolerance boundary inside it
    // despite f64 rounding of the product.
    let limit = best.estimate.cycles as f64 * (1.0 + tolerance) * (1.0 + 4.0 * f64::EPSILON);
    sweep
        .iter()
        .filter(|d| d.estimate.fits && d.estimate.cycles as f64 <= limit)
        .min_by(|a, b| {
            (a.estimate.slices, a.estimate.cycles)
                .cmp(&(b.estimate.slices, b.estimate.cycles))
                .then_with(|| a.unroll.factors().cmp(b.unroll.factors()))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::Explorer;
    use defacto_ir::parse_kernel;

    const FIR: &str = "kernel fir { in S: i32[96]; in C: i32[32]; inout D: i32[64];
       for j in 0..64 { for i in 0..32 {
         D[j] = D[j] + S[i + j] * C[i]; } } }";

    #[test]
    fn sweep_covers_whole_space() {
        let k = parse_kernel(FIR).unwrap();
        let ex = Explorer::new(&k);
        let sweep = ex.sweep().unwrap();
        assert_eq!(sweep.len(), 42);
        let best = best_performance(&sweep).unwrap();
        assert!(best.estimate.fits);
        // The best fitting design beats the baseline.
        let base = sweep.iter().find(|d| d.unroll.product() == 1).unwrap();
        assert!(best.estimate.cycles < base.estimate.cycles);
    }

    #[test]
    fn smallest_comparable_prefers_smaller_area() {
        let k = parse_kernel(FIR).unwrap();
        let ex = Explorer::new(&k);
        let sweep = ex.sweep().unwrap();
        let best = best_performance(&sweep).unwrap();
        let small = smallest_comparable(&sweep, 0.05).unwrap();
        assert!(small.estimate.slices <= best.estimate.slices);
        assert!(small.estimate.cycles as f64 <= best.estimate.cycles as f64 * 1.051);
    }

    #[test]
    fn tolerance_band_includes_designs_exactly_at_tolerance() {
        // Regression: 10 · (1 + 0.7) = 16.999999999999996 in f64; the
        // old `as u64` truncation made the limit 16, excluding a design
        // at exactly 17 cycles (= 10 · 1.7) that is much smaller.
        let design = |factors: &[i64], cycles: u64, slices: u32| EvaluatedDesign {
            unroll: UnrollVector(factors.to_vec()),
            estimate: defacto_synth::Estimate {
                cycles,
                slices,
                memory_busy_cycles: 0,
                compute_busy_cycles: 0,
                bits_from_memory: 0,
                registers: 0,
                balance: 1.0,
                clock_ns: 40,
                fits: true,
                provenance: Default::default(),
            },
        };
        let sweep = vec![design(&[4], 10, 100), design(&[2], 17, 10)];
        let small = smallest_comparable(&sweep, 0.7).unwrap();
        assert_eq!(small.unroll, UnrollVector(vec![2]));
        assert_eq!(small.estimate.cycles, 17);
        // Below the band, the fast design still wins.
        let tight = smallest_comparable(&sweep, 0.5).unwrap();
        assert_eq!(tight.unroll, UnrollVector(vec![4]));
    }
}
