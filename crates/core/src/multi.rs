//! Coarse-grain pipelining onto multiple FPGAs.
//!
//! The paper's infrastructure "largely supports the direct mapping of
//! computations to multiple FPGAs" (§1, citing Ziegler et al., FCCM'02);
//! the PLDI paper itself evaluates a single FPGA. This module provides
//! that multi-FPGA layer: a sequence of kernels (pipeline *stages*, each
//! consuming its predecessor's output array) is mapped onto a board with
//! several FPGAs, each stage explored with the single-FPGA algorithm
//! under its FPGA's remaining capacity.
//!
//! The macro-pipeline's **throughput** is set by the slowest stage (one
//! image/frame leaves the pipeline every `max(stage cycles)`), its
//! **latency** by the sum of stage times plus inter-FPGA channel
//! transfers. After the initial mapping, an optional rebalancing step
//! climbs the slowest stage's design toward pure speed — spending its
//! FPGA's slack area to lift whole-pipeline throughput.

use crate::engine::EvalEngine;
use crate::error::{DseError, Result};
use crate::explorer::{EvaluatedDesign, Explorer, Fidelity};
use crate::search::SearchResult;
use crate::strategies::hill_climb;
use crate::trace::{NullSink, TraceEvent, TraceSink};
use defacto_ir::{ArrayKind, Kernel};
use defacto_synth::{FpgaDevice, MemoryModel};
use defacto_xform::TransformOptions;
use std::sync::Arc;

/// One stage of a coarse-grain pipeline.
#[derive(Debug, Clone)]
pub struct PipelineStage {
    /// Stage name, for reports.
    pub name: String,
    /// The stage's kernel.
    pub kernel: Kernel,
}

impl PipelineStage {
    /// Construct a named stage.
    pub fn new(name: impl Into<String>, kernel: Kernel) -> Self {
        PipelineStage {
            name: name.into(),
            kernel,
        }
    }
}

/// Where one stage landed.
#[derive(Debug, Clone)]
pub struct StagePlacement {
    /// The stage's name.
    pub stage: String,
    /// Index of the FPGA hosting it.
    pub fpga: usize,
    /// The design the single-FPGA search selected for it.
    pub design: EvaluatedDesign,
    /// Words streamed to the next stage (0 for the last stage).
    pub channel_words: u64,
}

/// The result of mapping a pipeline onto multiple FPGAs.
#[derive(Debug, Clone)]
pub struct PipelineMapping {
    /// Per-stage placements, in pipeline order.
    pub placements: Vec<StagePlacement>,
    /// Initiation interval of the macro pipeline: the slowest stage's
    /// cycles (inter-FPGA transfers overlap with compute via
    /// double-buffered channels).
    pub throughput_cycles: u64,
    /// End-to-end latency of one input through all stages, including
    /// channel transfers.
    pub latency_cycles: u64,
    /// Slices used per FPGA.
    pub slices_per_fpga: Vec<u32>,
}

impl PipelineMapping {
    /// The bottleneck stage's name.
    pub fn bottleneck(&self) -> &str {
        self.placements
            .iter()
            .max_by_key(|p| p.design.estimate.cycles)
            .map(|p| p.stage.as_str())
            .unwrap_or("")
    }

    /// Throughput in outputs per second at the given clock.
    pub fn throughput_per_second(&self, clock_ns: u32) -> f64 {
        if self.throughput_cycles == 0 {
            return 0.0;
        }
        1e9 / (self.throughput_cycles as f64 * clock_ns as f64)
    }
}

/// Options for [`map_pipeline`].
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// Memory model of each FPGA's external memories.
    pub memory: MemoryModel,
    /// The device each FPGA position holds.
    pub device: FpgaDevice,
    /// Transformation options for every stage.
    pub transform: TransformOptions,
    /// Cycles to stream one word across an inter-FPGA channel.
    pub channel_cycles_per_word: u64,
    /// After placement, hill-climb the slowest stage toward raw speed
    /// within its FPGA's slack.
    pub rebalance: bool,
    /// Worker threads for exploring independent stages concurrently.
    /// `None` defers to `DEFACTO_THREADS` / available parallelism.
    pub threads: Option<usize>,
    /// Sink for mapping events ([`TraceEvent::StagePlaced`],
    /// [`TraceEvent::StageRebalanced`]), emitted by the deterministic
    /// serial placement and rebalance loops.
    pub trace: Arc<dyn TraceSink>,
    /// Evaluation fidelity for every per-stage search (see
    /// [`crate::Fidelity`]). Searches promote every visited point, so
    /// [`crate::Fidelity::Multi`] mappings are bit-identical to
    /// [`crate::Fidelity::Full`] ones.
    pub fidelity: Fidelity,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            memory: MemoryModel::wildstar_pipelined(),
            device: FpgaDevice::virtex1000(),
            transform: TransformOptions::default(),
            channel_cycles_per_word: 1,
            rebalance: true,
            threads: None,
            trace: Arc::new(NullSink),
            fidelity: Fidelity::Full,
        }
    }
}

/// Check that consecutive stages compose: every stage after the first
/// must have an input array matching (name, dims, type) an output array
/// of its predecessor.
///
/// # Errors
///
/// Returns [`DseError::OutsideSpace`]-style invalid input errors when the
/// chain is broken.
pub fn validate_chain(stages: &[PipelineStage]) -> Result<()> {
    for w in stages.windows(2) {
        let producer = &w[0];
        let consumer = &w[1];
        let produced: Vec<_> = producer
            .kernel
            .arrays()
            .iter()
            .filter(|a| a.kind != ArrayKind::In)
            .collect();
        let ok = consumer
            .kernel
            .arrays()
            .iter()
            .filter(|a| a.kind != ArrayKind::Out)
            .any(|input| {
                produced.iter().any(|out| {
                    out.name == input.name && out.dims == input.dims && out.ty == input.ty
                })
            });
        if !ok {
            return Err(DseError::OutsideSpace(format!(
                "stage `{}` consumes no array produced by stage `{}`",
                consumer.name, producer.name
            )));
        }
    }
    Ok(())
}

/// Map `stages` onto `num_fpgas` FPGAs.
///
/// Stages are assigned round-robin when they fit one per FPGA; with more
/// stages than FPGAs, stages pack greedily onto the FPGA with the most
/// remaining slices, and each stage's search runs against the remaining
/// capacity of its host (so co-located stages share the device honestly).
///
/// # Errors
///
/// Fails when the chain does not compose, `num_fpgas == 0`, or a stage's
/// exploration fails.
pub fn map_pipeline(
    stages: &[PipelineStage],
    num_fpgas: usize,
    opts: &PipelineOptions,
) -> Result<PipelineMapping> {
    if num_fpgas == 0 || stages.is_empty() {
        return Err(DseError::OutsideSpace(
            "pipeline needs at least one stage and one FPGA".into(),
        ));
    }
    validate_chain(stages)?;

    let mut remaining: Vec<u32> = vec![opts.device.capacity_slices; num_fpgas];
    let mut placements: Vec<StagePlacement> = Vec::new();

    // Stages are independent searches, so explore them all concurrently
    // at *full* device capacity before placing anything. The serial
    // placement loop below reuses a speculative result only when the
    // stage really is granted a pristine FPGA (its assigned capacity
    // equals the full device) — co-located stages see reduced capacity
    // and re-explore serially, so packed placements are bit-identical to
    // the all-serial mapping. Speculative failures are discarded: the
    // serial path re-runs the stage and surfaces the real error.
    let engine = EvalEngine::with_threads(opts.threads);
    let mut speculative: Vec<Option<SearchResult>> = if engine.threads() > 1 && stages.len() > 1 {
        engine
            .parallel_map(stages, |stage| {
                Explorer::new(&stage.kernel)
                    .memory(opts.memory.clone())
                    .device(opts.device.clone())
                    .options(opts.transform.clone())
                    .fidelity(opts.fidelity)
                    .threads(1)
                    .explore()
            })
            .into_iter()
            .map(|r| r.ok())
            .collect()
    } else {
        (0..stages.len()).map(|_| None).collect()
    };

    for (idx, stage) in stages.iter().enumerate() {
        // Host: FPGA with the most remaining slices (round-robin when
        // stages ≤ FPGAs, since all start equal and ties break low).
        let fpga = (0..num_fpgas)
            .max_by_key(|&f| (remaining[f], std::cmp::Reverse(f)))
            .expect("at least one fpga");
        let capacity = remaining[fpga];
        let result = match speculative[idx].take() {
            Some(r) if capacity == opts.device.capacity_slices => r,
            _ => {
                let device = FpgaDevice {
                    name: format!("{}#{fpga}", opts.device.name),
                    capacity_slices: capacity,
                    clock_ns: opts.device.clock_ns,
                };
                Explorer::new(&stage.kernel)
                    .memory(opts.memory.clone())
                    .device(device)
                    .options(opts.transform.clone())
                    .fidelity(opts.fidelity)
                    .explore()?
            }
        };
        let design = result.selected;

        // Channel volume: words produced for the next stage.
        let channel_words = if idx + 1 < stages.len() {
            stage
                .kernel
                .arrays()
                .iter()
                .filter(|a| a.kind != ArrayKind::In)
                .map(|a| a.len() as u64)
                .sum()
        } else {
            0
        };

        // Rebalancing happens after all stages are placed; remember the
        // placement now.
        remaining[fpga] = remaining[fpga].saturating_sub(design.estimate.slices);
        if opts.trace.enabled() {
            opts.trace.record(&TraceEvent::StagePlaced {
                stage: stage.name.clone(),
                fpga,
                unroll: design.unroll.clone(),
                cycles: design.estimate.cycles,
                slices: design.estimate.slices,
            });
        }
        placements.push(StagePlacement {
            stage: stage.name.clone(),
            fpga,
            design,
            channel_words,
        });
    }

    // Rebalance: repeatedly climb the current bottleneck stage toward
    // raw speed within its FPGA's slack, until no bottleneck improves.
    if opts.rebalance {
        for _ in 0..placements.len().max(1) * 2 {
            let Some(slowest) = placements
                .iter()
                .enumerate()
                .max_by_key(|(_, p)| p.design.estimate.cycles)
                .map(|(i, _)| i)
            else {
                break;
            };
            let p = &placements[slowest];
            let slack = remaining[p.fpga] + p.design.estimate.slices;
            let device = FpgaDevice {
                name: format!("{}#{}", opts.device.name, p.fpga),
                capacity_slices: slack,
                clock_ns: opts.device.clock_ns,
            };
            let stage = &stages[slowest];
            let ex = Explorer::new(&stage.kernel)
                .memory(opts.memory.clone())
                .device(device)
                .options(opts.transform.clone())
                .fidelity(opts.fidelity);
            let (_, space) = ex.analyze()?;
            let start = p.design.unroll.clone();
            let climbed = hill_climb(&space, &start, 16, |u| Ok(ex.evaluate(u)?.estimate))?;
            let improved = climbed.selected.estimate.cycles < p.design.estimate.cycles
                && climbed.selected.estimate.fits;
            if !improved {
                break;
            }
            let fpga = p.fpga;
            if opts.trace.enabled() {
                opts.trace.record(&TraceEvent::StageRebalanced {
                    stage: p.stage.clone(),
                    fpga,
                    unroll: climbed.selected.unroll.clone(),
                    from_cycles: p.design.estimate.cycles,
                    to_cycles: climbed.selected.estimate.cycles,
                });
            }
            remaining[fpga] += p.design.estimate.slices;
            remaining[fpga] = remaining[fpga].saturating_sub(climbed.selected.estimate.slices);
            placements[slowest].design = climbed.selected;
        }
    }

    let throughput_cycles = placements
        .iter()
        .map(|p| p.design.estimate.cycles)
        .max()
        .unwrap_or(0);
    let latency_cycles = placements
        .iter()
        .map(|p| p.design.estimate.cycles + p.channel_words * opts.channel_cycles_per_word)
        .sum();
    let slices_per_fpga = (0..num_fpgas)
        .map(|f| opts.device.capacity_slices - remaining[f])
        .collect();

    Ok(PipelineMapping {
        placements,
        throughput_cycles,
        latency_cycles,
        slices_per_fpga,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use defacto_ir::parse_kernel;

    /// JAC smoothing into SOBEL edge detection: the classic two-stage
    /// image pipeline, with JAC's output renamed to SOBEL's input.
    fn image_pipeline() -> Vec<PipelineStage> {
        let jac = parse_kernel(
            "kernel smooth { in A: i16[34][34]; out Img: i16[34][34];
               for i in 1..33 { for j in 1..33 {
                 Img[i][j] = (A[i - 1][j] + A[i + 1][j] + A[i][j - 1] + A[i][j + 1]) / 4;
               } } }",
        )
        .unwrap();
        let sobel = parse_kernel(
            "kernel edges { in Img: i16[34][34]; out E: i16[34][34];
               var gx: i16; var gy: i16; var mag: i16;
               for i in 1..33 { for j in 1..33 {
                 gx = (Img[i - 1][j + 1] + 2 * Img[i][j + 1] + Img[i + 1][j + 1])
                    - (Img[i - 1][j - 1] + 2 * Img[i][j - 1] + Img[i + 1][j - 1]);
                 gy = (Img[i + 1][j - 1] + 2 * Img[i + 1][j] + Img[i + 1][j + 1])
                    - (Img[i - 1][j - 1] + 2 * Img[i - 1][j] + Img[i - 1][j + 1]);
                 mag = abs(gx) + abs(gy);
                 E[i][j] = mag > 255 ? 255 : mag;
               } } }",
        )
        .unwrap();
        vec![
            PipelineStage::new("smooth", jac),
            PipelineStage::new("edges", sobel),
        ]
    }

    #[test]
    fn two_stage_pipeline_on_two_fpgas() {
        let stages = image_pipeline();
        let m = map_pipeline(&stages, 2, &PipelineOptions::default()).unwrap();
        assert_eq!(m.placements.len(), 2);
        // One stage per FPGA.
        assert_ne!(m.placements[0].fpga, m.placements[1].fpga);
        // Throughput is the slower stage.
        let cycles: Vec<u64> = m
            .placements
            .iter()
            .map(|p| p.design.estimate.cycles)
            .collect();
        assert_eq!(m.throughput_cycles, *cycles.iter().max().unwrap());
        // Latency includes channel transfer of the 34×34 frame.
        assert!(m.latency_cycles >= cycles.iter().sum::<u64>() + 34 * 34);
        assert!(m.throughput_per_second(40) > 0.0);
    }

    #[test]
    fn packing_two_stages_on_one_fpga_shares_capacity() {
        let stages = image_pipeline();
        let one = map_pipeline(&stages, 1, &PipelineOptions::default()).unwrap();
        assert_eq!(one.placements[0].fpga, 0);
        assert_eq!(one.placements[1].fpga, 0);
        // Combined designs fit the single device.
        assert!(one.slices_per_fpga[0] <= FpgaDevice::virtex1000().capacity_slices);
        // Two FPGAs give at least as good a throughput.
        let two = map_pipeline(&stages, 2, &PipelineOptions::default()).unwrap();
        assert!(two.throughput_cycles <= one.throughput_cycles);
    }

    #[test]
    fn broken_chain_rejected() {
        let a = parse_kernel(
            "kernel a { in X: i32[8]; out Y: i32[8];
               for i in 0..8 { Y[i] = X[i]; } }",
        )
        .unwrap();
        let b = parse_kernel(
            "kernel b { in Z: i32[8]; out W: i32[8];
               for i in 0..8 { W[i] = Z[i]; } }",
        )
        .unwrap();
        let err = map_pipeline(
            &[PipelineStage::new("a", a), PipelineStage::new("b", b)],
            2,
            &PipelineOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, DseError::OutsideSpace(_)));
    }

    #[test]
    fn rebalance_never_hurts_throughput() {
        let stages = image_pipeline();
        let with = map_pipeline(&stages, 2, &PipelineOptions::default()).unwrap();
        let without = map_pipeline(
            &stages,
            2,
            &PipelineOptions {
                rebalance: false,
                ..PipelineOptions::default()
            },
        )
        .unwrap();
        assert!(with.throughput_cycles <= without.throughput_cycles);
    }

    #[test]
    fn zero_fpgas_rejected() {
        let err = map_pipeline(&image_pipeline(), 0, &PipelineOptions::default()).unwrap_err();
        assert!(matches!(err, DseError::OutsideSpace(_)));
    }

    #[test]
    fn bottleneck_is_reported() {
        let stages = image_pipeline();
        let m = map_pipeline(&stages, 2, &PipelineOptions::default()).unwrap();
        assert!(["smooth", "edges"].contains(&m.bottleneck()));
    }

    #[test]
    fn multi_fidelity_mapping_matches_full() {
        let stages = image_pipeline();
        let full = map_pipeline(&stages, 2, &PipelineOptions::default()).unwrap();
        let multi = map_pipeline(
            &stages,
            2,
            &PipelineOptions {
                fidelity: Fidelity::Multi,
                ..PipelineOptions::default()
            },
        )
        .unwrap();
        assert_eq!(full.throughput_cycles, multi.throughput_cycles);
        for (f, m) in full.placements.iter().zip(&multi.placements) {
            assert_eq!(f.fpga, m.fpga);
            assert_eq!(f.design.unroll, m.design.unroll);
            assert_eq!(f.design.estimate, m.design.estimate);
        }
    }

    #[test]
    fn mapping_emits_stage_events() {
        let stages = image_pipeline();
        let sink = Arc::new(crate::trace::MemorySink::new());
        let opts = PipelineOptions {
            trace: sink.clone(),
            ..PipelineOptions::default()
        };
        let m = map_pipeline(&stages, 2, &opts).unwrap();
        let events = sink.events();
        let placed: Vec<&str> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::StagePlaced { stage, .. } => Some(stage.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(placed, vec!["smooth", "edges"]);
        // Every placed event matches the final placement's FPGA.
        for e in &events {
            if let TraceEvent::StagePlaced { stage, fpga, .. } = e {
                let p = m.placements.iter().find(|p| &p.stage == stage).unwrap();
                assert_eq!(p.fpga, *fpga);
            }
        }
    }
}
