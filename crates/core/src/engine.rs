//! The parallel evaluation engine: a work-stealing thread pool and a
//! sharded concurrent memo cache for design-point estimates.
//!
//! The paper's premise is that estimation is cheap enough to explore a
//! design space interactively; this engine makes the reproduction scale
//! the same way on multi-core hosts. Every consumer keeps its serial
//! semantics: parallel sweeps reassemble results in iteration order, and
//! the Figure-2 search only *prefetches* its doubling frontier into the
//! cache before replaying the unchanged serial algorithm, so the visited
//! sequence, selected design and termination reason are bit-identical to
//! a single-threaded run.
//!
//! Threading is std-only: a [`std::thread::scope`] pool whose workers
//! claim indices from a shared atomic counter (idle workers "steal" the
//! next undone item, so imbalanced evaluation costs still saturate the
//! pool) and send results back over a channel tagged with their index.
//!
//! Worker count resolution: explicit request (`--threads` flag or
//! [`EvalEngine::new`]) > the `DEFACTO_THREADS` environment variable >
//! [`std::thread::available_parallelism`].
//!
//! Observability: each cache shard keeps its own hit/miss counters
//! ([`EvalEngine::shard_stats`]), and the engine accumulates the wall
//! time spent inside evaluators ([`CounterSnapshot::eval_nanos`], summed
//! across workers, so it can exceed the run's wall clock). These feed
//! [`EvalStats`] and the bench tables; they are deliberately *not* part
//! of the search trace, which must stay deterministic across worker
//! counts.

use crate::error::Result;
use defacto_synth::Estimate;
use defacto_xform::UnrollVector;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

/// Number of cache shards. A small power of two keeps the modulo cheap
/// while making same-shard contention unlikely at realistic worker
/// counts.
const SHARD_COUNT: usize = 16;

/// Key of one memoized estimate: the unroll vector plus a hash of the
/// evaluation context (transform options, synthesis options, memory
/// model, and the device's capacity and clock — the device *name* is
/// deliberately excluded so per-FPGA renames like `XCV1000#0` still hit).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The design point.
    pub unroll: UnrollVector,
    /// Hash of everything else that determines the estimate.
    pub context: u64,
}

impl CacheKey {
    fn shard(&self) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.hash(&mut h);
        (h.finish() as usize) % SHARD_COUNT
    }
}

/// One cache shard: its map plus local hit/miss counters, padded into a
/// single struct so a lookup touches one allocation.
#[derive(Debug, Default)]
struct Shard {
    map: Mutex<HashMap<CacheKey, Estimate>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Per-shard observability snapshot ([`EvalEngine::shard_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheShardStats {
    /// Entries currently memoized in this shard.
    pub entries: usize,
    /// Lookups answered by this shard.
    pub hits: u64,
    /// Lookups that missed this shard.
    pub misses: u64,
}

/// A sharded concurrent memo cache of design-point estimates. Each shard
/// is an independent `Mutex<HashMap>`, so concurrent workers rarely
/// contend on the same lock.
#[derive(Debug)]
pub struct EstimateCache {
    shards: Vec<Shard>,
}

// The derived Default would build an *empty* shard vector — a cache that
// silently never caches (every get misses, every insert is a no-op).
// Default must mean "an empty cache", not "a broken one".
impl Default for EstimateCache {
    fn default() -> Self {
        Self::new()
    }
}

impl EstimateCache {
    /// An empty cache.
    pub fn new() -> Self {
        EstimateCache {
            shards: (0..SHARD_COUNT).map(|_| Shard::default()).collect(),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Shard {
        &self.shards[key.shard()]
    }

    /// The cached estimate for `key`, if present. Counts a hit or miss
    /// on the owning shard.
    pub fn get(&self, key: &CacheKey) -> Option<Estimate> {
        let shard = self.shard(key);
        let found = shard
            .map
            .lock()
            .expect("cache shard lock")
            .get(key)
            .cloned();
        match found {
            Some(e) => {
                shard.hits.fetch_add(1, Ordering::Relaxed);
                Some(e)
            }
            None => {
                shard.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Memoize `estimate` under `key`.
    pub fn insert(&self, key: CacheKey, estimate: Estimate) {
        self.shard(&key)
            .map
            .lock()
            .expect("cache shard lock")
            .insert(key, estimate);
    }

    /// Number of memoized estimates across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.map.lock().expect("cache shard lock").len())
            .sum()
    }

    /// True when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-shard entry counts and hit/miss counters, in shard order.
    pub fn shard_stats(&self) -> Vec<CacheShardStats> {
        self.shards
            .iter()
            .map(|s| CacheShardStats {
                entries: s.map.lock().expect("cache shard lock").len(),
                hits: s.hits.load(Ordering::Relaxed),
                misses: s.misses.load(Ordering::Relaxed),
            })
            .collect()
    }
}

/// Counters describing one evaluation run (a search, a sweep, a
/// pipeline mapping).
#[derive(Debug, Clone, Default)]
pub struct EvalStats {
    /// Design points actually evaluated (transform + estimate).
    pub evaluated: u64,
    /// Evaluations answered from the memo cache instead.
    pub cache_hits: u64,
    /// Wall-clock time of the run.
    pub wall: Duration,
    /// Time spent inside evaluators, summed across workers (can exceed
    /// `wall` on parallel runs).
    pub eval_wall: Duration,
    /// Worker threads the engine was configured with.
    pub workers: usize,
    /// Tier-0 analytic bands computed (multi-fidelity runs only; zero on
    /// [`crate::Fidelity::Full`] runs). Tier-0 work bypasses the memo
    /// cache, so it is counted here and *not* in `evaluated`.
    pub tier0_evaluated: u64,
    /// Tier-0 points promoted to a full tier-1 evaluation (forced
    /// promotions included).
    pub tier0_promoted: u64,
    /// Tier-0 points pruned without a tier-1 evaluation.
    pub tier0_pruned: u64,
    /// Memo-cache misses answered by a persistent store instead of an
    /// evaluation (see [`Self::persist_hit_rate`]). Persistent hits are
    /// *not* counted in `evaluated` or `cache_hits` — they are a third
    /// tier between the in-memory memo and a full evaluation.
    pub persist_hits: u64,
    /// Memo-cache misses the persistent store was consulted for and
    /// could not answer (zero when no store is attached).
    pub persist_misses: u64,
    /// Joint points a [`SearchStrategy`](crate::SearchStrategy) spent a
    /// tier-1 evaluation on (guided joint runs only; zero elsewhere).
    /// Like tier-0 work, strategy evaluations bypass the memo cache, so
    /// the explorer fills this in itself.
    pub strategy_visited: u64,
    /// Joint points a strategy's tier-0 bound excluded without a tier-1
    /// evaluation (guided joint runs only).
    pub bounded_pruned: u64,
}

impl EvalStats {
    /// Fraction of lookups served from the cache (0 when none occurred).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.evaluated + self.cache_hits;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Fraction of persistent-store consultations that hit (0 when the
    /// store was never consulted). This is the warm-start quality metric
    /// the incremental bench and the cross-process determinism test
    /// assert on.
    pub fn persist_hit_rate(&self) -> f64 {
        let total = self.persist_hits + self.persist_misses;
        if total == 0 {
            0.0
        } else {
            self.persist_hits as f64 / total as f64
        }
    }

    /// Mean evaluator time per actually-evaluated point.
    pub fn mean_eval_time(&self) -> Duration {
        if self.evaluated == 0 {
            Duration::ZERO
        } else {
            self.eval_wall / self.evaluated.min(u32::MAX as u64) as u32
        }
    }
}

// Wall times are nondeterministic; two runs of the same search are
// "equal" when they did the same work with the same configuration.
impl PartialEq for EvalStats {
    fn eq(&self, other: &Self) -> bool {
        self.evaluated == other.evaluated
            && self.cache_hits == other.cache_hits
            && self.workers == other.workers
            && self.tier0_evaluated == other.tier0_evaluated
            && self.tier0_promoted == other.tier0_promoted
            && self.tier0_pruned == other.tier0_pruned
            && self.persist_hits == other.persist_hits
            && self.persist_misses == other.persist_misses
            && self.strategy_visited == other.strategy_visited
            && self.bounded_pruned == other.bounded_pruned
    }
}

/// Snapshot of the engine's cumulative counters, for delta-based
/// [`EvalEngine::stats_since`] accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSnapshot {
    /// Design points evaluated since engine creation.
    pub evaluated: u64,
    /// Cache hits since engine creation.
    pub cache_hits: u64,
    /// Nanoseconds spent inside evaluators since engine creation.
    pub eval_nanos: u64,
    /// Persistent-store hits since engine creation.
    pub persist_hits: u64,
    /// Persistent-store misses since engine creation.
    pub persist_misses: u64,
}

/// The evaluation engine: worker-count policy, memo cache, and counters.
///
/// An engine is shared (behind `Arc`) between the explorers that should
/// pool their caches; each [`crate::Explorer`] owns one by default.
#[derive(Debug)]
pub struct EvalEngine {
    threads: usize,
    cache: EstimateCache,
    evaluated: AtomicU64,
    cache_hits: AtomicU64,
    eval_nanos: AtomicU64,
    persist_hits: AtomicU64,
    persist_misses: AtomicU64,
}

impl Default for EvalEngine {
    fn default() -> Self {
        Self::with_threads(None)
    }
}

impl EvalEngine {
    /// An engine with exactly `threads` workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        EvalEngine {
            threads: threads.max(1),
            cache: EstimateCache::new(),
            evaluated: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            eval_nanos: AtomicU64::new(0),
            persist_hits: AtomicU64::new(0),
            persist_misses: AtomicU64::new(0),
        }
    }

    /// An engine with `requested` workers when given, else the
    /// `DEFACTO_THREADS` environment override, else the host parallelism.
    pub fn with_threads(requested: Option<usize>) -> Self {
        Self::new(Self::resolve_threads(requested))
    }

    /// The worker-count policy (see module docs). Zero or malformed
    /// values are treated as absent.
    pub fn resolve_threads(requested: Option<usize>) -> usize {
        if let Some(n) = requested {
            return n.max(1);
        }
        if let Some(n) = std::env::var("DEFACTO_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
        {
            return n;
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }

    /// Configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The memo cache.
    pub fn cache(&self) -> &EstimateCache {
        &self.cache
    }

    /// Per-shard cache observability (entries, hits, misses).
    pub fn shard_stats(&self) -> Vec<CacheShardStats> {
        self.cache.shard_stats()
    }

    /// Snapshot of the cumulative counters.
    pub fn counters(&self) -> CounterSnapshot {
        CounterSnapshot {
            evaluated: self.evaluated.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            eval_nanos: self.eval_nanos.load(Ordering::Relaxed),
            persist_hits: self.persist_hits.load(Ordering::Relaxed),
            persist_misses: self.persist_misses.load(Ordering::Relaxed),
        }
    }

    /// Stats for a run that started at counter snapshot `before` and took
    /// `wall` time.
    pub fn stats_since(&self, before: CounterSnapshot, wall: Duration) -> EvalStats {
        let now = self.counters();
        EvalStats {
            evaluated: now.evaluated - before.evaluated,
            cache_hits: now.cache_hits - before.cache_hits,
            wall,
            eval_wall: Duration::from_nanos(now.eval_nanos - before.eval_nanos),
            workers: self.threads,
            persist_hits: now.persist_hits - before.persist_hits,
            persist_misses: now.persist_misses - before.persist_misses,
            // Tier-0 work never flows through the engine's counters;
            // multi-fidelity callers fill these in themselves.
            ..EvalStats::default()
        }
    }

    /// Evaluate through the memo cache: a hit returns the cached
    /// estimate, a miss runs `eval` and memoizes the result. Failed
    /// evaluations are not cached.
    ///
    /// # Errors
    ///
    /// Propagates `eval` failures.
    pub fn evaluate_cached<F>(&self, key: &CacheKey, eval: F) -> Result<Estimate>
    where
        F: FnOnce() -> Result<Estimate>,
    {
        self.evaluate_cached_flagged(key, eval).map(|(e, _)| e)
    }

    /// Like [`Self::evaluate_cached`], also reporting whether the lookup
    /// hit the cache. The evaluator's wall time is accumulated into the
    /// engine's `eval_nanos` counter.
    ///
    /// # Errors
    ///
    /// Propagates `eval` failures.
    pub fn evaluate_cached_flagged<F>(&self, key: &CacheKey, eval: F) -> Result<(Estimate, bool)>
    where
        F: FnOnce() -> Result<Estimate>,
    {
        if let Some(e) = self.cache.get(key) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok((e, true));
        }
        let started = Instant::now();
        let e = eval()?;
        self.eval_nanos
            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.evaluated.fetch_add(1, Ordering::Relaxed);
        self.cache.insert(key.clone(), e.clone());
        Ok((e, false))
    }

    /// Like [`Self::evaluate_cached_flagged`], with a persistent store
    /// consulted between the memo cache and the evaluator: a memo miss
    /// first calls `lookup` (e.g. a content-addressed on-disk cache),
    /// and a hit there is promoted into the memo and counted as a
    /// `persist_hit` — *not* as an evaluation or a memo hit, so the
    /// returned flag and the `evaluated`/`cache_hits` counters stay
    /// identical to a run whose memo was warmed any other way.
    ///
    /// # Errors
    ///
    /// Propagates `eval` failures.
    pub fn evaluate_cached_tiered<L, F>(
        &self,
        key: &CacheKey,
        lookup: L,
        eval: F,
    ) -> Result<(Estimate, bool)>
    where
        L: FnOnce() -> Option<Estimate>,
        F: FnOnce() -> Result<Estimate>,
    {
        if let Some(e) = self.cache.get(key) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok((e, true));
        }
        if let Some(e) = lookup() {
            self.persist_hits.fetch_add(1, Ordering::Relaxed);
            self.cache.insert(key.clone(), e.clone());
            return Ok((e, true));
        }
        self.persist_misses.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let e = eval()?;
        self.eval_nanos
            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.evaluated.fetch_add(1, Ordering::Relaxed);
        self.cache.insert(key.clone(), e.clone());
        Ok((e, false))
    }

    /// Apply `f` to every item, in parallel, returning results in input
    /// order. Workers claim indices from a shared counter, so an idle
    /// worker always takes the next undone item regardless of which
    /// worker "should" have had it.
    pub fn parallel_map<T, R, F>(&self, items: &[T], f: F) -> Vec<Result<R>>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> Result<R> + Sync,
    {
        let workers = self.threads.min(items.len()).max(1);
        if workers == 1 {
            return items.iter().map(&f).collect();
        }
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Result<R>)>();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let f = &f;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    if tx.send((i, f(&items[i]))).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            let mut slots: Vec<Option<Result<R>>> = (0..items.len()).map(|_| None).collect();
            for (i, r) in rx {
                slots[i] = Some(r);
            }
            slots
                .into_iter()
                .map(|s| s.expect("worker produced every index"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::DseError;

    fn estimate(cycles: u64) -> Estimate {
        Estimate {
            cycles,
            slices: 1,
            memory_busy_cycles: 0,
            compute_busy_cycles: 0,
            bits_from_memory: 0,
            registers: 0,
            balance: 1.0,
            clock_ns: 40,
            fits: true,
            provenance: Default::default(),
        }
    }

    fn key(factors: &[i64], context: u64) -> CacheKey {
        CacheKey {
            unroll: UnrollVector(factors.to_vec()),
            context,
        }
    }

    #[test]
    fn cache_round_trips_and_counts() {
        let cache = EstimateCache::new();
        assert!(cache.is_empty());
        cache.insert(key(&[2, 4], 7), estimate(10));
        assert_eq!(cache.get(&key(&[2, 4], 7)).unwrap().cycles, 10);
        // Same unroll, different context: distinct entry.
        assert!(cache.get(&key(&[2, 4], 8)).is_none());
        cache.insert(key(&[2, 4], 8), estimate(20));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn default_cache_actually_caches() {
        // Regression: the derived Default built zero shards, so a
        // default cache never stored anything.
        let cache = EstimateCache::default();
        cache.insert(key(&[2], 1), estimate(9));
        assert_eq!(
            cache.get(&key(&[2], 1)).map(|e| e.cycles),
            Some(9),
            "default() must behave like new()"
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn shard_stats_attribute_hits_and_misses() {
        let cache = EstimateCache::new();
        let k = key(&[4, 2], 3);
        assert!(cache.get(&k).is_none());
        cache.insert(k.clone(), estimate(7));
        assert!(cache.get(&k).is_some());
        let stats = cache.shard_stats();
        assert_eq!(stats.iter().map(|s| s.hits).sum::<u64>(), 1);
        assert_eq!(stats.iter().map(|s| s.misses).sum::<u64>(), 1);
        assert_eq!(stats.iter().map(|s| s.entries).sum::<usize>(), 1);
        // The hit and the miss landed on the same shard (same key).
        assert!(stats.iter().any(|s| s.hits == 1 && s.misses == 1));
    }

    #[test]
    fn evaluate_cached_hits_after_miss() {
        let engine = EvalEngine::new(2);
        let k = key(&[4, 1], 1);
        let (e, hit) = engine
            .evaluate_cached_flagged(&k, || Ok(estimate(5)))
            .unwrap();
        assert_eq!(e.cycles, 5);
        assert!(!hit);
        // Second lookup must not re-run the evaluator.
        let (e, hit) = engine
            .evaluate_cached_flagged(&k, || panic!("must be served from cache"))
            .unwrap();
        assert_eq!(e.cycles, 5);
        assert!(hit);
        let counters = engine.counters();
        assert_eq!((counters.evaluated, counters.cache_hits), (1, 1));
    }

    #[test]
    fn failed_evaluations_are_not_cached() {
        let engine = EvalEngine::new(1);
        let k = key(&[1], 0);
        let err = engine.evaluate_cached(&k, || Err(DseError::NoLoops));
        assert!(err.is_err());
        assert!(engine.cache().is_empty());
        let counters = engine.counters();
        assert_eq!((counters.evaluated, counters.cache_hits), (0, 0));
    }

    #[test]
    fn stats_since_reports_eval_wall() {
        let engine = EvalEngine::new(1);
        let before = engine.counters();
        engine
            .evaluate_cached(&key(&[2], 0), || {
                std::thread::sleep(Duration::from_millis(2));
                Ok(estimate(1))
            })
            .unwrap();
        let stats = engine.stats_since(before, Duration::from_millis(3));
        assert_eq!(stats.evaluated, 1);
        assert!(stats.eval_wall >= Duration::from_millis(2));
        assert!(stats.mean_eval_time() >= Duration::from_millis(2));
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        for threads in [1, 2, 8] {
            let engine = EvalEngine::new(threads);
            let items: Vec<u64> = (0..100).collect();
            let out = engine.parallel_map(&items, |&x| Ok(x * x));
            let values: Vec<u64> = out.into_iter().map(|r| r.unwrap()).collect();
            let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
            assert_eq!(values, expect, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_map_carries_errors_at_their_index() {
        let engine = EvalEngine::new(4);
        let items: Vec<u64> = (0..32).collect();
        let out = engine.parallel_map(&items, |&x| {
            if x == 13 {
                Err(DseError::NoLoops)
            } else {
                Ok(x)
            }
        });
        assert!(out[13].is_err());
        assert_eq!(out.iter().filter(|r| r.is_err()).count(), 1);
    }

    #[test]
    fn thread_resolution_prefers_explicit_request() {
        assert_eq!(EvalEngine::resolve_threads(Some(3)), 3);
        assert_eq!(EvalEngine::resolve_threads(Some(0)), 1);
        assert!(EvalEngine::resolve_threads(None) >= 1);
    }

    #[test]
    fn stats_hit_rate() {
        let s = EvalStats {
            evaluated: 3,
            cache_hits: 1,
            wall: Duration::from_millis(1),
            eval_wall: Duration::from_millis(1),
            workers: 2,
            ..EvalStats::default()
        };
        assert!((s.cache_hit_rate() - 0.25).abs() < 1e-12);
        assert_eq!(EvalStats::default().cache_hit_rate(), 0.0);
    }
}
