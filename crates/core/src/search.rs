//! The design-space-exploration algorithm (paper Figure 2).
//!
//! Starting from the saturation set, the search exploits the
//! monotonicity of balance (non-decreasing before the saturation point,
//! non-increasing after — Observation 3) to binary-search the crossover
//! between compute-bound and memory-bound designs, doubling the unroll
//! product while only compute-bound designs are seen, and halving back
//! when a memory-bound or over-capacity design appears. The result is a
//! design close to the best performance in the space that is also the
//! smallest among comparable designs — after visiting only a handful of
//! points.
//!
//! Caching has exactly one layer: the evaluator passed in. The
//! instrumented entry point ([`run_search_instrumented`]) takes an
//! evaluator returning a [`VisitOutcome`] whose `cache_hit` flag is the
//! single source of truth for [`EvalStats`] accounting — the engine's
//! memo cache when called through [`crate::Explorer::explore`], a local
//! memo adapter for the plain [`run_search`] closure. The search itself
//! keeps no shadow cache, so both paths report identical stats for the
//! same serial run. Every step emits a [`TraceEvent`] into the given
//! [`TraceSink`] for the [auditor](crate::audit).

use crate::engine::EvalStats;
use crate::error::Result;
use crate::explorer::EvaluatedDesign;
use crate::saturation::SaturationInfo;
use crate::space::DesignSpace;
use crate::trace::{NullSink, TraceEvent, TraceSink};
use defacto_synth::Estimate;
use defacto_xform::UnrollVector;
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// Tuning knobs of the search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchConfig {
    /// Designs with `|B − 1| ≤ tolerance` count as balanced.
    pub balance_tolerance: f64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            balance_tolerance: 0.10,
        }
    }
}

/// Why the search stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// A balanced design was found.
    Balanced,
    /// The initial (saturation) design was already memory bound.
    MemoryBoundAtInit,
    /// The search was limited by device capacity.
    SpaceConstrained,
    /// Binary search between compute- and memory-bound points converged.
    Converged,
    /// Unrolling was exhausted while still compute bound.
    ExhaustedCompute,
}

/// One evaluator answer: the estimate plus whether the underlying cache
/// layer answered it. The flag is the *only* hit/miss source of truth
/// the search consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct VisitOutcome {
    /// The design point's estimate.
    pub estimate: Estimate,
    /// True when the estimate came from the evaluator's cache.
    pub cache_hit: bool,
}

/// Outcome of one exploration.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// The selected design.
    pub selected: EvaluatedDesign,
    /// Every design evaluated, in visit order (no duplicates).
    pub visited: Vec<EvaluatedDesign>,
    /// Size of the full design space.
    pub space_size: u64,
    /// Why the search stopped.
    pub termination: Termination,
    /// The saturation analysis that seeded the search.
    pub saturation: SaturationInfo,
    /// Evaluation counters for this run, from the evaluator's cache-hit
    /// flags. [`crate::Explorer::explore`] overwrites it with the
    /// engine-wide view (speculative prefetches included).
    pub stats: EvalStats,
}

impl SearchResult {
    /// Fraction of the design space evaluated.
    pub fn fraction_explored(&self) -> f64 {
        if self.space_size == 0 {
            0.0
        } else {
            self.visited.len() as f64 / self.space_size as f64
        }
    }
}

/// Run the Figure-2 search over `space` with a plain estimator. A local
/// memo adapter is layered over `eval`, so re-visits never re-run it and
/// `visited` holds unique points in first-visit order.
///
/// # Errors
///
/// Propagates evaluation failures.
pub fn run_search<E>(
    space: &DesignSpace,
    sat: &SaturationInfo,
    cfg: &SearchConfig,
    eval: E,
) -> Result<SearchResult>
where
    E: FnMut(&UnrollVector) -> Result<Estimate>,
{
    run_search_with_sink(space, sat, cfg, eval, &NullSink)
}

/// [`run_search`] with a trace sink.
///
/// # Errors
///
/// Propagates evaluation failures.
pub fn run_search_with_sink<E>(
    space: &DesignSpace,
    sat: &SaturationInfo,
    cfg: &SearchConfig,
    mut eval: E,
    sink: &dyn TraceSink,
) -> Result<SearchResult>
where
    E: FnMut(&UnrollVector) -> Result<Estimate>,
{
    let mut memo: HashMap<UnrollVector, Estimate> = HashMap::new();
    run_search_instrumented(
        space,
        sat,
        cfg,
        |u| {
            if let Some(e) = memo.get(u) {
                return Ok(VisitOutcome {
                    estimate: e.clone(),
                    cache_hit: true,
                });
            }
            let e = eval(u)?;
            memo.insert(u.clone(), e.clone());
            Ok(VisitOutcome {
                estimate: e,
                cache_hit: false,
            })
        },
        sink,
    )
}

/// Per-run bookkeeping shared by every visit.
struct SearchState<'a> {
    visited: Vec<EvaluatedDesign>,
    seen: HashSet<UnrollVector>,
    evaluated: u64,
    cache_hits: u64,
    sink: &'a dyn TraceSink,
}

impl SearchState<'_> {
    fn visit<E>(&mut self, u: &UnrollVector, eval: &mut E) -> Result<Estimate>
    where
        E: FnMut(&UnrollVector) -> Result<VisitOutcome>,
    {
        let outcome = eval(u)?;
        if outcome.cache_hit {
            self.cache_hits += 1;
        } else {
            self.evaluated += 1;
        }
        let revisit = !self.seen.insert(u.clone());
        if !revisit {
            self.visited.push(EvaluatedDesign {
                unroll: u.clone(),
                estimate: outcome.estimate.clone(),
            });
        }
        if self.sink.enabled() {
            self.sink.record(&TraceEvent::Visit {
                unroll: u.clone(),
                balance: outcome.estimate.balance,
                cycles: outcome.estimate.cycles,
                slices: outcome.estimate.slices,
                fits: outcome.estimate.fits,
                // The deterministic search-level revisit flag, NOT the
                // evaluator's cache flag (which depends on prefetching).
                cache_hit: revisit,
            });
        }
        Ok(outcome.estimate)
    }
}

/// The instrumented Figure-2 search: `eval` reports cache attribution
/// per visit, `sink` receives one [`TraceEvent`] per decision. This is
/// the single implementation every entry point funnels into.
///
/// # Errors
///
/// Propagates evaluation failures.
pub fn run_search_instrumented<E>(
    space: &DesignSpace,
    sat: &SaturationInfo,
    cfg: &SearchConfig,
    mut eval: E,
    sink: &dyn TraceSink,
) -> Result<SearchResult>
where
    E: FnMut(&UnrollVector) -> Result<VisitOutcome>,
{
    let started = Instant::now();
    let mut st = SearchState {
        visited: Vec::new(),
        seen: HashSet::new(),
        evaluated: 0,
        cache_hits: 0,
        sink,
    };

    let u_base = space.base_vector();
    let u_max = restricted_max(space, sat);
    let psat_product = sat.u_init.product().max(1);

    let mut u_curr = sat.u_init.clone();
    let mut u_cb: Option<UnrollVector> = None;
    let mut u_mb: Option<UnrollVector> = None;
    let termination;

    loop {
        let est = st.visit(&u_curr, &mut eval)?;

        if !est.fits {
            if u_curr == sat.u_init {
                // FindLargestFit(Ubase, Uinit): the largest design at or
                // below the saturation point that fits, regardless of
                // balance — it maximizes available parallelism.
                let init = u_curr.clone();
                u_curr = find_largest_fit(space, sat, &u_base, &init, &mut st, &mut eval)?;
                if sink.enabled() {
                    sink.record(&TraceEvent::FindLargestFit {
                        base: u_base.clone(),
                        init,
                        chosen: u_curr.clone(),
                    });
                }
                termination = Termination::SpaceConstrained;
                break;
            }
            // Halve back toward the last compute-bound fitting design.
            let lower = u_cb.clone().unwrap_or_else(|| u_base.clone());
            let next = select_between(space, sat, psat_product, &lower, &u_curr);
            if sink.enabled() {
                sink.record(&TraceEvent::SelectBetween {
                    lo: lower.clone(),
                    hi: u_curr.clone(),
                    chosen: next.clone(),
                });
            }
            match next {
                Some(next) if next != u_curr && Some(&next) != u_cb.as_ref() => {
                    u_curr = next;
                    continue;
                }
                _ => {
                    u_curr = lower;
                    // Make sure the fallback is evaluated.
                    st.visit(&u_curr, &mut eval)?;
                    termination = Termination::SpaceConstrained;
                    break;
                }
            }
        }

        let b = est.balance;
        if (b - 1.0).abs() <= cfg.balance_tolerance {
            termination = Termination::Balanced;
            break;
        }
        if b < 1.0 {
            // Memory bound.
            u_mb = Some(u_curr.clone());
            if u_curr == sat.u_init {
                termination = Termination::MemoryBoundAtInit;
                break;
            }
            let lower = u_cb.clone().unwrap_or_else(|| u_base.clone());
            let next = select_between(space, sat, psat_product, &lower, &u_curr);
            if sink.enabled() {
                sink.record(&TraceEvent::SelectBetween {
                    lo: lower.clone(),
                    hi: u_curr.clone(),
                    chosen: next.clone(),
                });
            }
            match next {
                Some(next) if next != u_curr && Some(&next) != u_cb.as_ref() => u_curr = next,
                _ => {
                    u_curr = lower;
                    st.visit(&u_curr, &mut eval)?;
                    termination = Termination::Converged;
                    break;
                }
            }
        } else {
            // Compute bound.
            u_cb = Some(u_curr.clone());
            match &u_mb {
                None => {
                    // Only compute-bound designs so far: double.
                    match increase(space, sat, &u_curr, &u_max) {
                        Some(next) if next != u_curr => {
                            if sink.enabled() {
                                sink.record(&TraceEvent::Increase {
                                    from: u_curr.clone(),
                                    to: next.clone(),
                                });
                            }
                            u_curr = next;
                        }
                        _ => {
                            termination = Termination::ExhaustedCompute;
                            break;
                        }
                    }
                }
                Some(mb) => {
                    let mb = mb.clone();
                    let next = select_between(space, sat, psat_product, &u_curr, &mb);
                    if sink.enabled() {
                        sink.record(&TraceEvent::SelectBetween {
                            lo: u_curr.clone(),
                            hi: mb,
                            chosen: next.clone(),
                        });
                    }
                    match next {
                        Some(next) if next != u_curr => u_curr = next,
                        _ => {
                            termination = Termination::Converged;
                            break;
                        }
                    }
                }
            }
        }
    }

    let selected_est = st
        .visited
        .iter()
        .find(|d| d.unroll == u_curr)
        .expect("current point evaluated")
        .estimate
        .clone();
    if sink.enabled() {
        sink.record(&TraceEvent::Terminate {
            reason: termination,
            selected: u_curr.clone(),
        });
    }
    let stats = EvalStats {
        evaluated: st.evaluated,
        cache_hits: st.cache_hits,
        wall: started.elapsed(),
        eval_wall: Default::default(),
        workers: 1,
        ..EvalStats::default()
    };
    Ok(SearchResult {
        selected: EvaluatedDesign {
            unroll: u_curr,
            estimate: selected_est,
        },
        visited: st.visited,
        space_size: space.size(),
        termination,
        saturation: sat.clone(),
        stats,
    })
}

/// The chain of design points the search visits while every estimate
/// stays compute bound: the saturation point, then each `Increase` step
/// (product doubling) up to the restricted maximum. The parallel engine
/// speculatively evaluates this frontier in one batch before the serial
/// search replays over the warm cache — the serial algorithm visits a
/// prefix of exactly this chain until it leaves the compute-bound
/// regime, so prefetching it never changes which design is selected.
pub fn doubling_frontier(space: &DesignSpace, sat: &SaturationInfo) -> Vec<UnrollVector> {
    let u_max = restricted_max(space, sat);
    let mut frontier = vec![sat.u_init.clone()];
    let mut current = sat.u_init.clone();
    while let Some(next) = increase(space, sat, &current, &u_max) {
        if next == current {
            break;
        }
        frontier.push(next.clone());
        current = next;
    }
    frontier
}

/// The largest vector of the space restricted to unrollable loops.
fn restricted_max(space: &DesignSpace, sat: &SaturationInfo) -> UnrollVector {
    let max = space.max_vector();
    UnrollVector(
        max.factors()
            .iter()
            .zip(&sat.unrollable)
            .map(|(&f, &on)| if on { f } else { 1 })
            .collect(),
    )
}

/// `Increase(U)`: the preferred member with `P(Uout) = 2·P(Uin)` and
/// `Uin ≤ Uout ≤ Umax`; `None` when no such member remains.
fn increase(
    space: &DesignSpace,
    sat: &SaturationInfo,
    u: &UnrollVector,
    u_max: &UnrollVector,
) -> Option<UnrollVector> {
    let target = u.product().checked_mul(2)?;
    let members = space.members_with_product(target, u, u_max);
    sat.pick_growth(&members)
}

/// `SelectBetween(Usmall, Ularge)`: the preferred member whose product is
/// a multiple of `P(Uinit)` as close as possible to the midpoint
/// `(P(Usmall)+P(Ularge))/2`, strictly between the two products;
/// `None` when no point remains (the search has converged).
///
/// Candidate products come from [`DesignSpace::products_between`] — the
/// products actually representable in the space — rather than every
/// integer multiple in the range, which is identical in behavior (a
/// non-representable product has no members) but stays cheap when the
/// bracket spans a huge range.
fn select_between(
    space: &DesignSpace,
    sat: &SaturationInfo,
    psat_product: i64,
    small: &UnrollVector,
    large: &UnrollVector,
) -> Option<UnrollVector> {
    let ps = small.product();
    let pl = large.product();
    if pl <= ps {
        return None;
    }
    let mid = (ps + pl) / 2;
    let mut products: Vec<i64> = space
        .products_between(ps + 1, pl - 1)
        .into_iter()
        .filter(|&p| p % psat_product == 0)
        .collect();
    products.sort_by_key(|&p| ((p - mid).abs(), p));
    for p in products {
        let members = space.members_with_product(p, small, large);
        if let Some(m) = sat.pick_growth(&members) {
            return Some(m);
        }
    }
    None
}

/// `FindLargestFit(Ubase, Uinit)`: evaluate members between base and the
/// saturation point in decreasing product order until one fits. Only
/// products representable in the space are scanned (the former dense
/// `1..P(Uinit)` integer scan made this step quadratic in the trip
/// count).
fn find_largest_fit<E>(
    space: &DesignSpace,
    sat: &SaturationInfo,
    base: &UnrollVector,
    init: &UnrollVector,
    st: &mut SearchState,
    eval: &mut E,
) -> Result<UnrollVector>
where
    E: FnMut(&UnrollVector) -> Result<VisitOutcome>,
{
    let mut products = space.products_between(base.product(), init.product() - 1);
    products.reverse();
    for p in products {
        let members = space.members_with_product(p, base, init);
        if let Some(m) = sat.pick_growth(&members) {
            let est = st.visit(&m, eval)?;
            if est.fits {
                return Ok(m);
            }
        }
    }
    Ok(base.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::saturation::SaturationInfo;
    use crate::trace::MemorySink;

    /// Build a synthetic saturation info over a 2-deep 64×32 space.
    fn synthetic() -> (DesignSpace, SaturationInfo) {
        let space = DesignSpace::new(&[64, 32], &[true, true]);
        let base = space.base_vector();
        let sat_set = space.members_with_product(4, &base, &space.max_vector());
        let info = SaturationInfo {
            read_sets: 2,
            write_sets: 1,
            psat: 4,
            unrollable: vec![true, true],
            sat_set: sat_set.clone(),
            u_init: UnrollVector(vec![4, 1]),
            preference: vec![0, 1],
        };
        (space, info)
    }

    /// A fake estimator: balance crosses from compute bound to memory
    /// bound at product `cross`; area grows linearly with product and
    /// exceeds capacity above `cap_product`.
    fn fake_eval(cross: i64, cap_product: i64) -> impl FnMut(&UnrollVector) -> Result<Estimate> {
        move |u: &UnrollVector| {
            let p = u.product();
            let balance = cross as f64 / p as f64; // >1 below cross
            Ok(Estimate {
                cycles: (100_000 / p as u64).max(1),
                slices: (p * 100) as u32,
                memory_busy_cycles: p as u64,
                compute_busy_cycles: cross as u64,
                bits_from_memory: 0,
                registers: 0,
                balance,
                clock_ns: 40,
                fits: p <= cap_product,
                provenance: Default::default(),
            })
        }
    }

    #[test]
    fn finds_balanced_crossover() {
        let (space, sat) = synthetic();
        let cfg = SearchConfig::default();
        let r = run_search(&space, &sat, &cfg, fake_eval(64, 10_000)).unwrap();
        // Balance = 64/p: balanced at p = 64.
        assert_eq!(r.selected.unroll.product(), 64);
        assert_eq!(r.termination, Termination::Balanced);
        // Visits a handful of points, not the whole space.
        assert!(r.visited.len() <= 8, "visited {}", r.visited.len());
        assert!(r.fraction_explored() < 0.25);
    }

    #[test]
    fn memory_bound_at_init_stops_immediately() {
        let (space, sat) = synthetic();
        let cfg = SearchConfig::default();
        let r = run_search(&space, &sat, &cfg, fake_eval(1, 10_000)).unwrap();
        assert_eq!(r.termination, Termination::MemoryBoundAtInit);
        assert_eq!(r.selected.unroll, sat.u_init);
        assert_eq!(r.visited.len(), 1);
    }

    #[test]
    fn capacity_limits_the_search() {
        let (space, sat) = synthetic();
        let cfg = SearchConfig::default();
        // Always compute bound, capacity at product 16.
        let r = run_search(&space, &sat, &cfg, fake_eval(100_000, 16)).unwrap();
        assert!(r.selected.estimate.fits);
        assert_eq!(r.selected.unroll.product(), 16);
        assert_eq!(r.termination, Termination::SpaceConstrained);
    }

    #[test]
    fn capacity_exceeded_at_init_falls_back() {
        let (space, sat) = synthetic();
        let cfg = SearchConfig::default();
        // Nothing above product 2 fits.
        let r = run_search(&space, &sat, &cfg, fake_eval(100_000, 2)).unwrap();
        assert!(r.selected.estimate.fits);
        assert_eq!(r.selected.unroll.product(), 2);
        assert_eq!(r.termination, Termination::SpaceConstrained);
    }

    #[test]
    fn exhausts_compute_bound_space() {
        let (space, sat) = synthetic();
        let cfg = SearchConfig::default();
        // Always compute bound, everything fits: unroll to the max.
        let r = run_search(&space, &sat, &cfg, fake_eval(100_000_000, 1 << 60)).unwrap();
        assert_eq!(r.termination, Termination::ExhaustedCompute);
        assert_eq!(r.selected.unroll.product(), 2048);
    }

    #[test]
    fn converges_between_bounds_without_balanced_point() {
        let (space, sat) = synthetic();
        // Sharp transition: B = 10 below product 32, B = 0.2 at and
        // above. No balanced point exists.
        let eval = |u: &UnrollVector| {
            let p = u.product();
            let balance = if p < 32 { 10.0 } else { 0.2 };
            Ok(Estimate {
                cycles: (100_000 / p as u64).max(1),
                slices: 100,
                memory_busy_cycles: 1,
                compute_busy_cycles: 1,
                bits_from_memory: 0,
                registers: 0,
                balance,
                clock_ns: 40,
                fits: true,
                provenance: Default::default(),
            })
        };
        let cfg = SearchConfig::default();
        let r = run_search(&space, &sat, &cfg, eval).unwrap();
        // Converges to the largest compute-bound product below 32.
        assert!(r.selected.estimate.balance > 1.0);
        assert_eq!(r.termination, Termination::Converged);
        assert_eq!(r.selected.unroll.product(), 16);
    }

    #[test]
    fn visited_has_no_duplicates() {
        let (space, sat) = synthetic();
        let cfg = SearchConfig::default();
        let r = run_search(&space, &sat, &cfg, fake_eval(64, 10_000)).unwrap();
        let mut seen = std::collections::HashSet::new();
        for v in &r.visited {
            assert!(seen.insert(v.unroll.clone()), "duplicate {}", v.unroll);
        }
    }

    #[test]
    fn stats_come_from_the_single_cache_layer() {
        // Regression: the search used to keep a private HashMap on top
        // of the caller's cache, so revisits never reached the caller
        // and its hit counter disagreed with the reported stats. The
        // caller's cache layer is now the only one: every revisit is a
        // hit *there*.
        let (space, sat) = synthetic();
        let cfg = SearchConfig::default();
        // An eval with its own memo layer (stand-in for the engine),
        // counting its hits and actual evaluations.
        let mut layer_hits = 0u64;
        let mut layer_evals = 0u64;
        let mut memo: HashMap<UnrollVector, Estimate> = HashMap::new();
        // Converging fixture: guarantees one revisit (the fallback to
        // the last compute-bound point).
        let inner = move |u: &UnrollVector| -> Result<Estimate> {
            let p = u.product();
            let balance = if p < 32 { 10.0 } else { 0.2 };
            Ok(Estimate {
                balance,
                ..fake_eval(1, 1 << 60)(u)?
            })
        };
        let r = run_search_instrumented(
            &space,
            &sat,
            &cfg,
            |u| {
                if let Some(e) = memo.get(u) {
                    layer_hits += 1;
                    return Ok(VisitOutcome {
                        estimate: e.clone(),
                        cache_hit: true,
                    });
                }
                layer_evals += 1;
                let e = inner(u)?;
                memo.insert(u.clone(), e.clone());
                Ok(VisitOutcome {
                    estimate: e,
                    cache_hit: false,
                })
            },
            &NullSink,
        )
        .unwrap();
        assert!(layer_hits >= 1, "fixture must produce a revisit");
        assert_eq!(r.stats.cache_hits, layer_hits);
        assert_eq!(r.stats.evaluated, layer_evals);
        assert_eq!(r.stats.evaluated, r.visited.len() as u64);
    }

    #[test]
    fn plain_and_instrumented_stats_agree() {
        let (space, sat) = synthetic();
        let cfg = SearchConfig::default();
        let plain = run_search(&space, &sat, &cfg, fake_eval(64, 10_000)).unwrap();
        let mut memo: HashMap<UnrollVector, Estimate> = HashMap::new();
        let mut inner = fake_eval(64, 10_000);
        let inst = run_search_instrumented(
            &space,
            &sat,
            &cfg,
            |u| {
                if let Some(e) = memo.get(u) {
                    return Ok(VisitOutcome {
                        estimate: e.clone(),
                        cache_hit: true,
                    });
                }
                let e = inner(u)?;
                memo.insert(u.clone(), e.clone());
                Ok(VisitOutcome {
                    estimate: e,
                    cache_hit: false,
                })
            },
            &NullSink,
        )
        .unwrap();
        assert_eq!(plain.stats, inst.stats);
        assert_eq!(plain.selected, inst.selected);
        assert_eq!(plain.visited, inst.visited);
    }

    #[test]
    fn emits_a_complete_trace() {
        let (space, sat) = synthetic();
        let cfg = SearchConfig::default();
        let sink = MemorySink::new();
        let r = run_search_with_sink(&space, &sat, &cfg, fake_eval(64, 10_000), &sink).unwrap();
        let events = sink.events();
        // One Visit per visit call, Increase steps along the doubling
        // chain, and a final Terminate naming the selection.
        let visits = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Visit { .. }))
            .count();
        assert_eq!(visits, r.visited.len());
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::Increase { .. })));
        match events.last() {
            Some(TraceEvent::Terminate { reason, selected }) => {
                assert_eq!(*reason, r.termination);
                assert_eq!(*selected, r.selected.unroll);
            }
            other => panic!("last event must be Terminate, got {other:?}"),
        }
    }

    #[test]
    fn trace_marks_revisits_not_first_visits() {
        let (space, sat) = synthetic();
        let cfg = SearchConfig::default();
        let sink = MemorySink::new();
        // Converging fixture guarantees a revisit of the fallback point.
        let eval = |u: &UnrollVector| -> Result<Estimate> {
            let p = u.product();
            let balance = if p < 32 { 10.0 } else { 0.2 };
            Ok(Estimate {
                balance,
                ..fake_eval(1, 1 << 60)(u)?
            })
        };
        run_search_with_sink(&space, &sat, &cfg, eval, &sink).unwrap();
        let hits: Vec<bool> = sink
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Visit { cache_hit, .. } => Some(*cache_hit),
                _ => None,
            })
            .collect();
        assert!(!hits[0], "first visit is never a revisit");
        assert!(hits.iter().any(|&h| h), "fixture must produce a revisit");
    }

    #[test]
    fn find_largest_fit_scans_only_representable_products() {
        // Regression: with a huge trip count and nothing fitting, the
        // old dense 1..P(Uinit) integer scan made this effectively hang
        // (each integer triggered a recursive member enumeration). Only
        // the ~31 representable power-of-two products are scanned now.
        let trip = 1i64 << 30;
        let space = DesignSpace::new(&[trip], &[true]);
        let u_init = UnrollVector(vec![trip]);
        let sat = SaturationInfo {
            read_sets: 1,
            write_sets: 1,
            psat: trip,
            unrollable: vec![true],
            sat_set: vec![u_init.clone()],
            u_init,
            preference: vec![0],
        };
        let cfg = SearchConfig::default();
        // Nothing fits except the baseline.
        let r = run_search(&space, &sat, &cfg, fake_eval(1 << 40, 1)).unwrap();
        assert_eq!(r.termination, Termination::SpaceConstrained);
        assert_eq!(r.selected.unroll.product(), 1);
        // The scan visits one member per representable product, not one
        // per integer.
        assert!(r.visited.len() <= 32, "visited {}", r.visited.len());
    }
}
