//! The design-space-exploration algorithm (paper Figure 2).
//!
//! Starting from the saturation set, the search exploits the
//! monotonicity of balance (non-decreasing before the saturation point,
//! non-increasing after — Observation 3) to binary-search the crossover
//! between compute-bound and memory-bound designs, doubling the unroll
//! product while only compute-bound designs are seen, and halving back
//! when a memory-bound or over-capacity design appears. The result is a
//! design close to the best performance in the space that is also the
//! smallest among comparable designs — after visiting only a handful of
//! points.

use crate::engine::EvalStats;
use crate::error::Result;
use crate::explorer::EvaluatedDesign;
use crate::saturation::SaturationInfo;
use crate::space::DesignSpace;
use defacto_synth::Estimate;
use defacto_xform::UnrollVector;
use std::collections::HashMap;
use std::time::Instant;

/// Tuning knobs of the search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchConfig {
    /// Designs with `|B − 1| ≤ tolerance` count as balanced.
    pub balance_tolerance: f64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            balance_tolerance: 0.10,
        }
    }
}

/// Why the search stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// A balanced design was found.
    Balanced,
    /// The initial (saturation) design was already memory bound.
    MemoryBoundAtInit,
    /// The search was limited by device capacity.
    SpaceConstrained,
    /// Binary search between compute- and memory-bound points converged.
    Converged,
    /// Unrolling was exhausted while still compute bound.
    ExhaustedCompute,
}

/// Outcome of one exploration.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// The selected design.
    pub selected: EvaluatedDesign,
    /// Every design evaluated, in visit order (no duplicates).
    pub visited: Vec<EvaluatedDesign>,
    /// Size of the full design space.
    pub space_size: u64,
    /// Why the search stopped.
    pub termination: Termination,
    /// The saturation analysis that seeded the search.
    pub saturation: SaturationInfo,
    /// Evaluation counters for this run. `run_search` fills in its own
    /// serial accounting; [`crate::Explorer::explore`] overwrites it with
    /// the engine-wide view (speculative prefetches included).
    pub stats: EvalStats,
}

impl SearchResult {
    /// Fraction of the design space evaluated.
    pub fn fraction_explored(&self) -> f64 {
        if self.space_size == 0 {
            0.0
        } else {
            self.visited.len() as f64 / self.space_size as f64
        }
    }
}

/// Run the Figure-2 search over `space`, evaluating candidate designs
/// with `eval` (results are cached, so re-visits are free and `visited`
/// holds unique points in first-visit order).
///
/// # Errors
///
/// Propagates evaluation failures.
pub fn run_search<E>(
    space: &DesignSpace,
    sat: &SaturationInfo,
    cfg: &SearchConfig,
    mut eval: E,
) -> Result<SearchResult>
where
    E: FnMut(&UnrollVector) -> Result<Estimate>,
{
    let started = Instant::now();
    let mut revisits = 0u64;
    let mut cache: HashMap<UnrollVector, Estimate> = HashMap::new();
    let mut visited: Vec<EvaluatedDesign> = Vec::new();
    let mut visit = |u: &UnrollVector,
                     revisits: &mut u64,
                     cache: &mut HashMap<UnrollVector, Estimate>,
                     visited: &mut Vec<EvaluatedDesign>|
     -> Result<Estimate> {
        if let Some(e) = cache.get(u) {
            *revisits += 1;
            return Ok(e.clone());
        }
        let e = eval(u)?;
        cache.insert(u.clone(), e.clone());
        visited.push(EvaluatedDesign {
            unroll: u.clone(),
            estimate: e.clone(),
        });
        Ok(e)
    };

    let u_base = space.base_vector();
    let u_max = restricted_max(space, sat);
    let psat_product = sat.u_init.product().max(1);

    let mut u_curr = sat.u_init.clone();
    let mut u_cb: Option<UnrollVector> = None;
    let mut u_mb: Option<UnrollVector> = None;
    let termination;

    loop {
        let est = visit(&u_curr, &mut revisits, &mut cache, &mut visited)?;

        if !est.fits {
            if u_curr == sat.u_init {
                // FindLargestFit(Ubase, Uinit): the largest design at or
                // below the saturation point that fits, regardless of
                // balance — it maximizes available parallelism.
                u_curr = find_largest_fit(space, sat, &u_base, &u_curr, &mut |u| {
                    visit(u, &mut revisits, &mut cache, &mut visited)
                })?;
                termination = Termination::SpaceConstrained;
                break;
            }
            // Halve back toward the last compute-bound fitting design.
            let lower = u_cb.clone().unwrap_or_else(|| u_base.clone());
            match select_between(space, sat, psat_product, &lower, &u_curr) {
                Some(next) if next != u_curr && Some(&next) != u_cb.as_ref() => {
                    u_curr = next;
                    continue;
                }
                _ => {
                    u_curr = lower;
                    // Make sure the fallback is evaluated.
                    visit(&u_curr, &mut revisits, &mut cache, &mut visited)?;
                    termination = Termination::SpaceConstrained;
                    break;
                }
            }
        }

        let b = est.balance;
        if (b - 1.0).abs() <= cfg.balance_tolerance {
            termination = Termination::Balanced;
            break;
        }
        if b < 1.0 {
            // Memory bound.
            u_mb = Some(u_curr.clone());
            if u_curr == sat.u_init {
                termination = Termination::MemoryBoundAtInit;
                break;
            }
            let lower = u_cb.clone().unwrap_or_else(|| u_base.clone());
            match select_between(space, sat, psat_product, &lower, &u_curr) {
                Some(next) if next != u_curr && Some(&next) != u_cb.as_ref() => u_curr = next,
                _ => {
                    u_curr = lower;
                    visit(&u_curr, &mut revisits, &mut cache, &mut visited)?;
                    termination = Termination::Converged;
                    break;
                }
            }
        } else {
            // Compute bound.
            u_cb = Some(u_curr.clone());
            match &u_mb {
                None => {
                    // Only compute-bound designs so far: double.
                    match increase(space, sat, &u_curr, &u_max) {
                        Some(next) if next != u_curr => u_curr = next,
                        _ => {
                            termination = Termination::ExhaustedCompute;
                            break;
                        }
                    }
                }
                Some(mb) => {
                    let mb = mb.clone();
                    match select_between(space, sat, psat_product, &u_curr, &mb) {
                        Some(next) if next != u_curr => u_curr = next,
                        _ => {
                            termination = Termination::Converged;
                            break;
                        }
                    }
                }
            }
        }
    }

    let selected_est = cache.get(&u_curr).expect("current point evaluated").clone();
    let stats = EvalStats {
        evaluated: visited.len() as u64,
        cache_hits: revisits,
        wall: started.elapsed(),
        workers: 1,
    };
    Ok(SearchResult {
        selected: EvaluatedDesign {
            unroll: u_curr,
            estimate: selected_est,
        },
        visited,
        space_size: space.size(),
        termination,
        saturation: sat.clone(),
        stats,
    })
}

/// The chain of design points the search visits while every estimate
/// stays compute bound: the saturation point, then each `Increase` step
/// (product doubling) up to the restricted maximum. The parallel engine
/// speculatively evaluates this frontier in one batch before the serial
/// search replays over the warm cache — the serial algorithm visits a
/// prefix of exactly this chain until it leaves the compute-bound
/// regime, so prefetching it never changes which design is selected.
pub fn doubling_frontier(space: &DesignSpace, sat: &SaturationInfo) -> Vec<UnrollVector> {
    let u_max = restricted_max(space, sat);
    let mut frontier = vec![sat.u_init.clone()];
    let mut current = sat.u_init.clone();
    while let Some(next) = increase(space, sat, &current, &u_max) {
        if next == current {
            break;
        }
        frontier.push(next.clone());
        current = next;
    }
    frontier
}

/// The largest vector of the space restricted to unrollable loops.
fn restricted_max(space: &DesignSpace, sat: &SaturationInfo) -> UnrollVector {
    let max = space.max_vector();
    UnrollVector(
        max.factors()
            .iter()
            .zip(&sat.unrollable)
            .map(|(&f, &on)| if on { f } else { 1 })
            .collect(),
    )
}

/// `Increase(U)`: the preferred member with `P(Uout) = 2·P(Uin)` and
/// `Uin ≤ Uout ≤ Umax`; `None` when no such member remains.
fn increase(
    space: &DesignSpace,
    sat: &SaturationInfo,
    u: &UnrollVector,
    u_max: &UnrollVector,
) -> Option<UnrollVector> {
    let target = u.product().checked_mul(2)?;
    let members = space.members_with_product(target, u, u_max);
    sat.pick_growth(&members)
}

/// `SelectBetween(Usmall, Ularge)`: the preferred member whose product is
/// a multiple of `P(Uinit)` as close as possible to the midpoint
/// `(P(Usmall)+P(Ularge))/2`, strictly between the two products;
/// `None` when no point remains (the search has converged).
fn select_between(
    space: &DesignSpace,
    sat: &SaturationInfo,
    psat_product: i64,
    small: &UnrollVector,
    large: &UnrollVector,
) -> Option<UnrollVector> {
    let ps = small.product();
    let pl = large.product();
    if pl <= ps {
        return None;
    }
    let mid = (ps + pl) / 2;
    // Candidate products: multiples of P(Uinit) strictly between, closest
    // to the midpoint first.
    let mut products: Vec<i64> = (1..)
        .map(|c| c * psat_product)
        .take_while(|&p| p < pl)
        .filter(|&p| p > ps)
        .collect();
    products.sort_by_key(|&p| ((p - mid).abs(), p));
    for p in products {
        let members = space.members_with_product(p, small, large);
        if let Some(m) = sat.pick_growth(&members) {
            return Some(m);
        }
    }
    None
}

/// `FindLargestFit(Ubase, Uinit)`: evaluate members between base and the
/// saturation point in decreasing product order until one fits.
fn find_largest_fit(
    space: &DesignSpace,
    sat: &SaturationInfo,
    base: &UnrollVector,
    init: &UnrollVector,
    visit: &mut dyn FnMut(&UnrollVector) -> Result<Estimate>,
) -> Result<UnrollVector> {
    let mut products: Vec<i64> = (1..init.product()).collect();
    products.sort_unstable_by(|a, b| b.cmp(a));
    for p in products {
        let members = space.members_with_product(p, base, init);
        if let Some(m) = sat.pick_growth(&members) {
            let est = visit(&m)?;
            if est.fits {
                return Ok(m);
            }
        }
    }
    Ok(base.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::saturation::SaturationInfo;

    /// Build a synthetic saturation info over a 2-deep 64×32 space.
    fn synthetic() -> (DesignSpace, SaturationInfo) {
        let space = DesignSpace::new(&[64, 32], &[true, true]);
        let base = space.base_vector();
        let sat_set = space.members_with_product(4, &base, &space.max_vector());
        let info = SaturationInfo {
            read_sets: 2,
            write_sets: 1,
            psat: 4,
            unrollable: vec![true, true],
            sat_set: sat_set.clone(),
            u_init: UnrollVector(vec![4, 1]),
            preference: vec![0, 1],
        };
        (space, info)
    }

    /// A fake estimator: balance crosses from compute bound to memory
    /// bound at product `cross`; area grows linearly with product and
    /// exceeds capacity above `cap_product`.
    fn fake_eval(cross: i64, cap_product: i64) -> impl FnMut(&UnrollVector) -> Result<Estimate> {
        move |u: &UnrollVector| {
            let p = u.product();
            let balance = cross as f64 / p as f64; // >1 below cross
            Ok(Estimate {
                cycles: (100_000 / p as u64).max(1),
                slices: (p * 100) as u32,
                memory_busy_cycles: p as u64,
                compute_busy_cycles: cross as u64,
                bits_from_memory: 0,
                registers: 0,
                balance,
                clock_ns: 40,
                fits: p <= cap_product,
            })
        }
    }

    #[test]
    fn finds_balanced_crossover() {
        let (space, sat) = synthetic();
        let cfg = SearchConfig::default();
        let r = run_search(&space, &sat, &cfg, fake_eval(64, 10_000)).unwrap();
        // Balance = 64/p: balanced at p = 64.
        assert_eq!(r.selected.unroll.product(), 64);
        assert_eq!(r.termination, Termination::Balanced);
        // Visits a handful of points, not the whole space.
        assert!(r.visited.len() <= 8, "visited {}", r.visited.len());
        assert!(r.fraction_explored() < 0.25);
    }

    #[test]
    fn memory_bound_at_init_stops_immediately() {
        let (space, sat) = synthetic();
        let cfg = SearchConfig::default();
        let r = run_search(&space, &sat, &cfg, fake_eval(1, 10_000)).unwrap();
        assert_eq!(r.termination, Termination::MemoryBoundAtInit);
        assert_eq!(r.selected.unroll, sat.u_init);
        assert_eq!(r.visited.len(), 1);
    }

    #[test]
    fn capacity_limits_the_search() {
        let (space, sat) = synthetic();
        let cfg = SearchConfig::default();
        // Always compute bound, capacity at product 16.
        let r = run_search(&space, &sat, &cfg, fake_eval(100_000, 16)).unwrap();
        assert!(r.selected.estimate.fits);
        assert_eq!(r.selected.unroll.product(), 16);
        assert_eq!(r.termination, Termination::SpaceConstrained);
    }

    #[test]
    fn capacity_exceeded_at_init_falls_back() {
        let (space, sat) = synthetic();
        let cfg = SearchConfig::default();
        // Nothing above product 2 fits.
        let r = run_search(&space, &sat, &cfg, fake_eval(100_000, 2)).unwrap();
        assert!(r.selected.estimate.fits);
        assert_eq!(r.selected.unroll.product(), 2);
        assert_eq!(r.termination, Termination::SpaceConstrained);
    }

    #[test]
    fn exhausts_compute_bound_space() {
        let (space, sat) = synthetic();
        let cfg = SearchConfig::default();
        // Always compute bound, everything fits: unroll to the max.
        let r = run_search(&space, &sat, &cfg, fake_eval(100_000_000, 1 << 60)).unwrap();
        assert_eq!(r.termination, Termination::ExhaustedCompute);
        assert_eq!(r.selected.unroll.product(), 2048);
    }

    #[test]
    fn converges_between_bounds_without_balanced_point() {
        let (space, sat) = synthetic();
        // Sharp transition: B = 10 below product 32, B = 0.2 at and
        // above. No balanced point exists.
        let eval = |u: &UnrollVector| {
            let p = u.product();
            let balance = if p < 32 { 10.0 } else { 0.2 };
            Ok(Estimate {
                cycles: (100_000 / p as u64).max(1),
                slices: 100,
                memory_busy_cycles: 1,
                compute_busy_cycles: 1,
                bits_from_memory: 0,
                registers: 0,
                balance,
                clock_ns: 40,
                fits: true,
            })
        };
        let cfg = SearchConfig::default();
        let r = run_search(&space, &sat, &cfg, eval).unwrap();
        // Converges to the largest compute-bound product below 32.
        assert!(r.selected.estimate.balance > 1.0);
        assert_eq!(r.termination, Termination::Converged);
        assert_eq!(r.selected.unroll.product(), 16);
    }

    #[test]
    fn visited_has_no_duplicates() {
        let (space, sat) = synthetic();
        let cfg = SearchConfig::default();
        let r = run_search(&space, &sat, &cfg, fake_eval(64, 10_000)).unwrap();
        let mut seen = std::collections::HashSet::new();
        for v in &r.visited {
            assert!(seen.insert(v.unroll.clone()), "duplicate {}", v.unroll);
        }
    }
}
