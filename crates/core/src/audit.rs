//! The invariant auditor: replay a search trace against the paper's
//! Observations 1–3.
//!
//! A [trace](crate::trace) is only useful if something checks it. The
//! auditor replays the event stream of one search against the structural
//! invariants the paper's argument rests on, and reports each violation
//! with the offending event:
//!
//! - **visit-unique** — the visited list is duplicate-free: no design
//!   point is first-visited twice, and every revisit refers to an
//!   earlier first visit;
//! - **member-of-space** — every visited point (and every frontier and
//!   `SelectBetween` pick) is a member of the design space;
//! - **increase-doubles** — each `Increase` step exactly doubles the
//!   unroll product;
//! - **balance-monotone** — Observation 3: along the doubling chain at
//!   or past the saturation product `Psat`, the compute-bound →
//!   memory-bound crossover is one-way — a doubling step never leads
//!   from a memory-bound design (`B < 1`) back to a compute-bound one
//!   (`B > 1`). Raw balance values are *not* required to be
//!   non-increasing: integer cycle counts and shape-dependent
//!   scheduling make them wobble within the compute-bound region, and
//!   the Figure-2 search's soundness only needs the crossover itself to
//!   be monotone;
//! - **select-between-bounds** — a `SelectBetween` pick's product lies
//!   strictly between its bracket's products and is a multiple of
//!   `P(U_init)`;
//! - **frontier-chain** — the prefetch frontier starts at `U_init` and
//!   doubles its product at every step;
//! - **terminate-final** — exactly one `Terminate` event, last in the
//!   stream;
//! - **selected-valid** — the selected design was visited, fits the
//!   device, and is a member of the space;
//! - **tier-promotion** — in a multi-fidelity trace (one containing
//!   `TierPromote`/`TierPrune` events), every first-visited point was
//!   promoted beforehand and no tier-0-pruned point was ever paid a
//!   tier-1 evaluation. Together with selected-valid this certifies the
//!   full path never ran on a point the analytic band pruned. Traces
//!   without tier events are exempt.

use crate::saturation::SaturationInfo;
use crate::space::DesignSpace;
use crate::trace::TraceEvent;
use defacto_xform::UnrollVector;
use std::collections::HashMap;

/// Slack around the `B = 1` crossover: estimates are exact rational
/// arithmetic rendered into f64, so only representation noise is
/// tolerated — a design within `BALANCE_EPS` of 1 counts as neither
/// strictly memory- nor strictly compute-bound.
const BALANCE_EPS: f64 = 1e-9;

/// The invariant a violation breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Invariant {
    /// A design point was first-visited more than once, or a revisit
    /// refers to a point never visited.
    VisitUnique,
    /// A traced point is not a member of the design space.
    MemberOfSpace,
    /// An `Increase` step did not double the unroll product.
    IncreaseDoubles,
    /// A doubling step past `Psat` crossed back from memory-bound to
    /// compute-bound.
    BalanceMonotone,
    /// A `SelectBetween` pick violates its bracket or the `P(U_init)`
    /// multiplicity requirement.
    SelectBetweenBounds,
    /// The frontier is not a doubling chain from `U_init`.
    FrontierChain,
    /// `Terminate` is missing, duplicated, or not the final event.
    TerminateFinal,
    /// The selected design is unvisited, does not fit, or is outside the
    /// space.
    SelectedValid,
    /// In a multi-fidelity trace, a point was tier-1-visited without a
    /// prior `TierPromote`, or after being tier-0-pruned.
    TierPromotion,
    /// In a joint-sweep trace, an `AxisVisit` point is outside the joint
    /// space, a member was visited twice, or a member was never visited.
    /// Because an `AxisVisit` is only emitted after its point
    /// transformed and estimated successfully, a clean report certifies
    /// the membership-soundness contract: every statically-enumerated
    /// point succeeded at transform time.
    JointMembership,
    /// In a guided-strategy trace, a `StrategyStep`'s recorded incumbent
    /// moved backwards: the incumbent is the best fitting cycle count
    /// seen so far, so the sequence of `incumbent` values across steps
    /// must be monotone non-increasing (with `None` only before the
    /// first fitting evaluation), and each step's own result must be
    /// consistent with the incumbent recorded by the *next* step.
    StrategyMonotone,
    /// A `BoundPrune` event discarded the design the strategy ultimately
    /// selected. The branch-and-bound soundness argument (prune only
    /// when the band's `cycles_lo` exceeds the incumbent, or the band
    /// proves the point cannot fit) guarantees the winner survives; a
    /// pruned selected design means a bound was unsound.
    PruneExcludesSelected,
}

impl Invariant {
    /// Stable kebab-case name, for reports.
    pub fn name(self) -> &'static str {
        match self {
            Invariant::VisitUnique => "visit-unique",
            Invariant::MemberOfSpace => "member-of-space",
            Invariant::IncreaseDoubles => "increase-doubles",
            Invariant::BalanceMonotone => "balance-monotone",
            Invariant::SelectBetweenBounds => "select-between-bounds",
            Invariant::FrontierChain => "frontier-chain",
            Invariant::TerminateFinal => "terminate-final",
            Invariant::SelectedValid => "selected-valid",
            Invariant::TierPromotion => "tier-promotion",
            Invariant::JointMembership => "joint-membership",
            Invariant::StrategyMonotone => "strategy-monotone",
            Invariant::PruneExcludesSelected => "prune-excludes-selected",
        }
    }
}

impl std::fmt::Display for Invariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One broken invariant, pinned to the offending event.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditViolation {
    /// Which invariant broke.
    pub invariant: Invariant,
    /// Index of the offending event in the trace (`None` when the trace
    /// as a whole is malformed, e.g. a missing `Terminate`).
    pub event_index: Option<usize>,
    /// The offending event, cloned for standalone reporting.
    pub event: Option<TraceEvent>,
    /// Human-readable description of what went wrong.
    pub detail: String,
}

impl std::fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.event_index {
            Some(i) => write!(f, "[{}] at event {}: {}", self.invariant, i, self.detail),
            None => write!(f, "[{}]: {}", self.invariant, self.detail),
        }
    }
}

/// The auditor's verdict over one trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AuditReport {
    /// Number of events replayed.
    pub events: usize,
    /// Number of individual invariant checks performed.
    pub checks: usize,
    /// Every violation found, in trace order.
    pub violations: Vec<AuditViolation>,
}

impl AuditReport {
    /// True when every invariant held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl std::fmt::Display for AuditReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "audit: {} events, {} checks, {} violation{}",
            self.events,
            self.checks,
            self.violations.len(),
            if self.violations.len() == 1 { "" } else { "s" },
        )?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

/// Replay `events` (one search's trace) against the invariants above.
/// Pipeline-mapping events (`StagePlaced`/`StageRebalanced`) are ignored;
/// they describe a different artifact. Warm-start markers (`WarmStart`)
/// are ignored too: the search events that follow them are complete and
/// must justify the selection without reference to the previous run.
pub fn audit_search_trace(
    events: &[TraceEvent],
    space: &DesignSpace,
    sat: &SaturationInfo,
) -> AuditReport {
    let mut report = AuditReport {
        events: events.len(),
        ..AuditReport::default()
    };
    // First-visit index per point, with the estimate facts the checks
    // need (balance, fits).
    let mut first_visit: HashMap<UnrollVector, (usize, f64, bool)> = HashMap::new();
    let mut increases: Vec<(usize, UnrollVector, UnrollVector)> = Vec::new();
    let mut terminate_at: Option<usize> = None;
    let u_init_product = sat.u_init.product().max(1);
    // The tier-promotion invariant only binds multi-fidelity traces:
    // one tier event anywhere makes every first visit accountable.
    let has_tier = events.iter().any(|e| {
        matches!(
            e,
            TraceEvent::TierPromote { .. } | TraceEvent::TierPrune { .. }
        )
    });
    // Latest tier-0 verdict per point: true = promoted, false = pruned.
    let mut tier_state: HashMap<UnrollVector, bool> = HashMap::new();

    let fail = |report: &mut AuditReport,
                invariant: Invariant,
                index: usize,
                event: &TraceEvent,
                detail: String| {
        report.violations.push(AuditViolation {
            invariant,
            event_index: Some(index),
            event: Some(event.clone()),
            detail,
        });
    };

    for (i, e) in events.iter().enumerate() {
        match e {
            TraceEvent::Visit {
                unroll,
                balance,
                fits,
                cache_hit,
                ..
            } => {
                report.checks += 2;
                if *cache_hit {
                    if !first_visit.contains_key(unroll) {
                        fail(
                            &mut report,
                            Invariant::VisitUnique,
                            i,
                            e,
                            format!("revisit of {unroll} which was never first-visited"),
                        );
                    }
                } else if first_visit.contains_key(unroll) {
                    fail(
                        &mut report,
                        Invariant::VisitUnique,
                        i,
                        e,
                        format!("{unroll} first-visited twice"),
                    );
                } else {
                    first_visit.insert(unroll.clone(), (i, *balance, *fits));
                    if has_tier {
                        report.checks += 1;
                        match tier_state.get(unroll) {
                            Some(true) => {}
                            Some(false) => fail(
                                &mut report,
                                Invariant::TierPromotion,
                                i,
                                e,
                                format!("tier-1 visit of {unroll} after it was tier-0-pruned"),
                            ),
                            None => fail(
                                &mut report,
                                Invariant::TierPromotion,
                                i,
                                e,
                                format!("tier-1 visit of {unroll} without a TierPromote"),
                            ),
                        }
                    }
                }
                if !space.contains(unroll) {
                    fail(
                        &mut report,
                        Invariant::MemberOfSpace,
                        i,
                        e,
                        format!("visited {unroll} is not in the design space"),
                    );
                }
            }
            TraceEvent::Increase { from, to } => {
                report.checks += 1;
                let (pf, pt) = (from.product(), to.product());
                if pt != 2 * pf {
                    fail(
                        &mut report,
                        Invariant::IncreaseDoubles,
                        i,
                        e,
                        format!("P({to}) = {pt} is not 2·P({from}) = {}", 2 * pf),
                    );
                }
                // Balance is checked after the pass: the search emits
                // Increase before visiting `to`.
                increases.push((i, from.clone(), to.clone()));
            }
            TraceEvent::SelectBetween { lo, hi, chosen } => {
                report.checks += 1;
                if let Some(c) = chosen {
                    let (ps, pl, pc) = (lo.product(), hi.product(), c.product());
                    if !(ps < pc && pc < pl) {
                        fail(
                            &mut report,
                            Invariant::SelectBetweenBounds,
                            i,
                            e,
                            format!("P({c}) = {pc} is not strictly between {ps} and {pl}"),
                        );
                    }
                    if pc % u_init_product != 0 {
                        fail(
                            &mut report,
                            Invariant::SelectBetweenBounds,
                            i,
                            e,
                            format!(
                                "P({c}) = {pc} is not a multiple of P(U_init) = {u_init_product}"
                            ),
                        );
                    }
                    if !space.contains(c) {
                        fail(
                            &mut report,
                            Invariant::MemberOfSpace,
                            i,
                            e,
                            format!("pick {c} is not in the design space"),
                        );
                    }
                }
            }
            TraceEvent::FindLargestFit { base, init, chosen } => {
                report.checks += 1;
                if chosen.product() > init.product() || chosen.product() < base.product() {
                    fail(
                        &mut report,
                        Invariant::SelectBetweenBounds,
                        i,
                        e,
                        format!(
                            "largest-fit pick {chosen} is outside [{}, {}]",
                            base.product(),
                            init.product()
                        ),
                    );
                }
            }
            TraceEvent::Frontier { points } => {
                report.checks += 1;
                if points.first() != Some(&sat.u_init) {
                    fail(
                        &mut report,
                        Invariant::FrontierChain,
                        i,
                        e,
                        format!("frontier does not start at U_init = {}", sat.u_init),
                    );
                }
                for w in points.windows(2) {
                    if w[1].product() != 2 * w[0].product() {
                        fail(
                            &mut report,
                            Invariant::FrontierChain,
                            i,
                            e,
                            format!("frontier step {} -> {} does not double", w[0], w[1]),
                        );
                    }
                }
                for p in points {
                    if !space.contains(p) {
                        fail(
                            &mut report,
                            Invariant::MemberOfSpace,
                            i,
                            e,
                            format!("frontier point {p} is not in the design space"),
                        );
                    }
                }
            }
            TraceEvent::Terminate { selected, .. } => {
                report.checks += 3;
                if terminate_at.is_some() {
                    fail(
                        &mut report,
                        Invariant::TerminateFinal,
                        i,
                        e,
                        "second Terminate event".into(),
                    );
                }
                terminate_at = Some(i);
                match first_visit.get(selected) {
                    Some(&(_, _, fits)) if fits => {}
                    Some(_) => fail(
                        &mut report,
                        Invariant::SelectedValid,
                        i,
                        e,
                        format!("selected {selected} does not fit the device"),
                    ),
                    None => fail(
                        &mut report,
                        Invariant::SelectedValid,
                        i,
                        e,
                        format!("selected {selected} was never visited"),
                    ),
                }
                if !space.contains(selected) {
                    fail(
                        &mut report,
                        Invariant::SelectedValid,
                        i,
                        e,
                        format!("selected {selected} is not in the design space"),
                    );
                }
            }
            TraceEvent::TierPromote { unroll, .. } => {
                tier_state.insert(unroll.clone(), true);
            }
            TraceEvent::TierPrune { unroll, .. } => {
                tier_state.insert(unroll.clone(), false);
            }
            // Warm-start markers precede the search proper and carry no
            // obligations: the events after them are a complete search
            // that must (and does) justify its selection on its own.
            TraceEvent::WarmStart { .. } => {}
            // Joint-sweep events describe a different artifact; they are
            // audited by [`audit_joint_trace`].
            TraceEvent::AxisVisit { .. } => {}
            // Guided-strategy events are audited by
            // [`audit_strategy_trace`].
            TraceEvent::StrategyStep { .. } | TraceEvent::BoundPrune { .. } => {}
            TraceEvent::StagePlaced { .. } | TraceEvent::StageRebalanced { .. } => {}
        }
    }

    // Observation 3: past Psat the compute-bound → memory-bound
    // crossover is one-way, so no doubling step from a point at or past
    // Psat may lead from `B < 1` back to `B > 1`. (Raw balance is NOT
    // required to fall at every step — integer cycle counts and
    // shape-dependent scheduling make it wobble within the
    // compute-bound region.) Checked after the pass because Increase
    // precedes the visit of its endpoint in a trace.
    for (i, from, to) in &increases {
        report.checks += 1;
        if from.product() < sat.psat {
            continue;
        }
        match (first_visit.get(from), first_visit.get(to)) {
            (Some(&(_, bf, _)), Some(&(_, bt, _))) => {
                if bf < 1.0 - BALANCE_EPS && bt > 1.0 + BALANCE_EPS {
                    fail(
                        &mut report,
                        Invariant::BalanceMonotone,
                        *i,
                        &events[*i],
                        format!(
                            "doubling from memory-bound {from} (B = {bf}) reached \
                             compute-bound {to} (B = {bt}) past Psat = {}",
                            sat.psat
                        ),
                    );
                }
            }
            _ => fail(
                &mut report,
                Invariant::BalanceMonotone,
                *i,
                &events[*i],
                format!("increase endpoints {from} -> {to} not both visited"),
            ),
        }
    }

    report.checks += 1;
    match terminate_at {
        None => report.violations.push(AuditViolation {
            invariant: Invariant::TerminateFinal,
            event_index: None,
            event: None,
            detail: "trace has no Terminate event".into(),
        }),
        Some(i) if i + 1 != events.len() => report.violations.push(AuditViolation {
            invariant: Invariant::TerminateFinal,
            event_index: Some(i),
            event: Some(events[i].clone()),
            detail: format!("Terminate at event {i} is not the final event"),
        }),
        Some(_) => {}
    }

    // Deferred checks report out of order; restore trace order.
    report
        .violations
        .sort_by_key(|v| v.event_index.unwrap_or(usize::MAX));
    report
}

/// Replay a joint-sweep trace (the `AxisVisit` events of one
/// [`Explorer::joint_sweep`](crate::Explorer::joint_sweep)) against the
/// membership-soundness invariant: every visited point is a member of
/// the joint `space`, every member is visited exactly once, and nothing
/// outside the space was ever touched. Since an `AxisVisit` is emitted
/// only after its point transformed and estimated without error, a clean
/// report over a complete sweep certifies "space membership implies
/// transform success" end to end. Non-`AxisVisit` events are ignored, so
/// a combined trace can hold a search and a joint sweep side by side.
pub fn audit_joint_trace(events: &[TraceEvent], space: &DesignSpace) -> AuditReport {
    let mut report = AuditReport {
        events: events.len(),
        ..AuditReport::default()
    };
    let mut seen: Vec<&crate::space::JointPoint> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        let TraceEvent::AxisVisit { point, .. } = e else {
            continue;
        };
        report.checks += 2;
        if !space.contains_joint(point) {
            report.violations.push(AuditViolation {
                invariant: Invariant::JointMembership,
                event_index: Some(i),
                event: Some(e.clone()),
                detail: format!("visited point {point:?} is not in the joint space"),
            });
        }
        if seen.contains(&point) {
            report.violations.push(AuditViolation {
                invariant: Invariant::JointMembership,
                event_index: Some(i),
                event: Some(e.clone()),
                detail: format!("point {point:?} visited twice"),
            });
        }
        seen.push(point);
    }
    report.checks += 1;
    for member in space.joint_points() {
        if !seen.contains(&member) {
            report.violations.push(AuditViolation {
                invariant: Invariant::JointMembership,
                event_index: None,
                event: None,
                detail: format!("member {member:?} was never visited"),
            });
        }
    }
    report
}

/// Replay a guided-strategy trace (the `StrategyStep`/`BoundPrune`
/// events of one [`Explorer::joint_explore`](crate::Explorer::joint_explore))
/// against the strategy-soundness invariants:
///
/// - **strategy-monotone** — each step's recorded incumbent equals the
///   minimum fitting cycle count among all *prior* steps (so the
///   incumbent sequence is monotone non-increasing, and `None` appears
///   only before the first fitting evaluation), and no point is stepped
///   twice;
/// - **prune-excludes-selected** — no `BoundPrune` discarded the design
///   the strategy ultimately selected, and every prune with a recorded
///   cycle threshold is justified by it (`cycles_lo > threshold`);
/// - **joint-membership** — every stepped and pruned point is a member
///   of the joint `space`.
///
/// Non-strategy events are ignored, so a combined trace can hold a
/// classic search and a guided run side by side. Pass `selected: None`
/// when the run selected nothing (no fitting design).
pub fn audit_strategy_trace(
    events: &[TraceEvent],
    space: &DesignSpace,
    selected: Option<&crate::space::JointPoint>,
) -> AuditReport {
    let mut report = AuditReport {
        events: events.len(),
        ..AuditReport::default()
    };
    // Replayed incumbent: min fitting cycles over the steps seen so far.
    let mut replayed: Option<u64> = None;
    let mut stepped: Vec<&crate::space::JointPoint> = Vec::new();
    let mut selected_stepped = false;
    for (i, e) in events.iter().enumerate() {
        match e {
            TraceEvent::StrategyStep {
                point,
                cycles,
                fits,
                incumbent,
                ..
            } => {
                report.checks += 3;
                if *incumbent != replayed {
                    report.violations.push(AuditViolation {
                        invariant: Invariant::StrategyMonotone,
                        event_index: Some(i),
                        event: Some(e.clone()),
                        detail: format!(
                            "step records incumbent {incumbent:?} but the best fitting \
                             cycles among prior steps is {replayed:?}"
                        ),
                    });
                }
                if *fits {
                    replayed = Some(replayed.map_or(*cycles, |r| r.min(*cycles)));
                }
                if stepped.contains(&point) {
                    report.violations.push(AuditViolation {
                        invariant: Invariant::StrategyMonotone,
                        event_index: Some(i),
                        event: Some(e.clone()),
                        detail: format!("point {point:?} stepped twice"),
                    });
                }
                stepped.push(point);
                if !space.contains_joint(point) {
                    report.violations.push(AuditViolation {
                        invariant: Invariant::JointMembership,
                        event_index: Some(i),
                        event: Some(e.clone()),
                        detail: format!("stepped point {point:?} is not in the joint space"),
                    });
                }
                if selected == Some(point) {
                    selected_stepped = true;
                }
            }
            TraceEvent::BoundPrune {
                point,
                cycles_lo,
                threshold,
                ..
            } => {
                report.checks += 3;
                if selected == Some(point) {
                    report.violations.push(AuditViolation {
                        invariant: Invariant::PruneExcludesSelected,
                        event_index: Some(i),
                        event: Some(e.clone()),
                        detail: format!("selected design {point:?} was bound-pruned"),
                    });
                }
                if let Some(t) = threshold {
                    if cycles_lo <= t {
                        report.violations.push(AuditViolation {
                            invariant: Invariant::PruneExcludesSelected,
                            event_index: Some(i),
                            event: Some(e.clone()),
                            detail: format!(
                                "prune of {point:?} is unjustified: cycles_lo {cycles_lo} \
                                 does not exceed the threshold {t}"
                            ),
                        });
                    }
                }
                if !space.contains_joint(point) {
                    report.violations.push(AuditViolation {
                        invariant: Invariant::JointMembership,
                        event_index: Some(i),
                        event: Some(e.clone()),
                        detail: format!("pruned point {point:?} is not in the joint space"),
                    });
                }
            }
            _ => {}
        }
    }
    report.checks += 1;
    if let Some(sel) = selected {
        if !selected_stepped {
            report.violations.push(AuditViolation {
                invariant: Invariant::SelectedValid,
                event_index: None,
                event: None,
                detail: format!("selected design {sel:?} was never evaluated by a StrategyStep"),
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::Termination;

    fn synthetic() -> (DesignSpace, SaturationInfo) {
        let space = DesignSpace::new(&[64, 32], &[true, true]);
        let base = space.base_vector();
        let sat_set = space.members_with_product(4, &base, &space.max_vector());
        let info = SaturationInfo {
            read_sets: 2,
            write_sets: 1,
            psat: 4,
            unrollable: vec![true, true],
            sat_set,
            u_init: UnrollVector(vec![4, 1]),
            preference: vec![0, 1],
        };
        (space, info)
    }

    fn visit(factors: &[i64], balance: f64, fits: bool) -> TraceEvent {
        TraceEvent::Visit {
            unroll: UnrollVector(factors.to_vec()),
            balance,
            cycles: 100,
            slices: 10,
            fits,
            cache_hit: false,
        }
    }

    fn terminate(factors: &[i64]) -> TraceEvent {
        TraceEvent::Terminate {
            reason: Termination::Balanced,
            selected: UnrollVector(factors.to_vec()),
        }
    }

    #[test]
    fn clean_trace_passes() {
        let (space, sat) = synthetic();
        let events = vec![
            visit(&[4, 1], 2.0, true),
            TraceEvent::Increase {
                from: UnrollVector(vec![4, 1]),
                to: UnrollVector(vec![4, 2]),
            },
            visit(&[4, 2], 1.0, true),
            terminate(&[4, 2]),
        ];
        let report = audit_search_trace(&events, &space, &sat);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.events, 4);
        assert!(report.checks > 0);
    }

    #[test]
    fn duplicate_first_visit_is_flagged() {
        let (space, sat) = synthetic();
        let events = vec![
            visit(&[4, 1], 2.0, true),
            visit(&[4, 1], 2.0, true),
            terminate(&[4, 1]),
        ];
        let report = audit_search_trace(&events, &space, &sat);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].invariant, Invariant::VisitUnique);
        assert_eq!(report.violations[0].event_index, Some(1));
    }

    #[test]
    fn crossover_reversal_past_psat_is_flagged() {
        let (space, sat) = synthetic();
        let events = vec![
            visit(&[4, 1], 0.5, true),
            visit(&[4, 2], 1.5, true),
            TraceEvent::Increase {
                from: UnrollVector(vec![4, 1]),
                to: UnrollVector(vec![4, 2]),
            },
            terminate(&[4, 2]),
        ];
        let report = audit_search_trace(&events, &space, &sat);
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == Invariant::BalanceMonotone));
    }

    #[test]
    fn balance_wobble_within_compute_bound_region_is_allowed() {
        // Raw balance rises 1.88 -> 2.59 but both ends stay compute
        // bound: real estimates do this (integer cycles, shape effects)
        // and the search's soundness does not depend on it.
        let (space, sat) = synthetic();
        let events = vec![
            visit(&[4, 1], 1.88, true),
            visit(&[4, 2], 2.59, true),
            TraceEvent::Increase {
                from: UnrollVector(vec![4, 1]),
                to: UnrollVector(vec![4, 2]),
            },
            terminate(&[4, 2]),
        ];
        let report = audit_search_trace(&events, &space, &sat);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn select_between_outside_bracket_is_flagged() {
        let (space, sat) = synthetic();
        let events = vec![
            visit(&[4, 1], 2.0, true),
            TraceEvent::SelectBetween {
                lo: UnrollVector(vec![4, 1]),
                hi: UnrollVector(vec![8, 2]),
                chosen: Some(UnrollVector(vec![16, 2])),
            },
            terminate(&[4, 1]),
        ];
        let report = audit_search_trace(&events, &space, &sat);
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == Invariant::SelectBetweenBounds));
    }

    #[test]
    fn select_between_non_multiple_is_flagged() {
        let (space, sat) = synthetic();
        let events = vec![
            visit(&[4, 1], 2.0, true),
            TraceEvent::SelectBetween {
                lo: UnrollVector(vec![1, 1]),
                hi: UnrollVector(vec![8, 2]),
                // Product 2: inside the bracket but not a multiple of 4.
                chosen: Some(UnrollVector(vec![2, 1])),
            },
            terminate(&[4, 1]),
        ];
        let report = audit_search_trace(&events, &space, &sat);
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == Invariant::SelectBetweenBounds));
    }

    #[test]
    fn unfit_selection_is_flagged() {
        let (space, sat) = synthetic();
        let events = vec![visit(&[4, 1], 2.0, false), terminate(&[4, 1])];
        let report = audit_search_trace(&events, &space, &sat);
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == Invariant::SelectedValid));
    }

    #[test]
    fn missing_terminate_is_flagged() {
        let (space, sat) = synthetic();
        let report = audit_search_trace(&[visit(&[4, 1], 2.0, true)], &space, &sat);
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == Invariant::TerminateFinal && v.event_index.is_none()));
    }

    #[test]
    fn non_member_visit_is_flagged() {
        let (space, sat) = synthetic();
        let events = vec![visit(&[5, 1], 2.0, true), terminate(&[5, 1])];
        let report = audit_search_trace(&events, &space, &sat);
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == Invariant::MemberOfSpace));
    }

    #[test]
    fn tier_promoted_visits_are_clean() {
        let (space, sat) = synthetic();
        let events = vec![
            TraceEvent::TierPromote {
                unroll: UnrollVector(vec![4, 1]),
                forced: false,
            },
            visit(&[4, 1], 2.0, true),
            TraceEvent::TierPrune {
                unroll: UnrollVector(vec![8, 4]),
                slices_lo: 14000,
                cycles_lo: 512,
            },
            terminate(&[4, 1]),
        ];
        let report = audit_search_trace(&events, &space, &sat);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn visit_without_promotion_is_flagged() {
        let (space, sat) = synthetic();
        let events = vec![
            TraceEvent::TierPromote {
                unroll: UnrollVector(vec![4, 1]),
                forced: false,
            },
            visit(&[4, 1], 2.0, true),
            visit(&[4, 2], 1.5, true),
            terminate(&[4, 1]),
        ];
        let report = audit_search_trace(&events, &space, &sat);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].invariant, Invariant::TierPromotion);
        assert_eq!(report.violations[0].event_index, Some(2));
        assert!(report.violations[0]
            .detail
            .contains("without a TierPromote"));
    }

    #[test]
    fn visit_of_pruned_point_is_flagged() {
        let (space, sat) = synthetic();
        let events = vec![
            TraceEvent::TierPromote {
                unroll: UnrollVector(vec![4, 1]),
                forced: false,
            },
            TraceEvent::TierPrune {
                unroll: UnrollVector(vec![4, 2]),
                slices_lo: 14000,
                cycles_lo: 512,
            },
            visit(&[4, 1], 2.0, true),
            visit(&[4, 2], 1.5, true),
            terminate(&[4, 1]),
        ];
        let report = audit_search_trace(&events, &space, &sat);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].invariant, Invariant::TierPromotion);
        assert!(report.violations[0].detail.contains("tier-0-pruned"));
    }

    #[test]
    fn tier_free_traces_are_exempt_from_promotion_checks() {
        // Same trace as `clean_trace_passes`: no tier events, so plain
        // full-fidelity visits need no promotion records.
        let (space, sat) = synthetic();
        let events = vec![visit(&[4, 1], 2.0, true), terminate(&[4, 1])];
        let report = audit_search_trace(&events, &space, &sat);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn joint_trace_membership_is_audited() {
        use crate::space::{Axis, JointPoint};
        let k = defacto_ir::parse_kernel(
            "kernel fir { in S: i32[96]; in C: i32[32]; inout D: i32[64];
               for j in 0..64 { for i in 0..32 {
                 D[j] = D[j] + S[i + j] * C[i]; } } }",
        )
        .unwrap();
        let summary = defacto_analysis::LegalitySummary::analyze(&k).unwrap();
        let space = DesignSpace::with_axes(&[64, 32], &[true, true], &summary, &[Axis::Unroll], 32);
        let axis_visit = |p: &JointPoint| TraceEvent::AxisVisit {
            point: p.clone(),
            balance: 1.0,
            cycles: 100,
            slices: 10,
            fits: true,
        };
        let complete: Vec<TraceEvent> = space.joint_points().iter().map(axis_visit).collect();
        assert!(audit_joint_trace(&complete, &space).is_clean());
        // Dropping a member breaks completeness.
        let partial = &complete[1..];
        let report = audit_joint_trace(partial, &space);
        assert!(report.violations.iter().any(
            |v| v.invariant == Invariant::JointMembership && v.detail.contains("never visited")
        ));
        // Visiting a non-member breaks membership.
        let mut with_alien = complete.clone();
        with_alien.push(axis_visit(&JointPoint {
            unroll: vec![3, 1],
            ..JointPoint::baseline(2)
        }));
        let report = audit_joint_trace(&with_alien, &space);
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == Invariant::JointMembership
                && v.detail.contains("not in the joint space")));
        // Duplicates are flagged.
        let mut doubled = complete.clone();
        doubled.push(complete[0].clone());
        let report = audit_joint_trace(&doubled, &space);
        assert!(report
            .violations
            .iter()
            .any(|v| v.detail.contains("visited twice")));
        // Search auditing ignores AxisVisit events entirely.
        let (search_space, sat) = synthetic();
        let mut mixed = vec![visit(&[4, 1], 2.0, true)];
        mixed.extend(complete.iter().cloned());
        mixed.push(terminate(&[4, 1]));
        assert!(audit_search_trace(&mixed, &search_space, &sat).is_clean());
    }

    fn strategy_space() -> DesignSpace {
        use crate::space::Axis;
        let k = defacto_ir::parse_kernel(
            "kernel fir { in S: i32[96]; in C: i32[32]; inout D: i32[64];
               for j in 0..64 { for i in 0..32 {
                 D[j] = D[j] + S[i + j] * C[i]; } } }",
        )
        .unwrap();
        let summary = defacto_analysis::LegalitySummary::analyze(&k).unwrap();
        DesignSpace::with_axes(&[64, 32], &[true, true], &summary, &[Axis::Unroll], 32)
    }

    fn joint(factors: &[i64]) -> crate::space::JointPoint {
        crate::space::JointPoint {
            unroll: factors.to_vec(),
            ..crate::space::JointPoint::baseline(factors.len())
        }
    }

    fn step(factors: &[i64], cycles: u64, fits: bool, incumbent: Option<u64>) -> TraceEvent {
        TraceEvent::StrategyStep {
            point: joint(factors),
            cycles,
            slices: 10,
            fits,
            incumbent,
        }
    }

    fn prune(factors: &[i64], cycles_lo: u64, threshold: Option<u64>) -> TraceEvent {
        TraceEvent::BoundPrune {
            point: joint(factors),
            cycles_lo,
            slices_lo: 10,
            threshold,
        }
    }

    #[test]
    fn clean_strategy_trace_passes() {
        let space = strategy_space();
        let events = vec![
            step(&[1, 1], 500, true, None),
            step(&[2, 1], 300, true, Some(500)),
            prune(&[4, 1], 400, Some(300)),
            prune(&[8, 1], 9000, None),
        ];
        let selected = joint(&[2, 1]);
        let report = audit_strategy_trace(&events, &space, Some(&selected));
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.events, 4);
        assert!(report.checks > 0);
    }

    #[test]
    fn backwards_incumbent_is_flagged() {
        let space = strategy_space();
        // Second step claims the incumbent is 400, but the first fitting
        // step already established 300.
        let events = vec![
            step(&[1, 1], 300, true, None),
            step(&[2, 1], 400, true, Some(400)),
        ];
        let report = audit_strategy_trace(&events, &space, None);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].invariant, Invariant::StrategyMonotone);
        assert_eq!(report.violations[0].event_index, Some(1));
    }

    #[test]
    fn unfit_steps_leave_the_incumbent_alone() {
        let space = strategy_space();
        let events = vec![
            step(&[1, 1], 100, false, None),
            step(&[2, 1], 500, true, None),
            step(&[4, 1], 200, true, Some(500)),
        ];
        assert!(audit_strategy_trace(&events, &space, None).is_clean());
    }

    #[test]
    fn pruned_selected_design_is_flagged() {
        let space = strategy_space();
        let events = vec![
            step(&[1, 1], 500, true, None),
            prune(&[2, 1], 600, Some(500)),
        ];
        let selected = joint(&[2, 1]);
        let report = audit_strategy_trace(&events, &space, Some(&selected));
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == Invariant::PruneExcludesSelected
                && v.detail.contains("bound-pruned")));
        // The pruned winner was also never stepped.
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == Invariant::SelectedValid));
    }

    #[test]
    fn unjustified_prune_threshold_is_flagged() {
        let space = strategy_space();
        // cycles_lo 300 does not exceed the recorded threshold 300.
        let events = vec![
            step(&[1, 1], 300, true, None),
            prune(&[2, 1], 300, Some(300)),
        ];
        let report = audit_strategy_trace(&events, &space, None);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(
            report.violations[0].invariant,
            Invariant::PruneExcludesSelected
        );
        assert!(report.violations[0].detail.contains("unjustified"));
    }

    #[test]
    fn non_member_strategy_points_are_flagged() {
        let space = strategy_space();
        let events = vec![
            step(&[3, 1], 500, true, None),
            prune(&[5, 1], 600, Some(500)),
        ];
        let report = audit_strategy_trace(&events, &space, None);
        let joint_violations: Vec<_> = report
            .violations
            .iter()
            .filter(|v| v.invariant == Invariant::JointMembership)
            .collect();
        assert_eq!(joint_violations.len(), 2);
    }

    #[test]
    fn duplicate_step_is_flagged() {
        let space = strategy_space();
        let events = vec![
            step(&[1, 1], 500, true, None),
            step(&[1, 1], 500, true, Some(500)),
        ];
        let report = audit_strategy_trace(&events, &space, None);
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == Invariant::StrategyMonotone
                && v.detail.contains("stepped twice")));
    }

    #[test]
    fn strategy_audit_ignores_foreign_events() {
        let space = strategy_space();
        let events = vec![
            visit(&[4, 1], 2.0, true),
            step(&[1, 1], 500, true, None),
            terminate(&[4, 1]),
        ];
        let selected = joint(&[1, 1]);
        assert!(audit_strategy_trace(&events, &space, Some(&selected)).is_clean());
    }

    #[test]
    fn report_renders_violations() {
        let (space, sat) = synthetic();
        let events = vec![visit(&[5, 1], 2.0, true)];
        let report = audit_search_trace(&events, &space, &sat);
        let text = report.to_string();
        assert!(text.contains("member-of-space"), "{text}");
        assert!(text.contains("terminate-final"), "{text}");
    }
}
