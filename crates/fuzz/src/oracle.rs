//! The six-way differential oracle.
//!
//! One *case* is a generated kernel source run against one device/memory
//! profile. The oracle classifies it as:
//!
//! - **Rejected** — the toolchain refused it with a *typed* diagnostic
//!   (parse error, lint error, capacity infeasibility, non-perfect nest,
//!   typed transform failure). Rejection is a correct outcome for the
//!   grammar's degenerate injections; the campaign counts stages.
//! - **Passed** — every oracle dimension held.
//! - **Violation** — a real bug: a semantics divergence between the
//!   interpreter on the original kernel and on the fully transformed
//!   design, a per-pass IR-verifier failure, a full/multi fidelity
//!   disagreement or analytic band that excludes the exact estimate, a
//!   dirty or nondeterministic search trace, a canonicalization break
//!   (an alpha-renamed variant hashing differently, or a warm persistent
//!   cache changing the selection), a legality break (a statically-legal
//!   joint-space point failing to transform, a transformed legal point
//!   changing semantics, or a provably-illegal transform being accepted)
//!   — or a panic anywhere, which is *always* a violation (crashes are
//!   never an acceptable answer to malformed input).

use std::any::Any;
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use defacto::cache::PersistentCache;
use defacto::exhaustive::{best_joint_performance, best_performance};
use defacto::{
    audit_search_trace, to_jsonl, DseError, Explorer, Fidelity, MemorySink, StrategyKind,
};
use defacto_ir::{canonicalize, parse_kernel, run_with_inputs, ArrayKind, Kernel};
use defacto_synth::{estimate_opts, AnalyticModel, FpgaDevice, MemoryModel, SynthesisOptions};
use defacto_xform::{PreparedKernel, UnrollVector, XformError};

use crate::rng::SplitMix64;

/// Which oracle dimension a violation falls under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Oracle {
    /// Interpreter disagreement between original and transformed kernels.
    Semantics,
    /// The IR verifier flagged a pipeline stage's output.
    Verify,
    /// Full vs. multi fidelity disagreement, or a tier-0 band that fails
    /// to contain the exact tier-1 estimate.
    Fidelity,
    /// A search trace failed its audit or differed across worker counts.
    Audit,
    /// Canonicalization broke content addressing: an alpha-renamed,
    /// declaration-reordered variant hashed differently, or a warm
    /// persistent cache changed what the search selects.
    Canon,
    /// The `LegalitySummary` lied: a statically-legal joint-space point
    /// failed to transform (or changed semantics), or a provably-illegal
    /// permutation/tile was accepted instead of rejected with a typed
    /// error.
    Legality,
    /// A guided search strategy broke its contract: branch-and-bound
    /// selected a different design than the exhaustive joint sweep, or
    /// coordinate descent landed outside its reported optimality gap.
    Strategy,
    /// A panic escaped a compiler pass — the catch-all robustness oracle.
    Crash,
}

impl Oracle {
    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Oracle::Semantics => "semantics",
            Oracle::Verify => "verify",
            Oracle::Fidelity => "fidelity",
            Oracle::Audit => "audit",
            Oracle::Canon => "canon",
            Oracle::Legality => "legality",
            Oracle::Strategy => "strategy",
            Oracle::Crash => "crash",
        }
    }
}

/// One confirmed oracle violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The oracle dimension that tripped.
    pub oracle: Oracle,
    /// Where in the pipeline it tripped (e.g. `design@[2,1]`, `audit@8`).
    pub stage: String,
    /// Human-readable evidence.
    pub detail: String,
}

/// Outcome of one kernel × profile case.
#[derive(Debug, Clone)]
pub enum CaseOutcome {
    /// The toolchain refused the input with a typed diagnostic.
    Rejected {
        /// Which gate refused it: `parse`, `lint`, `interp`, `capacity`,
        /// `structure` or `transform`.
        stage: &'static str,
        /// The diagnostic text.
        detail: String,
    },
    /// All oracle dimensions held; `checks` individual assertions ran.
    Passed {
        /// Number of oracle assertions that held.
        checks: u64,
    },
    /// A bug.
    Violation(Violation),
}

/// A device/memory pairing the campaign sweeps.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Report label, e.g. `wildstar-pipelined/xcv1000`.
    pub name: &'static str,
    /// External memory model.
    pub memory: MemoryModel,
    /// Target FPGA.
    pub device: FpgaDevice,
}

impl Profile {
    /// The two profiles every campaign runs: the paper's pipelined
    /// WildStar/XCV1000 platform and a non-pipelined XCV300 to stress
    /// capacity- and memory-bound paths.
    pub fn standard() -> Vec<Profile> {
        vec![
            Profile {
                name: "wildstar-pipelined/xcv1000",
                memory: MemoryModel::wildstar_pipelined(),
                device: FpgaDevice::virtex1000(),
            },
            Profile {
                name: "wildstar-nonpipelined/xcv300",
                memory: MemoryModel::wildstar_non_pipelined(),
                device: FpgaDevice::virtex300(),
            },
        ]
    }
}

/// Knobs for one oracle run.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// How many design points get the per-point oracles (semantics,
    /// verify, band containment).
    pub max_points: usize,
    /// Worker counts for the trace-audit oracle.
    pub workers: Vec<usize>,
    /// Joint spaces up to this many points get the guided-strategy
    /// oracle (the exhaustive ground truth is the cost being bounded;
    /// `0` disables it).
    pub max_strategy_points: usize,
    /// Seed for input data and point sampling.
    pub input_seed: u64,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            max_points: 3,
            workers: vec![1, 8],
            max_strategy_points: 24,
            input_seed: 0xDEFAC7,
        }
    }
}

/// Run all six oracles on one kernel source under one profile.
pub fn check_case(source: &str, profile: &Profile, cfg: &OracleConfig) -> CaseOutcome {
    match check_case_inner(source, profile, cfg) {
        Ok(outcome) => outcome,
        Err(v) => CaseOutcome::Violation(v),
    }
}

/// `Err` carries crash violations from the panic guard; typed failures
/// become `Ok(Rejected)` or `Ok(Violation)` depending on the oracle.
fn check_case_inner(
    source: &str,
    profile: &Profile,
    cfg: &OracleConfig,
) -> Result<CaseOutcome, Violation> {
    let mut checks: u64 = 0;

    // Gate 0: parse. A typed error is a rejection; a panic is a bug.
    let kernel = match guarded("parse", || parse_kernel(source))? {
        Ok(k) => k,
        Err(e) => {
            return Ok(CaseOutcome::Rejected {
                stage: "parse",
                detail: e.to_string(),
            })
        }
    };

    // Robustness probe: whatever the linter thinks, the interpreter must
    // not panic on a kernel the parser accepted. Runs before the lint
    // gate so degenerate-but-parseable kernels exercise it too.
    let inputs = input_arrays(&kernel, cfg.input_seed);
    let input_refs: Vec<(&str, Vec<i64>)> = inputs
        .iter()
        .map(|(n, v)| (n.as_str(), v.clone()))
        .collect();
    let baseline = guarded("interp-original", || run_with_inputs(&kernel, &input_refs))?;
    checks += 1;

    // Gate 1: lint (front-end legality, DF001–DF010).
    let lint = guarded("lint", || defacto::lint_source(source))?;
    if lint.has_errors() {
        let codes: Vec<&str> = lint
            .diagnostics
            .iter()
            .filter(|d| d.is_error())
            .map(|d| d.code)
            .collect();
        return Ok(CaseOutcome::Rejected {
            stage: "lint",
            detail: codes.join(","),
        });
    }
    let (base_ws, _) = match baseline {
        Ok(r) => r,
        Err(e) => {
            // Lint-clean yet not executable (e.g. a data-dependent
            // out-of-bounds access DF005's constant analysis cannot see).
            return Ok(CaseOutcome::Rejected {
                stage: "interp",
                detail: e.to_string(),
            });
        }
    };

    // Gate 2: capacity on this profile (DF009), then structure.
    let explorer = Explorer::new(&kernel)
        .memory(profile.memory.clone())
        .device(profile.device.clone())
        .verify_each_pass(true);
    let capacity = guarded("capacity", || explorer.capacity_diagnostics())?;
    if capacity.iter().any(|d| d.is_error()) {
        return Ok(CaseOutcome::Rejected {
            stage: "capacity",
            detail: capacity
                .iter()
                .filter(|d| d.is_error())
                .map(|d| d.code)
                .collect::<Vec<_>>()
                .join(","),
        });
    }
    let (sat, space) = match guarded("analyze", || explorer.analyze())? {
        Ok(v) => v,
        Err(e) => {
            return Ok(CaseOutcome::Rejected {
                stage: "structure",
                detail: e.to_string(),
            })
        }
    };

    // Sample the per-point oracle set.
    let all: Vec<UnrollVector> = space.iter().take(4096).collect();
    if all.is_empty() {
        return Ok(CaseOutcome::Rejected {
            stage: "structure",
            detail: "empty design space".to_string(),
        });
    }
    let mut rng = SplitMix64::new(cfg.input_seed ^ 0xC0FF_EE00_5EED);
    let mut picked: BTreeSet<usize> = BTreeSet::new();
    picked.insert(0); // always the baseline point
    while picked.len() < cfg.max_points.min(all.len()) {
        picked.insert(rng.below(all.len() as u64) as usize);
    }
    let points: Vec<&UnrollVector> = picked.iter().map(|&i| &all[i]).collect();

    // Oracles 1 + 2 per sampled point: transform with per-pass
    // verification on, then differential interpretation.
    for &u in &points {
        let stage = format!("design@{:?}", u.factors());
        let design = match guarded(&stage, || explorer.design(u))? {
            Ok(d) => d,
            Err(DseError::Xform(XformError::Verify { stage, diagnostics })) => {
                return Ok(CaseOutcome::Violation(Violation {
                    oracle: Oracle::Verify,
                    stage: format!("pass `{stage}` at {:?}", u.factors()),
                    detail: diagnostics
                        .iter()
                        .map(|d| d.to_string())
                        .collect::<Vec<_>>()
                        .join("; "),
                }))
            }
            Err(e) => {
                return Ok(CaseOutcome::Rejected {
                    stage: "transform",
                    detail: e.to_string(),
                })
            }
        };
        checks += 1; // every pipeline pass verified clean

        let t_run = guarded(&format!("interp-transformed@{:?}", u.factors()), || {
            run_with_inputs(&design.kernel, &input_refs)
        })?;
        let (t_ws, _) = match t_run {
            Ok(r) => r,
            Err(e) => {
                return Ok(CaseOutcome::Violation(Violation {
                    oracle: Oracle::Semantics,
                    stage: format!("transformed-exec@{:?}", u.factors()),
                    detail: format!("original runs but transformed design fails: {e}"),
                }))
            }
        };
        for a in kernel.arrays() {
            if a.kind == ArrayKind::In {
                continue;
            }
            let before = base_ws.array(&a.name);
            let after = t_ws.array(&a.name);
            if before != after {
                let at = first_mismatch(before, after);
                return Ok(CaseOutcome::Violation(Violation {
                    oracle: Oracle::Semantics,
                    stage: format!("outputs@{:?}", u.factors()),
                    detail: format!("array `{}` diverges at flat index {at}", a.name),
                }));
            }
        }
        checks += 1;
    }

    // Oracle 3a: full and multi fidelity must select bit-identical bests.
    let full = match guarded("sweep-full", || explorer.sweep_with_stats())? {
        Ok((sweep, _)) => sweep,
        Err(e) => {
            return Ok(CaseOutcome::Rejected {
                stage: "transform",
                detail: format!("full sweep: {e}"),
            })
        }
    };
    let multi_explorer = explorer.clone().fidelity(Fidelity::Multi);
    let multi = match guarded("sweep-multi", || multi_explorer.sweep_with_stats())? {
        Ok((sweep, _)) => sweep,
        Err(e) => {
            return Ok(CaseOutcome::Rejected {
                stage: "transform",
                detail: format!("multi sweep: {e}"),
            })
        }
    };
    match (best_performance(&full), best_performance(&multi)) {
        (Some(f), Some(m)) if f.unroll == m.unroll && f.estimate == m.estimate => checks += 1,
        (None, None) => {}
        (f, m) => {
            return Ok(CaseOutcome::Violation(Violation {
                oracle: Oracle::Fidelity,
                stage: "full-vs-multi".to_string(),
                detail: format!(
                    "full selects {:?}, multi selects {:?}",
                    f.map(|d| d.unroll.factors().to_vec()),
                    m.map(|d| d.unroll.factors().to_vec()),
                ),
            }))
        }
    }

    // Oracle 3b: the tier-0 analytic band must contain the exact tier-1
    // estimate at every sampled point.
    let mut topts = explorer.transform_options().clone();
    topts.verify_each_pass = false;
    let sopts = SynthesisOptions::default();
    let prepared = match guarded("prepare", || PreparedKernel::prepare(&kernel))? {
        Ok(p) => Arc::new(p),
        Err(e) => {
            return Ok(CaseOutcome::Rejected {
                stage: "transform",
                detail: format!("prepare: {e}"),
            })
        }
    };
    let model = guarded("analytic-model", || {
        AnalyticModel::new(
            prepared.clone(),
            profile.memory.clone(),
            profile.device.clone(),
            topts.clone(),
            sopts.clone(),
        )
    })?;
    if let Some(model) = model {
        for &u in &points {
            let band = match guarded(&format!("band@{:?}", u.factors()), || model.evaluate(u))? {
                Ok(b) => b,
                Err(e) => {
                    return Ok(CaseOutcome::Rejected {
                        stage: "transform",
                        detail: format!("band: {e}"),
                    })
                }
            };
            let design = match guarded(&format!("tier1@{:?}", u.factors()), || {
                prepared.transform(u, &topts)
            })? {
                Ok(d) => d,
                Err(e) => {
                    return Ok(CaseOutcome::Rejected {
                        stage: "transform",
                        detail: format!("tier1: {e}"),
                    })
                }
            };
            let estimate = guarded(&format!("estimate@{:?}", u.factors()), || {
                estimate_opts(&design, &profile.memory, &profile.device, &sopts)
            })?;
            if !band.contains(&estimate) {
                return Ok(CaseOutcome::Violation(Violation {
                    oracle: Oracle::Fidelity,
                    stage: format!("band@{:?}", u.factors()),
                    detail: band_miss_detail(&band, &estimate),
                }));
            }
            checks += 1;
        }
    }

    // Oracle 4: search traces audit clean at every worker count and are
    // byte-identical across them (the engine's determinism contract).
    let mut traces: Vec<(usize, String)> = Vec::new();
    let mut selected: Vec<(usize, UnrollVector)> = Vec::new();
    for &w in &cfg.workers {
        let sink = Arc::new(MemorySink::new());
        let traced = explorer.clone().threads(w).trace(sink.clone());
        let result = match guarded(&format!("explore@{w}"), || traced.explore())? {
            Ok(r) => r,
            Err(e) => {
                return Ok(CaseOutcome::Rejected {
                    stage: "transform",
                    detail: format!("explore@{w}: {e}"),
                })
            }
        };
        let events = sink.events();
        let report = guarded(&format!("audit@{w}"), || {
            audit_search_trace(&events, &space, &sat)
        })?;
        if !report.is_clean() {
            return Ok(CaseOutcome::Violation(Violation {
                oracle: Oracle::Audit,
                stage: format!("audit@{w}"),
                detail: report
                    .violations
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join("; "),
            }));
        }
        checks += 1;
        traces.push((w, to_jsonl(&events)));
        selected.push((w, result.selected.unroll));
    }
    if let Some(pair) = traces.windows(2).find(|p| p[0].1 != p[1].1) {
        return Ok(CaseOutcome::Violation(Violation {
            oracle: Oracle::Audit,
            stage: format!("trace-determinism@{}v{}", pair[0].0, pair[1].0),
            detail: "search traces differ across worker counts".to_string(),
        }));
    }
    if let Some(pair) = selected.windows(2).find(|p| p[0].1 != p[1].1) {
        return Ok(CaseOutcome::Violation(Violation {
            oracle: Oracle::Audit,
            stage: format!("selection-determinism@{}v{}", pair[0].0, pair[1].0),
            detail: format!(
                "workers={} selects {:?}, workers={} selects {:?}",
                pair[0].0,
                pair[0].1.factors(),
                pair[1].0,
                pair[1].1.factors(),
            ),
        }));
    }
    checks += 1;

    // Oracle 5: canonicalization. The canonical form is itself an
    // alpha-renamed, declaration-sorted variant of the kernel: it must
    // hash identically (content addressing is rename-invariant), and a
    // persistent cache warmed by the original must hand the variant the
    // same selection without re-evaluating a single design.
    let canon = guarded("canonicalize", || canonicalize(&kernel))?;
    let recanon = guarded("recanonicalize", || canonicalize(&canon.kernel))?;
    if recanon.hash != canon.hash {
        return Ok(CaseOutcome::Violation(Violation {
            oracle: Oracle::Canon,
            stage: "canonical-hash".to_string(),
            detail: format!(
                "alpha-renamed variant hashes {} but original hashes {}",
                recanon.hash.to_hex(),
                canon.hash.to_hex()
            ),
        }));
    }
    checks += 1;
    let cache_dir = std::env::temp_dir().join(format!(
        "defacto-fuzz-canon-{}-{}",
        std::process::id(),
        canon.hash.to_hex()
    ));
    let canon_result = (|| -> Result<Result<(), Violation>, Violation> {
        let store = match guarded("cache-open", || PersistentCache::open(&cache_dir))? {
            Ok(s) => Arc::new(s),
            Err(_) => return Ok(Ok(())), // no scratch space: skip, not a bug
        };
        // A fresh explorer (fresh engine): estimates served from an
        // already-warm in-memory memo would never reach the store.
        let cold_explorer = Explorer::new(&kernel)
            .memory(profile.memory.clone())
            .device(profile.device.clone())
            .verify_each_pass(true)
            .persistent(store.clone());
        let cold = match guarded("canon-cold", || cold_explorer.explore())? {
            Ok(r) => r,
            Err(_) => return Ok(Ok(())),
        };
        let variant = Explorer::new(&canon.kernel)
            .memory(profile.memory.clone())
            .device(profile.device.clone())
            .verify_each_pass(true)
            .persistent(store);
        let warm = match guarded("canon-warm", || variant.explore())? {
            Ok(r) => r,
            Err(e) => {
                return Ok(Err(Violation {
                    oracle: Oracle::Canon,
                    stage: "canon-warm".to_string(),
                    detail: format!("original explores but canonical variant fails: {e}"),
                }))
            }
        };
        if warm.selected.unroll != cold.selected.unroll
            || warm.selected.estimate != cold.selected.estimate
        {
            return Ok(Err(Violation {
                oracle: Oracle::Canon,
                stage: "canon-selection".to_string(),
                detail: format!(
                    "original selects {:?}, canonical variant selects {:?} from warm cache",
                    cold.selected.unroll.factors(),
                    warm.selected.unroll.factors(),
                ),
            }));
        }
        if warm.stats.evaluated != 0 {
            return Ok(Err(Violation {
                oracle: Oracle::Canon,
                stage: "canon-reuse".to_string(),
                detail: format!(
                    "warm cache should serve every estimate, but {} were re-evaluated \
                     ({} persist hits, {} misses)",
                    warm.stats.evaluated, warm.stats.persist_hits, warm.stats.persist_misses,
                ),
            }));
        }
        Ok(Ok(()))
    })();
    std::fs::remove_dir_all(&cache_dir).ok();
    match canon_result? {
        Ok(()) => checks += 2,
        Err(v) => return Ok(CaseOutcome::Violation(v)),
    }

    // Oracle 6: joint-space legality. Every point the typed multi-axis
    // space enumerates is statically proven legal, so each sampled point
    // must transform verifier-clean and preserve semantics; conversely a
    // provably-illegal permutation or tile must be refused with a typed
    // error — accepted is a soundness bug, a panic is a crash.
    let joint_explorer = explorer.clone().axes(&defacto::Axis::ALL);
    let jspace = match guarded("joint-space", || joint_explorer.joint_space())? {
        Ok(s) => s,
        Err(e) => {
            return Ok(CaseOutcome::Rejected {
                stage: "transform",
                detail: format!("joint-space: {e}"),
            })
        }
    };
    let jpoints = jspace.joint_points();
    let mut jpicked: BTreeSet<usize> = BTreeSet::new();
    if !jpoints.is_empty() {
        let mut jrng = SplitMix64::new(cfg.input_seed ^ 0x10E6_A117);
        jpicked.insert(0);
        jpicked.insert(jpoints.len() - 1);
        while jpicked.len() < cfg.max_points.min(jpoints.len()) {
            jpicked.insert(jrng.below(jpoints.len() as u64) as usize);
        }
    }
    let mut jopts = explorer.transform_options().clone();
    jopts.verify_each_pass = true;
    for &i in &jpicked {
        let p = &jpoints[i];
        let unroll = match p.tile {
            Some(_) => UnrollVector::ones(p.unroll.len() + 1),
            None => UnrollVector(p.unroll.clone()),
        };
        let built = guarded(&format!("joint-build@{i}"), || {
            let mut variant = defacto_xform::normalize_loops(&kernel)?;
            if !p.identity_permutation() {
                variant = defacto_xform::interchange(&variant, &p.permutation)?;
            }
            if let Some((level, tile)) = p.tile {
                variant = defacto_xform::tiling::tile_for_registers(&variant, level, tile)?;
            }
            defacto_xform::transform(&variant, &unroll, &jopts)
        })?;
        let design = match built {
            Ok(d) => d,
            Err(e) => {
                return Ok(CaseOutcome::Violation(Violation {
                    oracle: Oracle::Legality,
                    stage: format!("joint@{i}"),
                    detail: format!("statically-legal point {p:?} rejected by transform: {e}"),
                }))
            }
        };
        checks += 1; // membership implied a verifier-clean transform
        let j_run = guarded(&format!("interp-joint@{i}"), || {
            run_with_inputs(&design.kernel, &input_refs)
        })?;
        let (j_ws, _) = match j_run {
            Ok(r) => r,
            Err(e) => {
                return Ok(CaseOutcome::Violation(Violation {
                    oracle: Oracle::Legality,
                    stage: format!("joint-exec@{i}"),
                    detail: format!("legal point {p:?} transforms but fails to run: {e}"),
                }))
            }
        };
        for a in kernel.arrays() {
            if a.kind == ArrayKind::In {
                continue;
            }
            if base_ws.array(&a.name) != j_ws.array(&a.name) {
                return Ok(CaseOutcome::Violation(Violation {
                    oracle: Oracle::Legality,
                    stage: format!("joint-outputs@{i}"),
                    detail: format!("array `{}` diverges under {p:?}", a.name),
                }));
            }
        }
        checks += 1;
    }

    // Oracle 7: guided-strategy identity. Branch-and-bound must select
    // the bit-identical design to the exhaustive joint sweep (its
    // prunes are proven by tier-0 band containment), and coordinate
    // descent must land within its reported optimality gap. Bounded to
    // small spaces — the exhaustive ground truth is the cost being
    // capped — and run through one explorer so the strategies answer
    // from the sweep's memo cache.
    if !jpoints.is_empty() && jpoints.len() <= cfg.max_strategy_points {
        let gex = Explorer::new(&kernel)
            .memory(profile.memory.clone())
            .device(profile.device.clone())
            .axes(&defacto::Axis::ALL);
        let sweep = match guarded("strategy-sweep", || gex.joint_sweep())? {
            Ok(s) => s,
            Err(e) => {
                return Ok(CaseOutcome::Violation(Violation {
                    oracle: Oracle::Strategy,
                    stage: "strategy-sweep".to_string(),
                    detail: format!("exhaustive joint sweep failed: {e}"),
                }))
            }
        };
        let truth = best_joint_performance(&sweep);
        let bnb = match guarded("strategy-bnb", || {
            gex.joint_explore(StrategyKind::BranchAndBound)
        })? {
            Ok(r) => r,
            Err(e) => {
                return Ok(CaseOutcome::Violation(Violation {
                    oracle: Oracle::Strategy,
                    stage: "strategy-bnb".to_string(),
                    detail: format!("branch-and-bound failed: {e}"),
                }))
            }
        };
        let identical = match (truth, &bnb.selected) {
            (Some(e), Some(g)) => e.point == g.point && e.estimate == g.estimate,
            (None, None) => true,
            _ => false,
        };
        if !identical {
            return Ok(CaseOutcome::Violation(Violation {
                oracle: Oracle::Strategy,
                stage: "strategy-bnb".to_string(),
                detail: format!(
                    "branch-and-bound selected {:?}, exhaustive selected {:?}",
                    bnb.selected.as_ref().map(|d| &d.point),
                    truth.map(|d| &d.point)
                ),
            }));
        }
        checks += 1;
        let cd = match guarded("strategy-cd", || {
            gex.joint_explore(StrategyKind::CoordinateDescent)
        })? {
            Ok(r) => r,
            Err(e) => {
                return Ok(CaseOutcome::Violation(Violation {
                    oracle: Oracle::Strategy,
                    stage: "strategy-cd".to_string(),
                    detail: format!("coordinate descent failed: {e}"),
                }))
            }
        };
        let within_gap = match (truth, &cd.selected, cd.gap_cycles) {
            (Some(e), Some(g), Some(gap)) => {
                g.estimate.cycles.saturating_sub(e.estimate.cycles) <= gap
            }
            (None, None, _) => true,
            _ => false,
        };
        if !within_gap {
            return Ok(CaseOutcome::Violation(Violation {
                oracle: Oracle::Strategy,
                stage: "strategy-cd".to_string(),
                detail: format!(
                    "coordinate descent cycles {:?} outside gap {:?} of optimum {:?}",
                    cd.selected.as_ref().map(|d| d.estimate.cycles),
                    cd.gap_cycles,
                    truth.map(|d| d.estimate.cycles)
                ),
            }));
        }
        checks += 1;
    }

    // The negative half: provably-illegal coordinates must be refused
    // with a typed error, never accepted, never a panic.
    let summary = prepared.legality();
    if let Ok(normalized) = guarded("normalize", || defacto_xform::normalize_loops(&kernel))? {
        if let Some(bad) = first_illegal_permutation(summary) {
            match guarded("illegal-perm", || {
                defacto_xform::interchange(&normalized, &bad)
            })? {
                Ok(_) => {
                    return Ok(CaseOutcome::Violation(Violation {
                        oracle: Oracle::Legality,
                        stage: "illegal-perm".to_string(),
                        detail: format!(
                            "permutation {bad:?} is outside the legal set but interchange \
                             accepted it"
                        ),
                    }))
                }
                Err(_) => checks += 1,
            }
        }
        if let Some((level, tile)) = first_illegal_tile(summary) {
            let probe = guarded("illegal-tile", || {
                defacto_xform::tiling::tile_for_registers(&normalized, level, tile)
            })?;
            match probe {
                Ok(_) => {
                    return Ok(CaseOutcome::Violation(Violation {
                        oracle: Oracle::Legality,
                        stage: "illegal-tile".to_string(),
                        detail: format!(
                            "level {level} is not tilable but tile_for_registers accepted \
                             tile size {tile}"
                        ),
                    }))
                }
                Err(_) => checks += 1,
            }
        }
    }

    Ok(CaseOutcome::Passed { checks })
}

/// A permutation of the nest the summary proves illegal, if any exists
/// (i.e. the legal set is a strict subset of all `depth!` orders).
fn first_illegal_permutation(
    summary: &defacto::analysis::legality::LegalitySummary,
) -> Option<Vec<usize>> {
    let depth = summary.depth();
    if !(2..=4).contains(&depth) {
        return None; // 1-deep has one order; deeper nests don't occur
    }
    all_permutations(depth)
        .into_iter()
        .find(|p| !summary.permutation_is_legal(p))
}

/// A (level, proper-divisor) pair the summary proves untilable, if any.
fn first_illegal_tile(
    summary: &defacto::analysis::legality::LegalitySummary,
) -> Option<(usize, i64)> {
    for (level, &trip) in summary.trip_counts().iter().enumerate() {
        if summary.tilable(level) {
            continue;
        }
        if let Some(t) = (2..trip).find(|t| trip % t == 0) {
            return Some((level, t));
        }
    }
    None
}

fn all_permutations(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current: Vec<usize> = (0..n).collect();
    heap_permute(&mut current, n, &mut out);
    out
}

fn heap_permute(items: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
    if k <= 1 {
        out.push(items.clone());
        return;
    }
    for i in 0..k {
        heap_permute(items, k - 1, out);
        if k.is_multiple_of(2) {
            items.swap(i, k - 1);
        } else {
            items.swap(0, k - 1);
        }
    }
}

/// Name every band component the exact estimate escapes — only the
/// misses, so the report points straight at the broken bound.
fn band_miss_detail(band: &defacto_synth::AnalyticBand, e: &defacto_synth::Estimate) -> String {
    let mut misses = Vec::new();
    let mut check_u64 = |name: &str, v: u64, lo: u64, hi: u64| {
        if v < lo || v > hi {
            misses.push(format!("{name} {v}∉[{lo},{hi}]"));
        }
    };
    check_u64("cycles", e.cycles, band.cycles_lo, band.cycles_hi);
    check_u64(
        "slices",
        e.slices as u64,
        band.slices_lo as u64,
        band.slices_hi as u64,
    );
    check_u64(
        "mem_busy",
        e.memory_busy_cycles,
        band.mem_busy_lo,
        band.mem_busy_hi,
    );
    check_u64(
        "comp_busy",
        e.compute_busy_cycles,
        band.comp_busy_lo,
        band.comp_busy_hi,
    );
    check_u64("bits", e.bits_from_memory, band.bits_lo, band.bits_hi);
    if e.registers != band.registers {
        misses.push(format!("registers {} != {}", e.registers, band.registers));
    }
    if e.balance < band.balance_lo || e.balance > band.balance_hi {
        misses.push(format!(
            "balance {}∉[{},{}]",
            e.balance, band.balance_lo, band.balance_hi
        ));
    }
    if band.fits_certain && !e.fits {
        misses.push("fits_certain but estimate does not fit".into());
    }
    if !band.fits_possible && e.fits {
        misses.push("fits impossible but estimate fits".into());
    }
    if e.clock_ns != band.clock_ns {
        misses.push(format!("clock {} != {}", e.clock_ns, band.clock_ns));
    }
    format!("band excludes exact estimate: {}", misses.join(", "))
}

/// Run `f` under a panic guard; a panic becomes a [`Oracle::Crash`]
/// violation carrying the panic message.
fn guarded<T>(stage: &str, f: impl FnOnce() -> T) -> Result<T, Violation> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| Violation {
        oracle: Oracle::Crash,
        stage: stage.to_string(),
        detail: panic_text(payload),
    })
}

fn panic_text(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Deterministic input data for every readable array, respecting declared
/// `range` annotations (a broken range promise would be the *kernel's*
/// bug, not the compiler's).
fn input_arrays(kernel: &Kernel, seed: u64) -> Vec<(String, Vec<i64>)> {
    let mut rng = SplitMix64::new(seed ^ 0x1234_5678_9ABC_DEF0);
    let mut out = Vec::new();
    for a in kernel.arrays() {
        if a.kind == ArrayKind::Out {
            continue;
        }
        let len: usize = a.dims.iter().product();
        let (lo, hi) = match a.range {
            Some(r) => r,
            None if a.ty.is_signed() => (-32, 31),
            None => (0, 63),
        };
        let data: Vec<i64> = (0..len).map(|_| a.ty.wrap(rng.range_i64(lo, hi))).collect();
        out.push((a.name.clone(), data));
    }
    out
}

fn first_mismatch(a: Option<&[i64]>, b: Option<&[i64]>) -> usize {
    match (a, b) {
        (Some(a), Some(b)) => a
            .iter()
            .zip(b.iter())
            .position(|(x, y)| x != y)
            .unwrap_or_else(|| a.len().min(b.len())),
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIR: &str = "kernel fir {
       in  S: i32[12];
       in  C: i32[4];
       inout D: i32[8];
       for j in 0..8 {
         for i in 0..4 {
           D[j] = D[j] + S[i + j] * C[i];
         }
       }
     }";

    #[test]
    fn a_known_good_kernel_passes_every_oracle() {
        let cfg = OracleConfig::default();
        for profile in Profile::standard() {
            match check_case(FIR, &profile, &cfg) {
                CaseOutcome::Passed { checks } => assert!(checks >= 8, "too few checks: {checks}"),
                other => panic!("fir should pass on {}: {other:?}", profile.name),
            }
        }
    }

    #[test]
    fn strategy_oracle_fires_on_small_joint_spaces() {
        // With an uncapped budget the oracle must add exactly its two
        // checks (branch-and-bound identity, coordinate-descent gap)
        // over a run with the oracle disabled.
        let profile = &Profile::standard()[0];
        let with = OracleConfig {
            max_strategy_points: 1000,
            ..OracleConfig::default()
        };
        let without = OracleConfig {
            max_strategy_points: 0,
            ..OracleConfig::default()
        };
        let checks_with = match check_case(FIR, profile, &with) {
            CaseOutcome::Passed { checks } => checks,
            other => panic!("fir should pass: {other:?}"),
        };
        let checks_without = match check_case(FIR, profile, &without) {
            CaseOutcome::Passed { checks } => checks,
            other => panic!("fir should pass: {other:?}"),
        };
        assert_eq!(checks_with, checks_without + 2);
    }

    #[test]
    fn renamed_reordered_variant_hashes_and_selects_identically() {
        // A hand-scrambled FIR: declarations reordered, loop variables and
        // arrays alpha-renamed. The canon oracle must see straight through.
        let scrambled = "kernel fir {
           inout dest: i32[8];
           in  coef: i32[4];
           in  sig: i32[12];
           for outer in 0..8 {
             for inner in 0..4 {
               dest[outer] = dest[outer] + sig[inner + outer] * coef[inner];
             }
           }
         }";
        let a = canonicalize(&parse_kernel(FIR).unwrap());
        let b = canonicalize(&parse_kernel(scrambled).unwrap());
        assert_eq!(a.hash, b.hash, "rename/reorder must not change the hash");
        // And both pass the full oracle stack, canon dimension included.
        let cfg = OracleConfig::default();
        let profile = &Profile::standard()[0];
        match check_case(scrambled, profile, &cfg) {
            CaseOutcome::Passed { checks } => assert!(checks >= 11, "too few checks: {checks}"),
            other => panic!("scrambled fir should pass: {other:?}"),
        }
    }

    #[test]
    fn degenerate_inputs_are_rejected_with_typed_stages() {
        let cfg = OracleConfig::default();
        let profile = &Profile::standard()[0];
        for (src, want) in [
            ("kernel k {", "parse"),
            (
                "kernel k { in A: i32[4]; out B: i32[4]; for i in 4..0 { B[i] = A[i]; } }",
                "lint",
            ),
            (
                "kernel k { in A: i32[4]; out B: i32[4]; B[0] = A[0]; }",
                "structure",
            ),
        ] {
            match check_case(src, profile, &cfg) {
                CaseOutcome::Rejected { stage, .. } => {
                    assert_eq!(stage, want, "wrong rejection stage for {src:?}")
                }
                other => panic!("{src:?} should be rejected at `{want}`: {other:?}"),
            }
        }
    }
}
