//! Deterministic pseudo-random numbers for kernel generation.
//!
//! SplitMix64 (Steele, Lea, Flood — "Fast splittable pseudorandom number
//! generators", OOPSLA 2014): one multiply-xorshift finalizer over a Weyl
//! sequence. Every fuzz campaign is replayable from `--seed`, so the
//! generator must be fully specified here rather than borrowed from a
//! platform RNG.

/// A seeded SplitMix64 stream.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Start a stream at `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform value in the inclusive range `lo..=hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + self.below(span) as i64
    }

    /// True with probability `percent`/100.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }

    /// Pick one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = SplitMix64::new(43).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn range_is_inclusive_and_bounded() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let v = r.range_i64(-3, 5);
            assert!((-3..=5).contains(&v));
        }
        assert_eq!(r.range_i64(4, 4), 4);
    }

    #[test]
    fn chance_extremes_are_exact() {
        let mut r = SplitMix64::new(9);
        assert!(!(0..100).any(|_| r.chance(0)));
        assert!((0..100).all(|_| r.chance(100)));
    }
}
