//! Campaign driver: generate → check → shrink → report.
//!
//! A campaign runs `count` generated kernels, each against every profile,
//! and classifies every case. Violations are minimized on the spot (the
//! shrinker re-runs the oracle, so a reported reproducer is *verified* to
//! still fail) and land in the report ready to be written to
//! `tests/fuzz_corpus/`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::grammar::generate_kernel;
use crate::oracle::{check_case, CaseOutcome, Oracle, OracleConfig, Profile, Violation};
use crate::shrink::shrink;

/// Configuration for one fuzz campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Base seed; the whole campaign is a pure function of it.
    pub seed: u64,
    /// Number of kernels to generate.
    pub count: usize,
    /// Design points per kernel given the per-point oracles.
    pub max_points: usize,
    /// Worker counts for the trace-audit oracle.
    pub workers: Vec<usize>,
    /// Minimize failures before reporting.
    pub shrink: bool,
    /// Device/memory profiles to sweep.
    pub profiles: Vec<Profile>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 7,
            count: 100,
            max_points: 3,
            workers: vec![1, 8],
            shrink: true,
            profiles: Profile::standard(),
        }
    }
}

/// One confirmed, minimized bug.
#[derive(Debug, Clone)]
pub struct FoundBug {
    /// Generator index within the campaign.
    pub index: u64,
    /// Profile label the case ran under.
    pub profile: String,
    /// Violated oracle dimension.
    pub oracle: Oracle,
    /// Pipeline stage of the violation.
    pub stage: String,
    /// Evidence text.
    pub detail: String,
    /// The original generated source.
    pub source: String,
    /// The minimized reproducer (equals `source` when shrinking is off).
    pub minimized: String,
}

/// Aggregate campaign result.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Kernels generated.
    pub generated: usize,
    /// Kernel × profile cases run.
    pub runs: usize,
    /// Cases that passed every oracle.
    pub passed: usize,
    /// Total individual oracle assertions that held.
    pub checks: u64,
    /// Typed rejections, counted per gate.
    pub rejected: BTreeMap<String, usize>,
    /// Confirmed violations.
    pub bugs: Vec<FoundBug>,
}

impl FuzzReport {
    /// True when no oracle violation was found.
    pub fn is_clean(&self) -> bool {
        self.bugs.is_empty()
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fuzz: {} kernels, {} cases, {} passed, {} oracle checks held",
            self.generated, self.runs, self.passed, self.checks
        );
        if !self.rejected.is_empty() {
            let gates: Vec<String> = self
                .rejected
                .iter()
                .map(|(stage, n)| format!("{stage}:{n}"))
                .collect();
            let _ = writeln!(out, "rejected (typed): {}", gates.join(" "));
        }
        if self.bugs.is_empty() {
            let _ = writeln!(out, "violations: none");
        } else {
            let _ = writeln!(out, "violations: {}", self.bugs.len());
            for b in &self.bugs {
                let _ = writeln!(
                    out,
                    "  [{}] #{} on {} at {}: {}",
                    b.oracle.label(),
                    b.index,
                    b.profile,
                    b.stage,
                    b.detail
                );
                let _ = writeln!(out, "  --- minimized reproducer ---");
                for line in b.minimized.lines() {
                    let _ = writeln!(out, "  {line}");
                }
            }
        }
        out
    }
}

/// Run a campaign. Panics raised by buggy passes are captured by the
/// oracle's guards; the default panic hook is silenced for the duration
/// so expected probe panics don't spam stderr.
pub fn run_campaign(cfg: &CampaignConfig) -> FuzzReport {
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let report = run_campaign_inner(cfg);
    std::panic::set_hook(prev_hook);
    report
}

fn run_campaign_inner(cfg: &CampaignConfig) -> FuzzReport {
    let mut report = FuzzReport::default();
    for index in 0..cfg.count as u64 {
        let source = generate_kernel(cfg.seed, index);
        report.generated += 1;
        for profile in &cfg.profiles {
            let ocfg = OracleConfig {
                max_points: cfg.max_points,
                workers: cfg.workers.clone(),
                // Smoke campaigns (max_points 2) cap the guided-strategy
                // oracle tighter: its exhaustive ground truth dominates
                // the per-case budget.
                max_strategy_points: 8 * cfg.max_points,
                input_seed: cfg.seed ^ index.rotate_left(32),
            };
            report.runs += 1;
            match check_case(&source, profile, &ocfg) {
                CaseOutcome::Passed { checks } => {
                    report.passed += 1;
                    report.checks += checks;
                }
                CaseOutcome::Rejected { stage, .. } => {
                    *report.rejected.entry(stage.to_string()).or_default() += 1;
                }
                CaseOutcome::Violation(v) => {
                    let minimized = if cfg.shrink {
                        minimize(&source, profile, &ocfg, &v)
                    } else {
                        source.clone()
                    };
                    report.bugs.push(FoundBug {
                        index,
                        profile: profile.name.to_string(),
                        oracle: v.oracle,
                        stage: v.stage,
                        detail: v.detail,
                        source: source.clone(),
                        minimized,
                    });
                }
            }
        }
    }
    report
}

/// Shrink a failing source, preserving the violated oracle dimension.
fn minimize(source: &str, profile: &Profile, cfg: &OracleConfig, v: &Violation) -> String {
    let oracle = v.oracle;
    shrink(
        source,
        |candidate| {
            matches!(
                check_case(candidate, profile, cfg),
                CaseOutcome::Violation(w) if w.oracle == oracle
            )
        },
        400,
    )
}

/// Replay one reproducer source through every standard profile — the
/// corpus regression entry point. Returns the per-profile outcomes.
pub fn replay_source(source: &str) -> Vec<(String, CaseOutcome)> {
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = Profile::standard()
        .into_iter()
        .map(|p| {
            let cfg = OracleConfig::default();
            let outcome = check_case(source, &p, &cfg);
            (p.name.to_string(), outcome)
        })
        .collect();
    std::panic::set_hook(prev_hook);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_tiny_campaign_runs_clean_and_deterministically() {
        let cfg = CampaignConfig {
            seed: 3,
            count: 6,
            ..CampaignConfig::default()
        };
        let a = run_campaign(&cfg);
        assert_eq!(a.generated, 6);
        assert_eq!(a.runs, 12);
        assert!(
            a.is_clean(),
            "seed-3 smoke campaign found violations:\n{}",
            a.render()
        );
        assert!(a.passed + a.rejected.values().sum::<usize>() == a.runs);
        let b = run_campaign(&cfg);
        assert_eq!(a.passed, b.passed);
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(a.checks, b.checks);
    }

    #[test]
    fn replay_classifies_known_sources() {
        let outcomes = replay_source(
            "kernel k { in A: i32[4]; out B: i32[4]; for i in 4..0 { B[i] = A[i]; } }",
        );
        assert_eq!(outcomes.len(), 2);
        for (profile, outcome) in outcomes {
            assert!(
                matches!(outcome, CaseOutcome::Rejected { stage: "lint", .. }),
                "{profile}: {outcome:?}"
            );
        }
    }
}
