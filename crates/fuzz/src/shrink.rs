//! Greedy reproducer minimization.
//!
//! Given a failing source and a predicate ("does this still trip the same
//! oracle?"), the shrinker repeatedly tries structural reductions on the
//! parsed AST — delete a statement, splice a loop's body over the loop,
//! halve a trip count or an array extent, collapse an `if` to one branch,
//! replace an expression by an operand or the literal `1` — keeping a
//! candidate only when it still reproduces. Candidates are re-rendered
//! through [`defacto_ir::pretty::print_kernel`], so every accepted step is
//! a *parseable* kernel and the final artifact drops straight into
//! `tests/fuzz_corpus/`.
//!
//! Sources that no longer parse (e.g. a parser-crash reproducer) fall
//! back to whole-line deletion, which needs no AST.

use std::collections::BTreeSet;

use defacto_ir::pretty::print_kernel;
use defacto_ir::{parse_kernel, Expr, Kernel, LValue, Stmt};

/// Minimize `source` while `reproduces` holds, spending at most
/// `max_steps` predicate evaluations.
pub fn shrink(source: &str, reproduces: impl Fn(&str) -> bool, max_steps: usize) -> String {
    let mut best = source.to_string();
    let mut steps = 0usize;
    loop {
        let Ok(kernel) = parse_kernel(&best) else {
            return line_shrink(&best, &reproduces, max_steps.saturating_sub(steps));
        };
        let mut improved = false;
        for candidate in candidates(&kernel) {
            if steps >= max_steps {
                return best;
            }
            let text = print_kernel(&candidate);
            // Structural edits strictly shrink the AST even when the text
            // length ties (e.g. `0..32` → `0..16`); only reject growth.
            if text.len() > best.len() || text == best {
                continue;
            }
            steps += 1;
            if reproduces(&text) {
                best = text;
                improved = true;
                break;
            }
        }
        if !improved {
            return best;
        }
    }
}

/// All single-step reductions of `k`, structurally valid ones only.
fn candidates(k: &Kernel) -> Vec<Kernel> {
    let mut out = Vec::new();
    for body in body_variants(k.body()) {
        if let Ok(nk) = rebuild(k, body) {
            out.push(nk);
        }
    }
    // Halve array extents (kept only when in-bounds accesses survive —
    // out-of-range candidates simply fail the caller's predicate).
    for (ai, a) in k.arrays().iter().enumerate() {
        for (di, &d) in a.dims.iter().enumerate() {
            if d >= 2 {
                let mut arrays = k.arrays().to_vec();
                arrays[ai].dims[di] = d / 2;
                if let Ok(nk) =
                    Kernel::new(k.name(), arrays, k.scalars().to_vec(), k.body().to_vec())
                {
                    out.push(nk);
                }
            }
        }
    }
    out
}

/// Rebuild `k` around a new body, dropping declarations the body no
/// longer references.
fn rebuild(k: &Kernel, body: Vec<Stmt>) -> defacto_ir::Result<Kernel> {
    let used = used_names(&body);
    let arrays = k
        .arrays()
        .iter()
        .filter(|a| used.contains(a.name.as_str()))
        .cloned()
        .collect();
    let scalars = k
        .scalars()
        .iter()
        .filter(|s| used.contains(s.name.as_str()))
        .cloned()
        .collect();
    Kernel::new(k.name(), arrays, scalars, body)
}

fn used_names(body: &[Stmt]) -> BTreeSet<String> {
    let mut used = BTreeSet::new();
    collect_stmts(body, &mut used);
    used
}

fn collect_stmts(stmts: &[Stmt], used: &mut BTreeSet<String>) {
    for s in stmts {
        match s {
            Stmt::Assign { lhs, rhs } => {
                match lhs {
                    LValue::Scalar(n) => {
                        used.insert(n.clone());
                    }
                    LValue::Array(a) => {
                        used.insert(a.array.clone());
                    }
                }
                collect_expr(rhs, used);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                collect_expr(cond, used);
                collect_stmts(then_body, used);
                collect_stmts(else_body, used);
            }
            Stmt::For(l) => collect_stmts(&l.body, used),
            Stmt::Rotate(regs) => {
                for r in regs {
                    used.insert(r.clone());
                }
            }
        }
    }
}

fn collect_expr(e: &Expr, used: &mut BTreeSet<String>) {
    match e {
        Expr::Int(_) => {}
        Expr::Scalar(n) => {
            used.insert(n.clone());
        }
        Expr::Load(a) => {
            used.insert(a.array.clone());
        }
        Expr::Unary(_, a) => collect_expr(a, used),
        Expr::Binary(_, a, b) => {
            collect_expr(a, used);
            collect_expr(b, used);
        }
        Expr::Select(c, a, b) => {
            collect_expr(c, used);
            collect_expr(a, used);
            collect_expr(b, used);
        }
    }
}

/// Every one-edit variant of a statement list.
fn body_variants(stmts: &[Stmt]) -> Vec<Vec<Stmt>> {
    let mut out = Vec::new();
    for i in 0..stmts.len() {
        // Delete statement `i`.
        let mut v = stmts.to_vec();
        v.remove(i);
        out.push(v);
        match &stmts[i] {
            Stmt::For(l) => {
                // Splice the loop body over the loop.
                let mut v = stmts.to_vec();
                v.splice(i..=i, l.body.clone());
                out.push(v);
                // Halve the trip count.
                let trips = l.trip_count();
                if trips >= 2 {
                    let mut nl = l.clone();
                    nl.upper = nl.lower + (trips / 2) * nl.step;
                    let mut v = stmts.to_vec();
                    v[i] = Stmt::For(nl);
                    out.push(v);
                }
                // Recurse into the body.
                for b in body_variants(&l.body) {
                    let mut nl = l.clone();
                    nl.body = b;
                    let mut v = stmts.to_vec();
                    v[i] = Stmt::For(nl);
                    out.push(v);
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                // Collapse to one branch.
                for branch in [then_body, else_body] {
                    if !branch.is_empty() {
                        let mut v = stmts.to_vec();
                        v.splice(i..=i, branch.clone());
                        out.push(v);
                    }
                }
                // Recurse into each branch.
                for b in body_variants(then_body) {
                    let mut v = stmts.to_vec();
                    v[i] = Stmt::If {
                        cond: cond.clone(),
                        then_body: b,
                        else_body: else_body.clone(),
                    };
                    out.push(v);
                }
                for b in body_variants(else_body) {
                    let mut v = stmts.to_vec();
                    v[i] = Stmt::If {
                        cond: cond.clone(),
                        then_body: then_body.clone(),
                        else_body: b,
                    };
                    out.push(v);
                }
            }
            Stmt::Assign { lhs, rhs } => {
                for r in expr_variants(rhs) {
                    let mut v = stmts.to_vec();
                    v[i] = Stmt::Assign {
                        lhs: lhs.clone(),
                        rhs: r,
                    };
                    out.push(v);
                }
            }
            Stmt::Rotate(_) => {}
        }
    }
    out
}

/// Reductions of one expression: a literal, or any operand pulled up.
fn expr_variants(e: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    match e {
        Expr::Unary(_, a) => out.push((**a).clone()),
        Expr::Binary(_, a, b) => {
            out.push((**a).clone());
            out.push((**b).clone());
        }
        Expr::Select(_, a, b) => {
            out.push((**a).clone());
            out.push((**b).clone());
        }
        _ => {}
    }
    if !matches!(e, Expr::Int(_)) {
        out.push(Expr::Int(1));
    }
    out
}

/// AST-free fallback: drop whole lines while the predicate holds.
fn line_shrink(source: &str, reproduces: impl Fn(&str) -> bool, max_steps: usize) -> String {
    let mut best: Vec<String> = source.lines().map(str::to_string).collect();
    let mut steps = 0usize;
    'outer: loop {
        for i in 0..best.len() {
            if steps >= max_steps {
                break 'outer;
            }
            let mut candidate = best.clone();
            candidate.remove(i);
            let text = candidate.join("\n");
            steps += 1;
            if reproduces(&text) {
                best = candidate;
                continue 'outer;
            }
        }
        break;
    }
    best.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_the_failing_statement() {
        // Predicate: "still contains a division by an array element" —
        // a stand-in for a real oracle failure tied to one statement.
        let src = "kernel k {
           in A: i32[8];
           in B: i32[8];
           out C: i32[8];
           out D: i32[8];
           for i in 0..8 {
             C[i] = A[i] + B[i];
             D[i] = A[i] / B[i];
           }
         }";
        let reproduces = |s: &str| s.contains('/');
        let small = shrink(src, reproduces, 500);
        assert!(small.contains('/'), "shrunk away the failure:\n{small}");
        assert!(small.len() < src.len());
        assert!(
            !small.contains("C[") || !small.contains("B["),
            "expected the unrelated statement or operand to be removed:\n{small}"
        );
        // The result must itself be a parseable kernel.
        defacto_ir::parse_kernel(&small).unwrap();
    }

    #[test]
    fn shrinking_prunes_unused_declarations() {
        let src = "kernel k {
           in A: i32[4];
           in B: i32[4];
           out C: i32[4];
           for i in 0..4 {
             C[i] = A[i];
             C[i] = C[i] + B[i];
           }
         }";
        // Failure depends only on `A`.
        let reproduces = |s: &str| s.contains("A[");
        let small = shrink(src, reproduces, 500);
        assert!(!small.contains("in B"), "B should be pruned:\n{small}");
        defacto_ir::parse_kernel(&small).unwrap();
    }

    #[test]
    fn unparseable_sources_fall_back_to_line_deletion() {
        let src = "kernel k {\n  in A: i32[4]\n  !!! not a kernel !!!\n  junk\n}";
        let reproduces = |s: &str| s.contains("!!!");
        let small = shrink(src, reproduces, 200);
        assert!(small.contains("!!!"));
        assert!(small.len() < src.len());
    }

    #[test]
    fn trip_counts_and_extents_shrink() {
        let src = "kernel k {
           in A: i32[64];
           out B: i32[64];
           for i in 0..64 {
             B[i] = A[i];
           }
         }";
        // Failure reproduces whenever the kernel still has a loop.
        let reproduces = |s: &str| s.contains("for ");
        let small = shrink(src, reproduces, 2000);
        let k = defacto_ir::parse_kernel(&small).unwrap();
        let nest = k.perfect_nest().unwrap();
        assert!(nest.loops()[0].trip_count() <= 2, "trips: {small}");
    }
}
