//! Grammar-based kernel generation.
//!
//! Each `(seed, index)` pair deterministically produces one kernel-DSL
//! source string. The grammar is biased toward the shapes the rest of the
//! system cares about: perfect affine nests of depth 1–3, multi-array
//! reads and writes with reduction / stencil / guarded / scalar-chain /
//! rotate bodies, mixed bitwidths and optional value-range annotations.
//!
//! Roughly a quarter of the stream carries a deliberate *degenerate*
//! injection — reversed bounds, zero-trip loops, out-of-bounds accesses,
//! `while` control flow, duplicate or zero-extent or oversized
//! declarations, imperfect nests, negative steps. These kernels must be
//! **rejected with a typed diagnostic**, never crash a pass; the oracle
//! counts them separately so the campaign report shows both halves of the
//! contract.

use crate::rng::SplitMix64;

const VARS: [char; 3] = ['i', 'j', 'k'];
const TYPES: [&str; 6] = ["i8", "i16", "i32", "u8", "u16", "u32"];

/// The deliberate malformation (if any) injected into one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// A well-formed kernel that should survive every oracle.
    Clean,
    /// One loop iterates `hi..lo`: zero trips, must be DF010-rejected.
    ReversedBounds,
    /// One loop iterates `n..n`: zero trips, must be DF010-rejected.
    ZeroTrip,
    /// The innermost body is empty (declared arrays go unused).
    EmptyBody,
    /// One input array is declared one element short of its peak access.
    OobOffset,
    /// A `while` loop: unsupported control flow, syntax-rejected.
    WhileLoop,
    /// The first array is declared twice.
    DupDecl,
    /// One declaration exceeds the IR's element-count cap.
    HugeArray,
    /// An extra statement between two loop levels breaks the perfect nest.
    ImperfectNest,
    /// `step -1`: steps must be strictly positive.
    NegStep,
    /// A zero-extent array dimension.
    ZeroExtent,
    /// An extra never-referenced declaration (warning only — the kernel
    /// still flows through all six oracles).
    UnusedDecl,
}

impl Shape {
    fn pick(rng: &mut SplitMix64) -> Shape {
        if rng.chance(72) {
            return Shape::Clean;
        }
        *rng.pick(&[
            Shape::ReversedBounds,
            Shape::ZeroTrip,
            Shape::EmptyBody,
            Shape::OobOffset,
            Shape::WhileLoop,
            Shape::DupDecl,
            Shape::HugeArray,
            Shape::ImperfectNest,
            Shape::NegStep,
            Shape::ZeroExtent,
            Shape::UnusedDecl,
        ])
    }
}

struct LoopSpec {
    var: char,
    lower: i64,
    trips: i64,
    step: i64,
    reversed: bool,
    neg_step: bool,
}

impl LoopSpec {
    fn upper(&self) -> i64 {
        self.lower + self.trips * self.step
    }

    /// Largest value the induction variable takes (assuming `trips > 0`).
    fn max_index(&self) -> i64 {
        self.lower + (self.trips - 1).max(0) * self.step
    }

    fn header(&self) -> String {
        let (lo, hi) = if self.reversed {
            (self.upper(), self.lower)
        } else {
            (self.lower, self.upper())
        };
        let step = if self.neg_step {
            " step -1".to_string()
        } else if self.step != 1 {
            format!(" step {}", self.step)
        } else {
            String::new()
        };
        format!("for {} in {}..{}{}", self.var, lo, hi, step)
    }
}

/// One affine subscript: `Σ coeff·var + offset`.
#[derive(Clone)]
struct Sub {
    terms: Vec<(i64, char)>,
    off: i64,
}

impl Sub {
    fn var(v: char) -> Sub {
        Sub {
            terms: vec![(1, v)],
            off: 0,
        }
    }

    fn scaled(c: i64, v: char) -> Sub {
        Sub {
            terms: vec![(c, v)],
            off: 0,
        }
    }

    fn sum(vars: &[char]) -> Sub {
        Sub {
            terms: vars.iter().map(|&v| (1, v)).collect(),
            off: 0,
        }
    }

    fn konst(c: i64) -> Sub {
        Sub {
            terms: Vec::new(),
            off: c,
        }
    }

    fn plus(mut self, off: i64) -> Sub {
        self.off += off;
        self
    }

    fn render(&self) -> String {
        let mut parts: Vec<String> = self
            .terms
            .iter()
            .map(|(c, v)| {
                if *c == 1 {
                    v.to_string()
                } else {
                    format!("{c}*{v}")
                }
            })
            .collect();
        if self.off != 0 || parts.is_empty() {
            parts.push(self.off.to_string());
        }
        parts.join(" + ")
    }

    /// Peak subscript value over the iteration space (coefficients are
    /// non-negative by construction).
    fn max_val(&self, loops: &[LoopSpec]) -> i64 {
        let vars: i64 = self
            .terms
            .iter()
            .map(|(c, v)| {
                c * loops
                    .iter()
                    .find(|l| l.var == *v)
                    .map(LoopSpec::max_index)
                    .unwrap_or(0)
            })
            .sum();
        vars + self.off
    }
}

struct ArrayReg {
    name: String,
    ty: &'static str,
    kind: &'static str,
    dims: Vec<i64>,
    range: Option<(i64, i64)>,
}

/// Accumulates declarations while statements are generated, so every
/// array's extent covers the peak subscript of every access to it.
struct Builder<'r> {
    loops: Vec<LoopSpec>,
    arrays: Vec<ArrayReg>,
    scalars: Vec<(String, &'static str)>,
    rng: &'r mut SplitMix64,
}

impl Builder<'_> {
    fn fresh_type(&mut self) -> &'static str {
        TYPES[self.rng.below(TYPES.len() as u64) as usize]
    }

    /// Register (or widen) `name` and render the access text.
    fn access(&mut self, name: &str, kind: &'static str, subs: &[Sub]) -> String {
        let dims: Vec<i64> = subs.iter().map(|s| s.max_val(&self.loops) + 1).collect();
        match self.arrays.iter_mut().find(|a| a.name == name) {
            Some(a) => {
                for (have, want) in a.dims.iter_mut().zip(dims) {
                    *have = (*have).max(want);
                }
            }
            None => {
                let ty = self.fresh_type();
                let range = if kind == "in" && self.rng.chance(25) {
                    Some(if ty.starts_with('i') {
                        (-8, 7)
                    } else {
                        (0, 15)
                    })
                } else {
                    None
                };
                self.arrays.push(ArrayReg {
                    name: name.to_string(),
                    ty,
                    kind,
                    dims,
                    range,
                });
            }
        }
        let idx: String = subs.iter().map(|s| format!("[{}]", s.render())).collect();
        format!("{name}{idx}")
    }

    fn scalar(&mut self, name: &str) -> String {
        if !self.scalars.iter().any(|(n, _)| n == name) {
            let ty = self.fresh_type();
            self.scalars.push((name.to_string(), ty));
        }
        name.to_string()
    }

    /// Per-dimension subscripts for a dense rank-`depth` access, each var
    /// offset by `offs`.
    fn dense_subs(&self, offs: &[i64]) -> Vec<Sub> {
        self.loops
            .iter()
            .zip(offs)
            .map(|(l, &o)| Sub::var(l.var).plus(o))
            .collect()
    }
}

/// Generate the `index`-th kernel of the `seed` campaign.
pub fn generate_kernel(seed: u64, index: u64) -> String {
    let mut rng = SplitMix64::new(
        seed ^ index
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(17)
            .wrapping_add(0x5851_F42D_4C95_7F2D),
    );
    let shape = Shape::pick(&mut rng);
    generate_with_shape(&mut rng, index, shape)
}

/// Like [`generate_kernel`] but with the malformation fixed — used by the
/// generator's own tests and by campaign smoke checks.
pub fn generate_with_shape(rng: &mut SplitMix64, index: u64, mut shape: Shape) -> String {
    // Loop nest.
    let depth = match rng.below(10) {
        0..=2 => 1,
        3..=7 => 2,
        _ => 3,
    };
    if shape == Shape::ImperfectNest && depth < 2 {
        shape = Shape::Clean;
    }
    let mut loops: Vec<LoopSpec> = Vec::new();
    let mut product = 1i64;
    for (d, var) in VARS.iter().take(depth).enumerate() {
        let mut trips = *rng.pick(&[2i64, 3, 4, 5, 6, 8]);
        while product * trips > 96 {
            trips /= 2;
        }
        let trips = trips.max(2);
        product *= trips;
        let step = if rng.chance(15) { 2 } else { 1 };
        let lower = if rng.chance(25) {
            rng.range_i64(1, 2)
        } else {
            0
        };
        loops.push(LoopSpec {
            var: *var,
            lower,
            trips,
            step,
            reversed: false,
            neg_step: shape == Shape::NegStep && d == depth - 1,
        });
    }
    match shape {
        Shape::ReversedBounds => {
            let at = rng.below(depth as u64) as usize;
            loops[at].reversed = true;
        }
        Shape::ZeroTrip => {
            let at = rng.below(depth as u64) as usize;
            loops[at].trips = 0;
        }
        _ => {}
    }

    let mut b = Builder {
        loops,
        arrays: Vec::new(),
        scalars: Vec::new(),
        rng,
    };

    // Innermost statements.
    let mut inner: Vec<String> = Vec::new();
    if shape != Shape::EmptyBody {
        let nstmts = if b.rng.chance(35) { 2 } else { 1 };
        for s in 0..nstmts {
            let out = if s == 0 { "D" } else { "E" };
            let lines = gen_statement(&mut b, out);
            inner.extend(lines);
        }
    }
    if shape == Shape::WhileLoop {
        inner.push("while (i < 4) { }".to_string());
    }

    // Declaration fixups for the malformed shapes.
    match shape {
        Shape::OobOffset => {
            if let Some(a) = b.arrays.iter_mut().find(|a| a.kind == "in") {
                if a.dims[0] > 1 {
                    a.dims[0] -= 1;
                }
            }
        }
        Shape::HugeArray => b.arrays.push(ArrayReg {
            name: "H".into(),
            ty: "i8",
            kind: "in",
            dims: vec![1 << 25],
            range: None,
        }),
        Shape::ZeroExtent => b.arrays.push(ArrayReg {
            name: "Z".into(),
            ty: "i32",
            kind: "in",
            dims: vec![0],
            range: None,
        }),
        Shape::UnusedDecl => b.arrays.push(ArrayReg {
            name: "T".into(),
            ty: "i32",
            kind: "in",
            dims: vec![4],
            range: None,
        }),
        Shape::ImperfectNest => b.arrays.push(ArrayReg {
            name: "P".into(),
            ty: "i32",
            kind: "out",
            dims: vec![b.loops[0].max_index() + 1],
            range: None,
        }),
        _ => {}
    }

    // Assemble source text.
    let mut src = format!("kernel fz_{index} {{\n");
    for (n, a) in b.arrays.iter().enumerate() {
        let dims: String = a.dims.iter().map(|d| format!("[{d}]")).collect();
        let range = match a.range {
            Some((lo, hi)) => format!(" range {lo}..{hi}"),
            None => String::new(),
        };
        src.push_str(&format!(
            "  {} {}: {}{}{};\n",
            a.kind, a.name, a.ty, dims, range
        ));
        if shape == Shape::DupDecl && n == 0 {
            src.push_str(&format!(
                "  {} {}: {}{}{};\n",
                a.kind, a.name, a.ty, dims, range
            ));
        }
    }
    for (name, ty) in &b.scalars {
        src.push_str(&format!("  var {name}: {ty};\n"));
    }
    let depth = b.loops.len();
    for (level, l) in b.loops.iter().enumerate() {
        let pad = "  ".repeat(level + 1);
        src.push_str(&format!("{pad}{} {{\n", l.header()));
        if shape == Shape::ImperfectNest && level == 0 && depth >= 2 {
            // A sibling statement before the inner loop: imperfect nest.
            src.push_str(&format!("{pad}  P[{}] = 1;\n", b.loops[0].var));
        }
    }
    let body_pad = "  ".repeat(depth + 1);
    for line in &inner {
        for sub in line.split('\n') {
            src.push_str(&format!("{body_pad}{sub}\n"));
        }
    }
    for level in (0..depth).rev() {
        src.push_str(&format!("{}}}\n", "  ".repeat(level + 1)));
    }
    src.push_str("}\n");
    src
}

/// One innermost-body statement group writing to `out`.
fn gen_statement(b: &mut Builder<'_>, out: &str) -> Vec<String> {
    let depth = b.loops.len();
    let inner_var = b.loops[depth - 1].var;
    let all_vars: Vec<char> = b.loops.iter().map(|l| l.var).collect();
    let zero_offs = vec![0i64; depth];

    match b.rng.below(100) {
        // Reduction over the innermost loop(s), FIR/MM style.
        0..=29 => {
            let acc_subs = if depth >= 2 {
                b.loops[..depth - 1]
                    .iter()
                    .map(|l| Sub::var(l.var))
                    .collect::<Vec<_>>()
            } else {
                vec![Sub::konst(0)]
            };
            let acc = b.access(out, "inout", &acc_subs);
            let s = b.access("S", "in", &[Sub::sum(&all_vars)]);
            let c = b.access("C", "in", &[Sub::var(inner_var)]);
            vec![format!("{acc} = {acc} + {s} * {c};")]
        }
        // Pointwise map / stencil.
        30..=59 => {
            let dst = {
                let subs = b.dense_subs(&zero_offs);
                b.access(out, "out", &subs)
            };
            let mut offs = zero_offs.clone();
            offs[b.rng.below(depth as u64) as usize] += b.rng.range_i64(0, 2);
            let a0 = {
                let subs = b.dense_subs(&zero_offs);
                b.access("A", "in", &subs)
            };
            let a1 = {
                let subs = b.dense_subs(&offs);
                b.access("A", "in", &subs)
            };
            let expr = match b.rng.below(6) {
                0 => format!("{a0} + {a1}"),
                1 => format!("abs({a0} - {a1})"),
                2 => format!("({a0} + {a1}) / 2"),
                3 => format!("{a0} >> 1"),
                4 => format!("{a0} & 15"),
                _ => format!("{a0} > {a1} ? {a0} : {a1}"),
            };
            vec![format!("{dst} = {expr};")]
        }
        // Boundary-guarded write.
        60..=79 => {
            let inner = &b.loops[depth - 1];
            let mid = inner.lower + (inner.trips / 2).max(1) * inner.step;
            let dst = {
                let subs = b.dense_subs(&zero_offs);
                b.access(out, "out", &subs)
            };
            let a0 = {
                let subs = b.dense_subs(&zero_offs);
                b.access("A", "in", &subs)
            };
            let else_arm = if b.rng.chance(60) {
                format!(" else {{\n  {dst} = {a0} + 1;\n}}")
            } else {
                String::new()
            };
            vec![format!(
                "if ({inner_var} < {mid}) {{\n  {dst} = {a0};\n}}{else_arm}"
            )]
        }
        // Scalar chain through a declared variable.
        80..=91 => {
            let t = b.scalar("t");
            let a0 = {
                let subs = b.dense_subs(&zero_offs);
                b.access("A", "in", &subs)
            };
            let strided = {
                let sub = Sub::scaled(2, inner_var);
                b.access("C", "in", &[sub])
            };
            let dst = {
                let subs = b.dense_subs(&zero_offs);
                b.access(out, "out", &subs)
            };
            vec![
                format!("{t} = {a0} + {strided};"),
                format!("{dst} = {t} * 2;"),
            ]
        }
        // Rotating register pair.
        _ => {
            let r0 = b.scalar("r0");
            let r1 = b.scalar("r1");
            let a0 = {
                let subs = b.dense_subs(&zero_offs);
                b.access("A", "in", &subs)
            };
            let dst = {
                let subs = b.dense_subs(&zero_offs);
                b.access(out, "out", &subs)
            };
            vec![
                format!("{r0} = {a0};"),
                format!("rotate({r0}, {r1});"),
                format!("{dst} = {r0} + {r1};"),
            ]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate_kernel(7, 3), generate_kernel(7, 3));
        assert_ne!(generate_kernel(7, 3), generate_kernel(7, 4));
        assert_ne!(generate_kernel(7, 3), generate_kernel(8, 3));
    }

    #[test]
    fn clean_shapes_parse_and_lint_clean_or_warn() {
        let mut parsed = 0;
        for idx in 0..60u64 {
            let mut rng = SplitMix64::new(idx.wrapping_mul(0xA076_1D64_78BD_642F));
            let src = generate_with_shape(&mut rng, idx, Shape::Clean);
            let k = defacto_ir::parse_kernel(&src)
                .unwrap_or_else(|e| panic!("clean kernel must parse: {e}\n{src}"));
            let report = defacto_analysis::lint_kernel(&k);
            assert!(
                !report.has_errors(),
                "clean kernel must lint clean:\n{src}\n{:?}",
                report.diagnostics
            );
            parsed += 1;
        }
        assert_eq!(parsed, 60);
    }

    #[test]
    fn stream_mixes_clean_and_degenerate_kernels() {
        let (mut ok, mut bad) = (0, 0);
        for idx in 0..200u64 {
            let src = generate_kernel(11, idx);
            match defacto_ir::parse_kernel(&src) {
                Ok(k) if !defacto_analysis::lint_kernel(&k).has_errors() => ok += 1,
                _ => bad += 1,
            }
        }
        assert!(ok >= 100, "expected a mostly-clean stream, got {ok}/200");
        assert!(bad >= 10, "expected degenerate injections, got {bad}/200");
    }

    #[test]
    fn degenerate_shapes_are_rejected_not_accepted() {
        for (shape, idx) in [
            (Shape::ReversedBounds, 1u64),
            (Shape::ZeroTrip, 2),
            (Shape::WhileLoop, 3),
            (Shape::HugeArray, 4),
            (Shape::ZeroExtent, 5),
            (Shape::NegStep, 6),
        ] {
            let mut rng = SplitMix64::new(idx);
            let src = generate_with_shape(&mut rng, idx, shape);
            let rejected = match defacto_ir::parse_kernel(&src) {
                Err(_) => true,
                Ok(k) => defacto_analysis::lint_kernel(&k).has_errors(),
            };
            assert!(rejected, "{shape:?} should be rejected:\n{src}");
        }
    }
}
