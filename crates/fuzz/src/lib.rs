//! Differential kernel fuzzer for the DEFACTO-style toolchain.
//!
//! The design-space explorer rests on a chain of trust: the transformation
//! pipeline preserves kernel semantics, the per-pass IR verifier would
//! notice if it didn't, the multi-fidelity search selects exactly what an
//! exhaustive full-fidelity sweep would, and the search trace honors its
//! audit invariants at any worker count. This crate stress-tests the whole
//! chain with generated inputs rather than the handful of paper kernels:
//!
//! 1. [`grammar`] — a seeded generator producing kernel-DSL sources biased
//!    toward the shapes legality analysis and unroll-and-jam care about
//!    (nested affine loops, multi-array reads/writes, boundary
//!    conditionals, mixed bitwidths), with a deliberate fraction of
//!    degenerate injections that must be *rejected, not crash*.
//! 2. [`oracle`] — the six-way differential check per kernel × design
//!    point × device profile: interpreter semantics of original vs. fully
//!    transformed designs, per-pass verification, full-vs-multi fidelity
//!    agreement plus tier-0 band containment of the exact estimate, and
//!    clean deterministic search traces at 1 and 8 workers. Every stage
//!    runs under a panic guard: a panic is always a violation.
//! 3. [`shrink`] — greedy minimization of failures into small, parseable
//!    reproducers for `tests/fuzz_corpus/`.
//! 4. [`campaign`] — the driver tying it together, exposed on the CLI as
//!    `defacto fuzz --seed N --count M`.

pub mod campaign;
pub mod grammar;
pub mod oracle;
pub mod rng;
pub mod shrink;

pub use campaign::{replay_source, run_campaign, CampaignConfig, FoundBug, FuzzReport};
pub use grammar::{generate_kernel, Shape};
pub use oracle::{check_case, CaseOutcome, Oracle, OracleConfig, Profile, Violation};
pub use rng::SplitMix64;
pub use shrink::shrink;
