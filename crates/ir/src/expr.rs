//! Expressions of the kernel language.

use crate::affine::AffineExpr;
use std::fmt;

/// A binary operator in the kernel language.
///
/// Comparison operators produce `0`/`1` integer values, mirroring C.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition `+`.
    Add,
    /// Subtraction `-`.
    Sub,
    /// Multiplication `*`.
    Mul,
    /// Integer division `/` (truncating, like C).
    Div,
    /// Remainder `%`.
    Rem,
    /// Left shift `<<`.
    Shl,
    /// Arithmetic right shift `>>`.
    Shr,
    /// Bitwise and `&`.
    And,
    /// Bitwise or `|`.
    Or,
    /// Bitwise xor `^`.
    Xor,
    /// Equality `==`.
    Eq,
    /// Inequality `!=`.
    Ne,
    /// Less than `<`.
    Lt,
    /// Less or equal `<=`.
    Le,
    /// Greater than `>`.
    Gt,
    /// Greater or equal `>=`.
    Ge,
}

impl BinOp {
    /// True for operators whose result is a boolean (0/1) flag.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// Apply the operator to two integer values with C semantics.
    ///
    /// Division or remainder by zero yields zero rather than trapping — a
    /// hardware datapath has no trap mechanism, and this keeps the reference
    /// interpreter total.
    pub fn apply(self, a: i64, b: i64) -> i64 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            BinOp::Rem => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            BinOp::Shl => a.wrapping_shl((b & 63) as u32),
            BinOp::Shr => a.wrapping_shr((b & 63) as u32),
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Eq => (a == b) as i64,
            BinOp::Ne => (a != b) as i64,
            BinOp::Lt => (a < b) as i64,
            BinOp::Le => (a <= b) as i64,
            BinOp::Gt => (a > b) as i64,
            BinOp::Ge => (a >= b) as i64,
        }
    }

    /// The operator's source token.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-`.
    Neg,
    /// Bitwise complement `~`.
    Not,
    /// Absolute value `abs(..)` — common in image kernels such as Sobel.
    Abs,
}

impl UnOp {
    /// Apply the operator to a value.
    pub fn apply(self, a: i64) -> i64 {
        match self {
            UnOp::Neg => a.wrapping_neg(),
            UnOp::Not => !a,
            UnOp::Abs => a.wrapping_abs(),
        }
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnOp::Neg => f.write_str("-"),
            UnOp::Not => f.write_str("~"),
            UnOp::Abs => f.write_str("abs"),
        }
    }
}

/// A reference to an element of a (possibly multi-dimensional) array, with
/// one affine subscript per dimension.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArrayAccess {
    /// Name of the array variable.
    pub array: String,
    /// One affine subscript per declared dimension.
    pub indices: Vec<AffineExpr>,
}

impl ArrayAccess {
    /// Construct an access to `array` with the given subscripts.
    pub fn new(array: impl Into<String>, indices: Vec<AffineExpr>) -> Self {
        ArrayAccess {
            array: array.into(),
            indices,
        }
    }

    /// The combined coefficient vector across all dimensions, restricted to
    /// `vars`. Two accesses to the same array are *uniformly generated* iff
    /// these vectors are equal.
    pub fn coeff_signature(&self, vars: &[&str]) -> Vec<Vec<i64>> {
        self.indices.iter().map(|e| e.coeff_vector(vars)).collect()
    }

    /// The per-dimension constant terms.
    pub fn constant_offsets(&self) -> Vec<i64> {
        self.indices.iter().map(|e| e.constant_term()).collect()
    }

    /// True if every subscript is invariant with respect to `var`.
    pub fn is_invariant_in(&self, var: &str) -> bool {
        self.indices.iter().all(|e| e.is_invariant_in(var))
    }

    /// Apply `f` to every subscript, producing a rewritten access.
    pub fn map_indices(&self, mut f: impl FnMut(&AffineExpr) -> AffineExpr) -> ArrayAccess {
        ArrayAccess {
            array: self.array.clone(),
            indices: self.indices.iter().map(&mut f).collect(),
        }
    }
}

impl fmt::Display for ArrayAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.array)?;
        for idx in &self.indices {
            write!(f, "[{idx}]")?;
        }
        Ok(())
    }
}

/// An expression of the kernel language.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// An integer literal.
    Int(i64),
    /// A read of a scalar variable (a declared scalar, a compiler temporary,
    /// or a loop index variable).
    Scalar(String),
    /// A read of an array element.
    Load(ArrayAccess),
    /// A unary operation.
    Unary(UnOp, Box<Expr>),
    /// A binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `cond ? then : else`, evaluated without short-circuiting (hardware
    /// evaluates both arms and selects).
    Select(Box<Expr>, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Shorthand for a binary node.
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Binary(op, Box::new(a), Box::new(b))
    }

    /// Shorthand for `a + b`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Add, a, b)
    }

    /// Shorthand for `a * b`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Mul, a, b)
    }

    /// Shorthand for a scalar read.
    pub fn scalar(name: impl Into<String>) -> Expr {
        Expr::Scalar(name.into())
    }

    /// Shorthand for a 1-D array load with the given affine subscript.
    pub fn load1(array: impl Into<String>, idx: AffineExpr) -> Expr {
        Expr::Load(ArrayAccess::new(array, vec![idx]))
    }

    /// Collect every [`ArrayAccess`] read inside the expression, in
    /// evaluation order.
    pub fn loads(&self) -> Vec<&ArrayAccess> {
        let mut out = Vec::new();
        self.visit_loads(&mut |a| out.push(a));
        out
    }

    fn visit_loads<'a>(&'a self, f: &mut impl FnMut(&'a ArrayAccess)) {
        match self {
            Expr::Int(_) | Expr::Scalar(_) => {}
            Expr::Load(a) => f(a),
            Expr::Unary(_, e) => e.visit_loads(f),
            Expr::Binary(_, a, b) => {
                a.visit_loads(f);
                b.visit_loads(f);
            }
            Expr::Select(c, t, e) => {
                c.visit_loads(f);
                t.visit_loads(f);
                e.visit_loads(f);
            }
        }
    }

    /// Names of scalar variables read by the expression (loop indices
    /// included), in first-occurrence order without duplicates.
    pub fn scalar_reads(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        self.visit_scalars(&mut |s| {
            if !out.contains(&s) {
                out.push(s);
            }
        });
        out
    }

    fn visit_scalars<'a>(&'a self, f: &mut impl FnMut(&'a str)) {
        match self {
            Expr::Int(_) => {}
            Expr::Scalar(s) => f(s),
            Expr::Load(a) => {
                for idx in &a.indices {
                    for v in idx.vars() {
                        f(v);
                    }
                }
            }
            Expr::Unary(_, e) => e.visit_scalars(f),
            Expr::Binary(_, a, b) => {
                a.visit_scalars(f);
                b.visit_scalars(f);
            }
            Expr::Select(c, t, e) => {
                c.visit_scalars(f);
                t.visit_scalars(f);
                e.visit_scalars(f);
            }
        }
    }

    /// Rewrite every array access with `f`, leaving everything else intact.
    pub fn map_accesses(&self, f: &mut impl FnMut(&ArrayAccess) -> ArrayAccess) -> Expr {
        match self {
            Expr::Int(v) => Expr::Int(*v),
            Expr::Scalar(s) => Expr::Scalar(s.clone()),
            Expr::Load(a) => Expr::Load(f(a)),
            Expr::Unary(op, e) => Expr::Unary(*op, Box::new(e.map_accesses(f))),
            Expr::Binary(op, a, b) => Expr::Binary(
                *op,
                Box::new(a.map_accesses(f)),
                Box::new(b.map_accesses(f)),
            ),
            Expr::Select(c, t, e) => Expr::Select(
                Box::new(c.map_accesses(f)),
                Box::new(t.map_accesses(f)),
                Box::new(e.map_accesses(f)),
            ),
        }
    }

    /// Replace loads for which `f` returns `Some(replacement)`; other loads
    /// are kept. Used by scalar replacement to swap memory reads for
    /// register reads.
    pub fn replace_loads(&self, f: &mut impl FnMut(&ArrayAccess) -> Option<Expr>) -> Expr {
        match self {
            Expr::Int(v) => Expr::Int(*v),
            Expr::Scalar(s) => Expr::Scalar(s.clone()),
            Expr::Load(a) => match f(a) {
                Some(e) => e,
                None => Expr::Load(a.clone()),
            },
            Expr::Unary(op, e) => Expr::Unary(*op, Box::new(e.replace_loads(f))),
            Expr::Binary(op, a, b) => Expr::Binary(
                *op,
                Box::new(a.replace_loads(f)),
                Box::new(b.replace_loads(f)),
            ),
            Expr::Select(c, t, e) => Expr::Select(
                Box::new(c.replace_loads(f)),
                Box::new(t.replace_loads(f)),
                Box::new(e.replace_loads(f)),
            ),
        }
    }

    /// Number of arithmetic/logic operation nodes in the expression tree
    /// (loads, scalars and literals excluded).
    pub fn op_count(&self) -> usize {
        match self {
            Expr::Int(_) | Expr::Scalar(_) | Expr::Load(_) => 0,
            Expr::Unary(_, e) => 1 + e.op_count(),
            Expr::Binary(_, a, b) => 1 + a.op_count() + b.op_count(),
            Expr::Select(c, t, e) => 1 + c.op_count() + t.op_count() + e.op_count(),
        }
    }
}

impl From<i64> for Expr {
    fn from(v: i64) -> Self {
        Expr::Int(v)
    }
}

impl From<AffineExpr> for Expr {
    /// Lower an affine expression into explicit IR arithmetic
    /// (`a*i + b` becomes `Mul`/`Add` nodes over scalar reads).
    fn from(a: AffineExpr) -> Self {
        let mut acc: Option<Expr> = None;
        for (v, c) in a.terms() {
            let term = if c == 1 {
                Expr::scalar(v)
            } else {
                Expr::mul(Expr::Int(c), Expr::scalar(v))
            };
            acc = Some(match acc {
                None => term,
                Some(e) => Expr::add(e, term),
            });
        }
        let k = a.constant_term();
        match acc {
            None => Expr::Int(k),
            Some(e) if k == 0 => e,
            Some(e) => Expr::add(e, Expr::Int(k)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::AffineExpr;

    #[test]
    fn binop_apply_matches_c_semantics() {
        assert_eq!(BinOp::Add.apply(2, 3), 5);
        assert_eq!(BinOp::Sub.apply(2, 3), -1);
        assert_eq!(BinOp::Mul.apply(-4, 3), -12);
        assert_eq!(BinOp::Div.apply(7, 2), 3);
        assert_eq!(BinOp::Div.apply(-7, 2), -3);
        assert_eq!(BinOp::Div.apply(7, 0), 0);
        assert_eq!(BinOp::Rem.apply(7, 3), 1);
        assert_eq!(BinOp::Rem.apply(7, 0), 0);
        assert_eq!(BinOp::Shl.apply(1, 4), 16);
        assert_eq!(BinOp::Shr.apply(-16, 2), -4);
        assert_eq!(BinOp::Eq.apply(3, 3), 1);
        assert_eq!(BinOp::Lt.apply(3, 3), 0);
        assert_eq!(BinOp::Ge.apply(3, 3), 1);
    }

    #[test]
    fn unop_apply() {
        assert_eq!(UnOp::Neg.apply(5), -5);
        assert_eq!(UnOp::Not.apply(0), -1);
        assert_eq!(UnOp::Abs.apply(-9), 9);
    }

    #[test]
    fn comparison_classification() {
        assert!(BinOp::Eq.is_comparison());
        assert!(!BinOp::Add.is_comparison());
    }

    #[test]
    fn loads_are_collected_in_order() {
        let e = Expr::add(
            Expr::load1("A", AffineExpr::var("i")),
            Expr::mul(
                Expr::load1("B", AffineExpr::var("j")),
                Expr::load1("A", AffineExpr::var("i") + AffineExpr::constant(1)),
            ),
        );
        let loads = e.loads();
        assert_eq!(loads.len(), 3);
        assert_eq!(loads[0].array, "A");
        assert_eq!(loads[1].array, "B");
        assert_eq!(loads[2].array, "A");
    }

    #[test]
    fn scalar_reads_dedupe() {
        let e = Expr::add(
            Expr::scalar("x"),
            Expr::add(Expr::scalar("x"), Expr::load1("A", AffineExpr::var("i"))),
        );
        assert_eq!(e.scalar_reads(), vec!["x", "i"]);
    }

    #[test]
    fn replace_loads_substitutes_registers() {
        let e = Expr::add(
            Expr::load1("A", AffineExpr::var("i")),
            Expr::load1("B", AffineExpr::var("i")),
        );
        let out = e.replace_loads(&mut |a| {
            if a.array == "A" {
                Some(Expr::scalar("a_reg"))
            } else {
                None
            }
        });
        assert_eq!(
            out,
            Expr::add(
                Expr::scalar("a_reg"),
                Expr::load1("B", AffineExpr::var("i"))
            )
        );
    }

    #[test]
    fn op_count_counts_interior_nodes() {
        let e = Expr::add(
            Expr::mul(Expr::Int(2), Expr::scalar("x")),
            Expr::Unary(UnOp::Abs, Box::new(Expr::scalar("y"))),
        );
        assert_eq!(e.op_count(), 3);
    }

    #[test]
    fn affine_lowering() {
        let a = AffineExpr::from_terms([("i", 2), ("j", 1)], -3);
        let e: Expr = a.clone().into();
        // Evaluating the lowered tree must agree with the affine evaluation.
        fn eval(e: &Expr, i: i64, j: i64) -> i64 {
            match e {
                Expr::Int(v) => *v,
                Expr::Scalar(s) => match s.as_str() {
                    "i" => i,
                    "j" => j,
                    _ => unreachable!(),
                },
                Expr::Binary(op, a, b) => op.apply(eval(a, i, j), eval(b, i, j)),
                _ => unreachable!(),
            }
        }
        for i in -3..3 {
            for j in -3..3 {
                let want = a.eval(|v| Some(if v == "i" { i } else { j }));
                assert_eq!(eval(&e, i, j), want);
            }
        }
    }

    #[test]
    fn access_display() {
        let a = ArrayAccess::new(
            "A",
            vec![
                AffineExpr::var("i"),
                AffineExpr::var("j") + AffineExpr::constant(1),
            ],
        );
        assert_eq!(a.to_string(), "A[i][j + 1]");
    }
}
