//! Affine loop-nest intermediate representation for DEFACTO-style hardware
//! design space exploration.
//!
//! This crate provides the input language of the system described in
//! *"A Compiler Approach to Fast Hardware Design Space Exploration in
//! FPGA-based Systems"* (So, Hall, Diniz — PLDI 2002): loop nests over
//! multi-dimensional array variables where every subscript expression is an
//! affine function of the loop index variables, loop bounds are constant,
//! and control flow is limited to structured `if`.
//!
//! The crate contains:
//!
//! - the AST ([`Kernel`], [`Stmt`], [`Expr`], [`Loop`]) and the affine
//!   subscript representation ([`AffineExpr`]);
//! - a small C-like textual front end ([`parse_kernel`]);
//! - a fluent [`builder`] API for constructing kernels programmatically;
//! - a pretty printer that round-trips the DSL;
//! - a reference [`interp`] interpreter used as a semantics oracle by the
//!   transformation crates (a kernel and its transformed version must
//!   produce identical output arrays).
//!
//! # Example
//!
//! ```
//! use defacto_ir::parse_kernel;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let fir = parse_kernel(
//!     "kernel fir {
//!        in  S: i32[96];
//!        in  C: i32[32];
//!        out D: i32[64];
//!        for j in 0..64 {
//!          for i in 0..32 {
//!            D[j] = D[j] + S[i + j] * C[i];
//!          }
//!        }
//!      }",
//! )?;
//! assert_eq!(fir.name(), "fir");
//! assert_eq!(fir.perfect_nest().unwrap().depth(), 2);
//! # Ok(())
//! # }
//! ```

pub mod affine;
pub mod builder;
pub mod canon;
pub mod decl;
pub mod diag;
pub mod error;
pub mod expr;
pub mod interp;
pub mod kernel;
pub mod parser;
pub mod pretty;
pub mod span;
pub mod stmt;
pub mod types;
pub mod verify;
pub mod visit;

pub use affine::AffineExpr;
pub use builder::{BodyBuilder, KernelBuilder};
pub use canon::{canonicalize, content_hash, CanonicalKernel, ContentHash, SubtreeHash};
pub use decl::{ArrayDecl, ArrayKind, ScalarDecl};
pub use diag::{Diagnostic, Severity};
pub use error::{IrError, Result};
pub use expr::{ArrayAccess, BinOp, Expr, UnOp};
pub use interp::{run_with_inputs, ExecStats, Interpreter, Workspace};
pub use kernel::{Kernel, NestView};
pub use parser::{parse_kernel, parse_kernel_with_spans};
pub use span::{Span, SpanMap};
pub use stmt::{LValue, Loop, Stmt};
pub use types::ScalarType;
pub use verify::verify;
