//! Error types shared across the IR crate.

use crate::span::Span;
use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, IrError>;

/// Errors raised while parsing, validating, or interpreting kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// A lexical or syntactic error in the kernel DSL.
    Parse {
        /// 1-based line of the offending token.
        line: usize,
        /// 1-based column of the offending token.
        col: usize,
        /// Human-readable description.
        msg: String,
    },
    /// A subscript expression was not affine in the loop index variables.
    NonAffine {
        /// The offending expression, pretty-printed.
        expr: String,
        /// Where the subscript appears in the source.
        span: Span,
    },
    /// A name was referenced but never declared.
    Undeclared(String),
    /// A name was declared more than once.
    Redeclared(String),
    /// An array was accessed with the wrong number of subscripts.
    DimensionMismatch {
        /// The array name.
        array: String,
        /// Number of dimensions in the declaration.
        declared: usize,
        /// Number of subscripts at the access site.
        used: usize,
    },
    /// An array access evaluated to an index outside the declared extent.
    OutOfBounds {
        /// The array name.
        array: String,
        /// The flattened element index that was requested.
        index: i64,
        /// Number of elements in the array.
        len: usize,
    },
    /// A loop was malformed (zero/negative step, or bounds out of order).
    MalformedLoop(String),
    /// Any other structural validation failure.
    Invalid(String),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::Parse { line, col, msg } => {
                write!(f, "parse error at {line}:{col}: {msg}")
            }
            IrError::NonAffine { expr, .. } => {
                write!(f, "subscript expression is not affine: {expr}")
            }
            IrError::Undeclared(n) => write!(f, "use of undeclared name `{n}`"),
            IrError::Redeclared(n) => write!(f, "name `{n}` declared more than once"),
            IrError::DimensionMismatch {
                array,
                declared,
                used,
            } => write!(
                f,
                "array `{array}` has {declared} dimension(s) but was accessed with {used}"
            ),
            IrError::OutOfBounds { array, index, len } => write!(
                f,
                "access to `{array}` out of bounds: element {index} of {len}"
            ),
            IrError::MalformedLoop(m) => write!(f, "malformed loop: {m}"),
            IrError::Invalid(m) => write!(f, "invalid kernel: {m}"),
        }
    }
}

impl std::error::Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            IrError::Parse {
                line: 1,
                col: 2,
                msg: "unexpected token".into(),
            },
            IrError::NonAffine {
                expr: "i*i".into(),
                span: Span::default(),
            },
            IrError::Undeclared("x".into()),
            IrError::Redeclared("x".into()),
            IrError::DimensionMismatch {
                array: "A".into(),
                declared: 2,
                used: 1,
            },
            IrError::OutOfBounds {
                array: "A".into(),
                index: 99,
                len: 10,
            },
            IrError::MalformedLoop("step 0".into()),
            IrError::Invalid("empty body".into()),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IrError>();
    }
}
