//! Rewriting helpers over statement trees.
//!
//! The transformation crates repeatedly need "apply this access rewrite /
//! variable substitution everywhere in a body"; these helpers centralize
//! the recursion so each transformation stays focused on its own logic.

use crate::expr::{ArrayAccess, Expr};
use crate::stmt::{LValue, Loop, Stmt};

/// Rewrite every array access (reads *and* writes) in `stmts` with `f`.
pub fn map_accesses_stmts(
    stmts: &[Stmt],
    f: &mut impl FnMut(&ArrayAccess) -> ArrayAccess,
) -> Vec<Stmt> {
    stmts.iter().map(|s| map_accesses_stmt(s, f)).collect()
}

fn map_accesses_stmt(s: &Stmt, f: &mut impl FnMut(&ArrayAccess) -> ArrayAccess) -> Stmt {
    match s {
        Stmt::Assign { lhs, rhs } => Stmt::Assign {
            lhs: match lhs {
                LValue::Scalar(n) => LValue::Scalar(n.clone()),
                LValue::Array(a) => LValue::Array(f(a)),
            },
            rhs: rhs.map_accesses(f),
        },
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => Stmt::If {
            cond: cond.map_accesses(f),
            then_body: map_accesses_stmts(then_body, f),
            else_body: map_accesses_stmts(else_body, f),
        },
        Stmt::For(l) => Stmt::For(Loop {
            var: l.var.clone(),
            lower: l.lower,
            upper: l.upper,
            step: l.step,
            body: map_accesses_stmts(&l.body, f),
        }),
        Stmt::Rotate(r) => Stmt::Rotate(r.clone()),
    }
}

/// Substitute loop variable `var := var + delta` in every affine subscript
/// of `stmts`. This is the core rewrite of unroll-and-jam: the `k`-th
/// unrolled copy of a body offsets the unrolled loop's variable by
/// `k * step`.
pub fn offset_var_stmts(stmts: &[Stmt], var: &str, delta: i64) -> Vec<Stmt> {
    let mut rewritten =
        map_accesses_stmts(stmts, &mut |a| a.map_indices(|e| e.offset_var(var, delta)));
    // Scalar reads of the loop variable itself (rare — only when the index
    // feeds non-subscript arithmetic) must also be offset.
    rewritten = rewritten
        .iter()
        .map(|s| {
            map_scalar_reads_stmt(s, &mut |n| {
                if n == var {
                    Some(Expr::add(Expr::scalar(var), Expr::Int(delta)))
                } else {
                    None
                }
            })
        })
        .collect();
    rewritten
}

/// [`offset_var_stmts`] for several variables in one pair of traversals
/// instead of one pair per variable. Zero deltas are skipped, so the
/// result is bit-identical to chaining `offset_var_stmts` over the
/// non-zero pairs in any order (subscript offsets commute on the constant
/// term; scalar-read rewrites touch disjoint leaves).
pub fn offset_vars_stmts(stmts: &[Stmt], deltas: &[(&str, i64)]) -> Vec<Stmt> {
    let active: Vec<(&str, i64)> = deltas.iter().filter(|&&(_, d)| d != 0).copied().collect();
    if active.is_empty() {
        return stmts.to_vec();
    }
    let rewritten = map_accesses_stmts(stmts, &mut |a| a.map_indices(|e| e.offset_vars(&active)));
    rewritten
        .iter()
        .map(|s| {
            map_scalar_reads_stmt(s, &mut |n| {
                active
                    .iter()
                    .find(|&&(v, _)| v == n)
                    .map(|&(_, d)| Expr::add(Expr::scalar(n), Expr::Int(d)))
            })
        })
        .collect()
}

/// Rename a scalar/loop variable everywhere (subscripts and scalar reads).
pub fn rename_var_stmts(stmts: &[Stmt], from: &str, to: &str) -> Vec<Stmt> {
    let renamed = map_accesses_stmts(stmts, &mut |a| a.map_indices(|e| e.rename_var(from, to)));
    renamed
        .iter()
        .map(|s| {
            map_scalar_reads_stmt(s, &mut |n| {
                if n == from {
                    Some(Expr::scalar(to))
                } else {
                    None
                }
            })
        })
        .collect()
}

/// Replace scalar reads for which `f` returns a replacement expression.
/// Loop headers and assignment targets are untouched.
pub fn map_scalar_reads_stmt(s: &Stmt, f: &mut impl FnMut(&str) -> Option<Expr>) -> Stmt {
    match s {
        Stmt::Assign { lhs, rhs } => Stmt::Assign {
            lhs: lhs.clone(),
            rhs: map_scalar_reads_expr(rhs, f),
        },
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => Stmt::If {
            cond: map_scalar_reads_expr(cond, f),
            then_body: then_body
                .iter()
                .map(|s| map_scalar_reads_stmt(s, f))
                .collect(),
            else_body: else_body
                .iter()
                .map(|s| map_scalar_reads_stmt(s, f))
                .collect(),
        },
        Stmt::For(l) => Stmt::For(Loop {
            var: l.var.clone(),
            lower: l.lower,
            upper: l.upper,
            step: l.step,
            body: l.body.iter().map(|s| map_scalar_reads_stmt(s, f)).collect(),
        }),
        Stmt::Rotate(r) => Stmt::Rotate(r.clone()),
    }
}

fn map_scalar_reads_expr(e: &Expr, f: &mut impl FnMut(&str) -> Option<Expr>) -> Expr {
    match e {
        Expr::Int(v) => Expr::Int(*v),
        Expr::Scalar(n) => f(n).unwrap_or_else(|| Expr::Scalar(n.clone())),
        Expr::Load(a) => Expr::Load(a.clone()),
        Expr::Unary(op, inner) => Expr::Unary(*op, Box::new(map_scalar_reads_expr(inner, f))),
        Expr::Binary(op, a, b) => Expr::Binary(
            *op,
            Box::new(map_scalar_reads_expr(a, f)),
            Box::new(map_scalar_reads_expr(b, f)),
        ),
        Expr::Select(c, t, el) => Expr::Select(
            Box::new(map_scalar_reads_expr(c, f)),
            Box::new(map_scalar_reads_expr(t, f)),
            Box::new(map_scalar_reads_expr(el, f)),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::AffineExpr;
    use crate::expr::BinOp;

    fn body() -> Vec<Stmt> {
        vec![Stmt::assign(
            LValue::Array(ArrayAccess::new("D", vec![AffineExpr::var("j")])),
            Expr::add(
                Expr::load1("S", AffineExpr::var("i") + AffineExpr::var("j")),
                Expr::scalar("i"),
            ),
        )]
    }

    #[test]
    fn offset_rewrites_subscripts_and_scalar_reads() {
        let out = offset_var_stmts(&body(), "i", 2);
        match &out[0] {
            Stmt::Assign { lhs, rhs } => {
                // D[j] unchanged (invariant in i).
                assert_eq!(lhs.as_array().unwrap().indices[0], AffineExpr::var("j"));
                // S[i+j] -> S[i+j+2]
                let loads = rhs.loads();
                assert_eq!(
                    loads[0].indices[0],
                    AffineExpr::var("i") + AffineExpr::var("j") + AffineExpr::constant(2)
                );
                // scalar read `i` -> `i + 2`
                match rhs {
                    Expr::Binary(BinOp::Add, _, b) => {
                        assert_eq!(**b, Expr::add(Expr::scalar("i"), Expr::Int(2)));
                    }
                    _ => panic!("unexpected shape"),
                }
            }
            _ => panic!("expected assignment"),
        }
    }

    #[test]
    fn rename_var() {
        let out = rename_var_stmts(&body(), "i", "ii");
        match &out[0] {
            Stmt::Assign { rhs, .. } => {
                let loads = rhs.loads();
                assert_eq!(loads[0].indices[0].coeff("ii"), 1);
                assert_eq!(loads[0].indices[0].coeff("i"), 0);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn offset_recurses_into_nested_loops_and_ifs() {
        let nest = vec![Stmt::For(Loop::new(
            "k",
            0,
            2,
            vec![Stmt::If {
                cond: Expr::bin(BinOp::Eq, Expr::scalar("k"), Expr::Int(0)),
                then_body: body(),
                else_body: vec![],
            }],
        ))];
        let out = offset_var_stmts(&nest, "i", 1);
        let accesses = crate::stmt::collect_accesses(&out);
        let s_access = accesses.iter().find(|(a, _)| a.array == "S").unwrap();
        assert_eq!(s_access.0.indices[0].constant_term(), 1);
    }
}
