//! Array and scalar declarations.

use crate::types::ScalarType;
use std::fmt;

/// How an array participates in the kernel's dataflow.
///
/// The distinction matters for the hardware mapping: `In` arrays live in
/// external memory and are only read, `Out` arrays are only written, and
/// `InOut` arrays are both. All of them occupy off-chip memory banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArrayKind {
    /// Read-only input.
    In,
    /// Write-only output.
    Out,
    /// Read and written.
    InOut,
}

impl fmt::Display for ArrayKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrayKind::In => f.write_str("in"),
            ArrayKind::Out => f.write_str("out"),
            ArrayKind::InOut => f.write_str("inout"),
        }
    }
}

/// Declaration of a (possibly multi-dimensional) array variable residing in
/// the FPGA board's external memory.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArrayDecl {
    /// Variable name.
    pub name: String,
    /// Element type.
    pub ty: ScalarType,
    /// Extent of each dimension (row-major layout).
    pub dims: Vec<usize>,
    /// Dataflow direction.
    pub kind: ArrayKind,
    /// Optional value-range annotation (`range lo..hi`, inclusive): the
    /// programmer's promise about element values, used by bit-width
    /// narrowing. Must lie within the element type's range.
    pub range: Option<(i64, i64)>,
}

impl ArrayDecl {
    /// Construct a declaration.
    pub fn new(name: impl Into<String>, ty: ScalarType, dims: Vec<usize>, kind: ArrayKind) -> Self {
        ArrayDecl {
            name: name.into(),
            ty,
            dims,
            kind,
            range: None,
        }
    }

    /// Attach a value-range annotation (inclusive bounds).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty or exceeds the element type.
    pub fn with_range(mut self, lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "empty range {lo}..{hi}");
        assert!(
            self.ty.wrap(lo) == lo && self.ty.wrap(hi) == hi,
            "range {lo}..{hi} exceeds {}",
            self.ty
        );
        self.range = Some((lo, hi));
        self
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// True when the array has zero elements (a degenerate declaration).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flatten per-dimension indices into a row-major element offset, or
    /// `None` when any index is out of range.
    pub fn flatten(&self, idx: &[i64]) -> Option<i64> {
        if idx.len() != self.dims.len() {
            return None;
        }
        let mut off: i64 = 0;
        for (i, (&v, &d)) in idx.iter().zip(&self.dims).enumerate() {
            if v < 0 || v >= d as i64 {
                return None;
            }
            let _ = i;
            off = off * d as i64 + v;
        }
        Some(off)
    }
}

impl fmt::Display for ArrayDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}: {}", self.kind, self.name, self.ty)?;
        for d in &self.dims {
            write!(f, "[{d}]")?;
        }
        if let Some((lo, hi)) = self.range {
            write!(f, " range {lo}..{hi}")?;
        }
        Ok(())
    }
}

/// Declaration of a scalar variable.
///
/// Source-level scalars are rare in the paper's domain; most scalars in
/// transformed code are compiler-introduced registers from scalar
/// replacement.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ScalarDecl {
    /// Variable name.
    pub name: String,
    /// Value type.
    pub ty: ScalarType,
    /// True for registers introduced by the compiler (they map to on-chip
    /// FPGA registers rather than programmer state).
    pub compiler_temp: bool,
}

impl ScalarDecl {
    /// Declare a source-level scalar.
    pub fn new(name: impl Into<String>, ty: ScalarType) -> Self {
        ScalarDecl {
            name: name.into(),
            ty,
            compiler_temp: false,
        }
    }

    /// Declare a compiler-introduced register.
    pub fn temp(name: impl Into<String>, ty: ScalarType) -> Self {
        ScalarDecl {
            name: name.into(),
            ty,
            compiler_temp: true,
        }
    }
}

impl fmt::Display for ScalarDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "var {}: {}", self.name, self.ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_row_major() {
        let a = ArrayDecl::new("A", ScalarType::I32, vec![4, 8], ArrayKind::In);
        assert_eq!(a.len(), 32);
        assert_eq!(a.flatten(&[0, 0]), Some(0));
        assert_eq!(a.flatten(&[1, 0]), Some(8));
        assert_eq!(a.flatten(&[3, 7]), Some(31));
        assert_eq!(a.flatten(&[4, 0]), None);
        assert_eq!(a.flatten(&[0, -1]), None);
        assert_eq!(a.flatten(&[0]), None);
    }

    #[test]
    fn display() {
        let a = ArrayDecl::new("S", ScalarType::I16, vec![96], ArrayKind::In);
        assert_eq!(a.to_string(), "in S: i16[96]");
        let r = ArrayDecl::new("S", ScalarType::I16, vec![96], ArrayKind::In).with_range(-100, 100);
        assert_eq!(r.to_string(), "in S: i16[96] range -100..100");
        let s = ScalarDecl::new("acc", ScalarType::I32);
        assert_eq!(s.to_string(), "var acc: i32");
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn range_outside_type_panics() {
        let _ = ArrayDecl::new("A", ScalarType::I8, vec![4], ArrayKind::In).with_range(-1, 1000);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn inverted_range_panics() {
        let _ = ArrayDecl::new("A", ScalarType::I32, vec![4], ArrayKind::In).with_range(5, 4);
    }

    #[test]
    fn empty_array() {
        let a = ArrayDecl::new("Z", ScalarType::I8, vec![0, 4], ArrayKind::Out);
        assert!(a.is_empty());
    }
}
