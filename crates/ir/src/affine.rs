//! Affine expressions over loop index variables.
//!
//! Every array subscript in the kernel language is an [`AffineExpr`]:
//! a linear combination `a1*i1 + a2*i2 + ... + an*in + b` of the loop
//! index variables with integer coefficients plus an integer constant.
//! Affine form is what makes exact dependence testing, uniformly generated
//! set classification, and data layout possible, and the parser rejects any
//! subscript that cannot be normalized into this shape.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// An affine (linear + constant) integer expression over named loop
/// variables.
///
/// Coefficients are stored sparsely; a variable absent from the map has
/// coefficient zero. The representation is canonical: zero coefficients are
/// never stored, so `==` is structural equality of the mathematical object.
///
/// ```
/// use defacto_ir::AffineExpr;
///
/// let e = AffineExpr::var("i") + AffineExpr::var("j") * 2 + AffineExpr::constant(3);
/// assert_eq!(e.coeff("i"), 1);
/// assert_eq!(e.coeff("j"), 2);
/// assert_eq!(e.constant_term(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct AffineExpr {
    coeffs: BTreeMap<String, i64>,
    constant: i64,
}

impl AffineExpr {
    /// The zero expression.
    pub fn new() -> Self {
        Self::default()
    }

    /// A constant expression `c`.
    pub fn constant(c: i64) -> Self {
        AffineExpr {
            coeffs: BTreeMap::new(),
            constant: c,
        }
    }

    /// The expression `1 * name`.
    pub fn var(name: impl Into<String>) -> Self {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(name.into(), 1);
        AffineExpr {
            coeffs,
            constant: 0,
        }
    }

    /// Build from explicit `(variable, coefficient)` terms plus a constant.
    ///
    /// Terms with the same variable are summed; zero terms are dropped.
    pub fn from_terms<I, S>(terms: I, constant: i64) -> Self
    where
        I: IntoIterator<Item = (S, i64)>,
        S: Into<String>,
    {
        let mut e = AffineExpr::constant(constant);
        for (v, c) in terms {
            e.add_term(v.into(), c);
        }
        e
    }

    /// Coefficient of `var` (zero if absent).
    pub fn coeff(&self, var: &str) -> i64 {
        self.coeffs.get(var).copied().unwrap_or(0)
    }

    /// The constant term `b`.
    pub fn constant_term(&self) -> i64 {
        self.constant
    }

    /// Iterate over `(variable, coefficient)` pairs with non-zero
    /// coefficients, in variable-name order.
    pub fn terms(&self) -> impl Iterator<Item = (&str, i64)> + '_ {
        self.coeffs.iter().map(|(v, c)| (v.as_str(), *c))
    }

    /// Names of variables with non-zero coefficient.
    pub fn vars(&self) -> impl Iterator<Item = &str> + '_ {
        self.coeffs.keys().map(String::as_str)
    }

    /// Number of variables with non-zero coefficient.
    pub fn num_vars(&self) -> usize {
        self.coeffs.len()
    }

    /// True if the expression is a constant (no variable terms).
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// True if `var` does not appear (coefficient zero) — i.e. the
    /// expression is invariant with respect to that loop.
    pub fn is_invariant_in(&self, var: &str) -> bool {
        self.coeff(var) == 0
    }

    /// The coefficient vector restricted to an ordered list of loop
    /// variables — the shape used to decide whether two references are
    /// *uniformly generated* (identical coefficient vectors).
    pub fn coeff_vector(&self, vars: &[&str]) -> Vec<i64> {
        vars.iter().map(|v| self.coeff(v)).collect()
    }

    /// Add `c * var` in place.
    pub fn add_term(&mut self, var: String, c: i64) {
        if c == 0 {
            return;
        }
        use std::collections::btree_map::Entry;
        match self.coeffs.entry(var) {
            Entry::Occupied(mut o) => {
                *o.get_mut() += c;
                if *o.get() == 0 {
                    o.remove();
                }
            }
            Entry::Vacant(v) => {
                v.insert(c);
            }
        }
    }

    /// Evaluate with a lookup for variable values.
    ///
    /// # Panics
    ///
    /// Panics if `lookup` returns `None` for a variable that appears in the
    /// expression; the interpreter guarantees all loop variables are bound.
    pub fn eval(&self, lookup: impl Fn(&str) -> Option<i64>) -> i64 {
        match self.try_eval(lookup) {
            Ok(v) => v,
            Err(v) => panic!("affine eval: unbound loop variable `{v}`"),
        }
    }

    /// Evaluate with a lookup for variable values, returning the name of
    /// the first unbound variable instead of panicking. Terms saturate at
    /// the `i64` range, so a pathological subscript degrades into an
    /// out-of-range index (caught downstream) rather than overflowing.
    ///
    /// # Errors
    ///
    /// Returns the first variable `lookup` cannot resolve.
    pub fn try_eval(&self, lookup: impl Fn(&str) -> Option<i64>) -> Result<i64, &str> {
        let mut acc = self.constant;
        for (v, c) in &self.coeffs {
            let val = lookup(v).ok_or(v.as_str())?;
            acc = acc.saturating_add(c.saturating_mul(val));
        }
        Ok(acc)
    }

    /// Substitute `var := replacement` (an arbitrary affine expression) and
    /// return the result. Used by loop normalization (`i := i' + lb`),
    /// unrolling (`i := i + k`), and tiling (`i := tile*T + i'`).
    ///
    /// ```
    /// use defacto_ir::AffineExpr;
    /// let e = AffineExpr::var("i") * 3 + AffineExpr::constant(1);
    /// let r = e.substitute("i", &(AffineExpr::var("i") + AffineExpr::constant(2)));
    /// assert_eq!(r.coeff("i"), 3);
    /// assert_eq!(r.constant_term(), 7);
    /// ```
    pub fn substitute(&self, var: &str, replacement: &AffineExpr) -> AffineExpr {
        let c = self.coeff(var);
        if c == 0 {
            return self.clone();
        }
        let mut out = self.clone();
        out.coeffs.remove(var);
        out + replacement.clone() * c
    }

    /// Offset the expression by substituting `var := var + delta`.
    ///
    /// This is the unroll-and-jam rewrite for the unrolled copies of a loop
    /// body.
    pub fn offset_var(&self, var: &str, delta: i64) -> AffineExpr {
        let mut out = self.clone();
        out.constant += self.coeff(var) * delta;
        out
    }

    /// Offset several variables at once: `var := var + delta` for every
    /// pair, in one clone. Equivalent to chaining
    /// [`AffineExpr::offset_var`] over the pairs (offsets only touch the
    /// constant term, so they commute).
    pub fn offset_vars(&self, deltas: &[(&str, i64)]) -> AffineExpr {
        let mut out = self.clone();
        for &(var, delta) in deltas {
            out.constant += self.coeff(var) * delta;
        }
        out
    }

    /// Rename a variable, keeping its coefficient.
    pub fn rename_var(&self, from: &str, to: &str) -> AffineExpr {
        match self.coeffs.get(from).copied() {
            None => self.clone(),
            Some(c) => {
                let mut out = self.clone();
                out.coeffs.remove(from);
                out.add_term(to.to_string(), c);
                out
            }
        }
    }

    /// The difference `self - other` if the two expressions are *uniformly
    /// generated* (identical coefficients on every variable); `None`
    /// otherwise. For uniformly generated pairs this difference is the
    /// constant dependence offset.
    pub fn constant_difference(&self, other: &AffineExpr) -> Option<i64> {
        if self.coeffs == other.coeffs {
            Some(self.constant - other.constant)
        } else {
            None
        }
    }
}

impl Add for AffineExpr {
    type Output = AffineExpr;

    fn add(self, rhs: AffineExpr) -> AffineExpr {
        let mut out = self;
        out.constant += rhs.constant;
        for (v, c) in rhs.coeffs {
            out.add_term(v, c);
        }
        out
    }
}

impl Sub for AffineExpr {
    type Output = AffineExpr;

    fn sub(self, rhs: AffineExpr) -> AffineExpr {
        self + (-rhs)
    }
}

impl Neg for AffineExpr {
    type Output = AffineExpr;

    fn neg(self) -> AffineExpr {
        self * -1
    }
}

impl Mul<i64> for AffineExpr {
    type Output = AffineExpr;

    fn mul(self, rhs: i64) -> AffineExpr {
        if rhs == 0 {
            return AffineExpr::new();
        }
        let mut out = self;
        out.constant *= rhs;
        for c in out.coeffs.values_mut() {
            *c *= rhs;
        }
        out
    }
}

impl From<i64> for AffineExpr {
    fn from(c: i64) -> Self {
        AffineExpr::constant(c)
    }
}

impl fmt::Display for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in &self.coeffs {
            if first {
                match *c {
                    1 => write!(f, "{v}")?,
                    -1 => write!(f, "-{v}")?,
                    c => write!(f, "{c}*{v}")?,
                }
                first = false;
            } else {
                match *c {
                    1 => write!(f, " + {v}")?,
                    -1 => write!(f, " - {v}")?,
                    c if c > 0 => write!(f, " + {c}*{v}")?,
                    c => write!(f, " - {}*{v}", -c)?,
                }
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0 {
            write!(f, " + {}", self.constant)?;
        } else if self.constant < 0 {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ij(a: i64, b: i64, c: i64) -> AffineExpr {
        AffineExpr::from_terms([("i", a), ("j", b)], c)
    }

    #[test]
    fn canonical_zero_coefficients_are_dropped() {
        let e = ij(1, 0, 0);
        assert_eq!(e.num_vars(), 1);
        let z = e.clone() - e;
        assert!(z.is_constant());
        assert_eq!(z, AffineExpr::constant(0));
    }

    #[test]
    #[allow(clippy::erasing_op)]
    fn arithmetic() {
        let e = ij(1, 2, 3);
        let g = ij(4, -2, 1);
        assert_eq!(e.clone() + g.clone(), ij(5, 0, 4));
        assert_eq!(e.clone() - g.clone(), ij(-3, 4, 2));
        assert_eq!(e.clone() * 3, ij(3, 6, 9));
        assert_eq!(e * 0, AffineExpr::constant(0));
        assert_eq!(-g, ij(-4, 2, -1));
    }

    #[test]
    fn eval_and_invariance() {
        let e = ij(2, 0, 5);
        let v = e.eval(|v| match v {
            "i" => Some(10),
            _ => None,
        });
        assert_eq!(v, 25);
        assert!(e.is_invariant_in("j"));
        assert!(!e.is_invariant_in("i"));
    }

    #[test]
    #[should_panic(expected = "unbound loop variable")]
    fn eval_unbound_panics() {
        AffineExpr::var("k").eval(|_| None);
    }

    #[test]
    fn substitution_and_offset() {
        // e = 3i + j + 1; i := 2t + 4  =>  6t + j + 13
        let e = ij(3, 1, 1);
        let r = e.substitute("i", &(AffineExpr::var("t") * 2 + AffineExpr::constant(4)));
        assert_eq!(r, AffineExpr::from_terms([("t", 6), ("j", 1)], 13));

        let o = ij(3, 1, 1).offset_var("i", 2);
        assert_eq!(o, ij(3, 1, 7));
        // Offsetting an invariant variable is a no-op.
        assert_eq!(ij(0, 1, 0).offset_var("i", 9), ij(0, 1, 0));
    }

    #[test]
    fn rename() {
        let e = ij(3, 1, 1);
        let r = e.rename_var("i", "ii");
        assert_eq!(r.coeff("ii"), 3);
        assert_eq!(r.coeff("i"), 0);
        assert_eq!(r.coeff("j"), 1);
    }

    #[test]
    fn uniformly_generated_difference() {
        let a = ij(1, 1, 2); // i + j + 2
        let b = ij(1, 1, 0); // i + j
        assert_eq!(a.constant_difference(&b), Some(2));
        let c = ij(1, 2, 0);
        assert_eq!(a.constant_difference(&c), None);
    }

    #[test]
    fn coeff_vector_ordering() {
        let e = ij(1, 2, 0);
        assert_eq!(e.coeff_vector(&["j", "i", "k"]), vec![2, 1, 0]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ij(1, 2, 3).to_string(), "i + 2*j + 3");
        assert_eq!(ij(-1, 0, -3).to_string(), "-i - 3");
        assert_eq!(AffineExpr::constant(0).to_string(), "0");
        assert_eq!(ij(0, -1, 0).to_string(), "-j");
    }
}
