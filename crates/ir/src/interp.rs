//! Reference interpreter.
//!
//! The interpreter executes a kernel over concrete array contents and is
//! the semantics oracle of the whole system: every transformation in
//! `defacto-xform` must leave the input/output behaviour of the kernel
//! unchanged, which the test suites check by running original and
//! transformed kernels on identical inputs and comparing the output
//! arrays.
//!
//! It also records an [`ExecStats`] memory-traffic profile (loads/stores
//! per array, operation counts), which the tests use to verify that scalar
//! replacement and redundant-write elimination actually remove memory
//! accesses.

use crate::decl::ArrayKind;
use crate::error::{IrError, Result};
use crate::expr::{ArrayAccess, Expr};
use crate::kernel::Kernel;
use crate::stmt::{LValue, Stmt};
use crate::types::ScalarType;
use std::collections::{BTreeMap, HashMap};

/// Concrete array storage for one kernel execution.
///
/// Values are held as `i64` and wrapped to the declared element type on
/// every store, mirroring a fixed-width hardware datapath.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workspace {
    arrays: BTreeMap<String, Vec<i64>>,
    types: BTreeMap<String, ScalarType>,
}

impl Workspace {
    /// Allocate zero-initialized storage for every array of `kernel`.
    pub fn for_kernel(kernel: &Kernel) -> Self {
        let mut arrays = BTreeMap::new();
        let mut types = BTreeMap::new();
        for a in kernel.arrays() {
            arrays.insert(a.name.clone(), vec![0; a.len()]);
            types.insert(a.name.clone(), a.ty);
        }
        Workspace { arrays, types }
    }

    /// Overwrite the contents of `name`.
    ///
    /// Values are wrapped to the array's element type.
    ///
    /// # Errors
    ///
    /// Fails if the array is undeclared or `data` has the wrong length.
    pub fn set_array(&mut self, name: &str, data: &[i64]) -> Result<()> {
        let ty = *self
            .types
            .get(name)
            .ok_or_else(|| IrError::Undeclared(name.to_string()))?;
        let slot = self
            .arrays
            .get_mut(name)
            .ok_or_else(|| IrError::Undeclared(name.to_string()))?;
        if slot.len() != data.len() {
            return Err(IrError::Invalid(format!(
                "array `{name}` holds {} elements but {} were supplied",
                slot.len(),
                data.len()
            )));
        }
        for (dst, &v) in slot.iter_mut().zip(data) {
            *dst = ty.wrap(v);
        }
        Ok(())
    }

    /// Read-only view of an array's contents.
    pub fn array(&self, name: &str) -> Option<&[i64]> {
        self.arrays.get(name).map(Vec::as_slice)
    }

    /// Names of all arrays in the workspace.
    pub fn array_names(&self) -> impl Iterator<Item = &str> + '_ {
        self.arrays.keys().map(String::as_str)
    }
}

/// Dynamic execution profile of one kernel run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Array-element loads, per array.
    pub loads_by_array: BTreeMap<String, u64>,
    /// Array-element stores, per array.
    pub stores_by_array: BTreeMap<String, u64>,
    /// Arithmetic/logic operations evaluated.
    pub ops: u64,
    /// Innermost statements executed.
    pub stmts: u64,
}

impl ExecStats {
    /// Total array loads across all arrays.
    pub fn loads(&self) -> u64 {
        self.loads_by_array.values().sum()
    }

    /// Total array stores across all arrays.
    pub fn stores(&self) -> u64 {
        self.stores_by_array.values().sum()
    }

    /// Total off-chip memory traffic (loads + stores).
    pub fn memory_accesses(&self) -> u64 {
        self.loads() + self.stores()
    }
}

/// Executes kernels against a [`Workspace`].
///
/// # Example
///
/// ```
/// use defacto_ir::{parse_kernel, Interpreter, Workspace};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let k = parse_kernel(
///     "kernel double { in A: i32[4]; out B: i32[4];
///        for i in 0..4 { B[i] = A[i] * 2; } }",
/// )?;
/// let mut ws = Workspace::for_kernel(&k);
/// ws.set_array("A", &[1, 2, 3, 4])?;
/// let stats = Interpreter::new(&k).run(&mut ws)?;
/// assert_eq!(ws.array("B").unwrap(), &[2, 4, 6, 8]);
/// assert_eq!(stats.loads(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Interpreter<'k> {
    kernel: &'k Kernel,
}

struct Env {
    scalars: HashMap<String, i64>,
    loop_vars: HashMap<String, i64>,
}

/// Length of `name` in `arrays`, zero when absent — only used to fill in
/// error payloads, never on the happy path.
fn decl_len(arrays: &BTreeMap<String, Vec<i64>>, name: &str) -> usize {
    arrays.get(name).map_or(0, Vec::len)
}

impl<'k> Interpreter<'k> {
    /// Create an interpreter for `kernel`.
    pub fn new(kernel: &'k Kernel) -> Self {
        Interpreter { kernel }
    }

    /// Execute the kernel, mutating `ws` in place.
    ///
    /// Scalars start at zero. Returns the memory-traffic profile.
    ///
    /// # Errors
    ///
    /// Fails on out-of-bounds accesses or a workspace missing one of the
    /// kernel's arrays.
    pub fn run(&self, ws: &mut Workspace) -> Result<ExecStats> {
        for a in self.kernel.arrays() {
            if ws.array(&a.name).is_none() {
                return Err(IrError::Undeclared(a.name.clone()));
            }
        }
        let mut env = Env {
            scalars: self
                .kernel
                .scalars()
                .iter()
                .map(|s| (s.name.clone(), 0))
                .collect(),
            loop_vars: HashMap::new(),
        };
        let mut stats = ExecStats::default();
        self.exec_stmts(self.kernel.body(), &mut env, ws, &mut stats)?;
        Ok(stats)
    }

    fn exec_stmts(
        &self,
        stmts: &[Stmt],
        env: &mut Env,
        ws: &mut Workspace,
        stats: &mut ExecStats,
    ) -> Result<()> {
        for s in stmts {
            self.exec_stmt(s, env, ws, stats)?;
        }
        Ok(())
    }

    fn exec_stmt(
        &self,
        s: &Stmt,
        env: &mut Env,
        ws: &mut Workspace,
        stats: &mut ExecStats,
    ) -> Result<()> {
        match s {
            Stmt::Assign { lhs, rhs } => {
                stats.stmts += 1;
                let v = self.eval(rhs, env, ws, stats)?;
                match lhs {
                    LValue::Scalar(name) => {
                        let ty = self
                            .kernel
                            .scalar(name)
                            .map(|d| d.ty)
                            .unwrap_or(ScalarType::I32);
                        env.scalars.insert(name.clone(), ty.wrap(v));
                    }
                    LValue::Array(a) => {
                        let (idx, ty) = self.resolve(a, env, ws)?;
                        stats
                            .stores_by_array
                            .entry(a.array.clone())
                            .and_modify(|c| *c += 1)
                            .or_insert(1);
                        let len = decl_len(&ws.arrays, &a.array);
                        let slot = ws
                            .arrays
                            .get_mut(&a.array)
                            .and_then(|arr| arr.get_mut(idx as usize))
                            .ok_or_else(|| IrError::OutOfBounds {
                                array: a.array.clone(),
                                index: idx,
                                len,
                            })?;
                        *slot = ty.wrap(v);
                    }
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                stats.stmts += 1;
                let c = self.eval(cond, env, ws, stats)?;
                if c != 0 {
                    self.exec_stmts(then_body, env, ws, stats)?;
                } else {
                    self.exec_stmts(else_body, env, ws, stats)?;
                }
            }
            Stmt::For(l) => {
                if l.step <= 0 {
                    return Err(IrError::MalformedLoop(format!(
                        "loop `{}` has non-positive step",
                        l.var
                    )));
                }
                let mut v = l.lower;
                while v < l.upper {
                    env.loop_vars.insert(l.var.clone(), v);
                    self.exec_stmts(&l.body, env, ws, stats)?;
                    v = v.checked_add(l.step).ok_or_else(|| {
                        IrError::MalformedLoop(format!(
                            "loop `{}` overflows its induction variable",
                            l.var
                        ))
                    })?;
                }
                env.loop_vars.remove(&l.var);
            }
            Stmt::Rotate(regs) => {
                stats.stmts += 1;
                // Left rotation: r0 <- r1 <- ... <- rk <- (old r0).
                if regs.len() >= 2 {
                    let first = *env.scalars.get(&regs[0]).unwrap_or(&0);
                    for w in 0..regs.len() - 1 {
                        let next = *env.scalars.get(&regs[w + 1]).unwrap_or(&0);
                        env.scalars.insert(regs[w].clone(), next);
                    }
                    env.scalars.insert(regs[regs.len() - 1].clone(), first);
                }
            }
        }
        Ok(())
    }

    fn resolve(&self, a: &ArrayAccess, env: &Env, ws: &Workspace) -> Result<(i64, ScalarType)> {
        let decl = self
            .kernel
            .array(&a.array)
            .ok_or_else(|| IrError::Undeclared(a.array.clone()))?;
        let idx: Vec<i64> = a
            .indices
            .iter()
            .map(|e| {
                e.try_eval(|v| env.loop_vars.get(v).or_else(|| env.scalars.get(v)).copied())
                    .map_err(|v| IrError::Undeclared(v.to_string()))
            })
            .collect::<Result<_>>()?;
        let flat = decl.flatten(&idx).ok_or_else(|| IrError::OutOfBounds {
            array: a.array.clone(),
            index: *idx.first().unwrap_or(&0),
            len: decl.len(),
        })?;
        let _ = ws;
        Ok((flat, decl.ty))
    }

    fn eval(&self, e: &Expr, env: &mut Env, ws: &Workspace, stats: &mut ExecStats) -> Result<i64> {
        Ok(match e {
            Expr::Int(v) => *v,
            Expr::Scalar(n) => *env
                .loop_vars
                .get(n)
                .or_else(|| env.scalars.get(n))
                .ok_or_else(|| IrError::Undeclared(n.clone()))?,
            Expr::Load(a) => {
                let (idx, _) = self.resolve(a, env, ws)?;
                stats
                    .loads_by_array
                    .entry(a.array.clone())
                    .and_modify(|c| *c += 1)
                    .or_insert(1);
                ws.arrays
                    .get(&a.array)
                    .and_then(|arr| arr.get(idx as usize))
                    .copied()
                    .ok_or_else(|| IrError::OutOfBounds {
                        array: a.array.clone(),
                        index: idx,
                        len: decl_len(&ws.arrays, &a.array),
                    })?
            }
            Expr::Unary(op, inner) => {
                let v = self.eval(inner, env, ws, stats)?;
                stats.ops += 1;
                op.apply(v)
            }
            Expr::Binary(op, a, b) => {
                let va = self.eval(a, env, ws, stats)?;
                let vb = self.eval(b, env, ws, stats)?;
                stats.ops += 1;
                op.apply(va, vb)
            }
            Expr::Select(c, t, f) => {
                // Hardware evaluates both arms and selects.
                let vc = self.eval(c, env, ws, stats)?;
                let vt = self.eval(t, env, ws, stats)?;
                let vf = self.eval(f, env, ws, stats)?;
                stats.ops += 1;
                if vc != 0 {
                    vt
                } else {
                    vf
                }
            }
        })
    }
}

/// Run `kernel` with the provided input arrays and return the workspace
/// after execution together with its stats. Inputs not supplied default to
/// zero. Convenience wrapper used pervasively in tests.
///
/// # Errors
///
/// Propagates workspace and interpreter errors.
pub fn run_with_inputs(
    kernel: &Kernel,
    inputs: &[(&str, Vec<i64>)],
) -> Result<(Workspace, ExecStats)> {
    let mut ws = Workspace::for_kernel(kernel);
    for (name, data) in inputs {
        ws.set_array(name, data)?;
    }
    let stats = Interpreter::new(kernel).run(&mut ws)?;
    Ok((ws, stats))
}

/// Check that `kernel` never reads an `Out` array before writing it — a
/// sanity lint used by the kernels crate.
pub fn reads_uninitialized_outputs(kernel: &Kernel) -> bool {
    let mut read_before_write = false;
    let mut written: std::collections::HashSet<&str> = std::collections::HashSet::new();
    crate::stmt::walk_stmts(kernel.body(), &mut |s| {
        if let Stmt::Assign { lhs, rhs } = s {
            for l in rhs.loads() {
                if let Some(decl) = kernel.array(&l.array) {
                    if decl.kind == ArrayKind::Out && !written.contains(l.array.as_str()) {
                        read_before_write = true;
                    }
                }
            }
            if let Some(a) = lhs.as_array() {
                written.insert(a.array.as_str());
            }
        }
    });
    read_before_write
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_kernel;

    #[test]
    fn fir_matches_direct_computation() {
        let k = parse_kernel(
            "kernel fir {
               in S: i32[96]; in C: i32[32]; inout D: i32[64];
               for j in 0..64 { for i in 0..32 {
                 D[j] = D[j] + S[i + j] * C[i];
               } }
             }",
        )
        .unwrap();
        let s: Vec<i64> = (0..96).map(|x| (x * 7 % 23) - 11).collect();
        let c: Vec<i64> = (0..32).map(|x| (x * 5 % 17) - 8).collect();
        let (ws, stats) = run_with_inputs(&k, &[("S", s.clone()), ("C", c.clone())]).unwrap();
        let mut want = vec![0i64; 64];
        for j in 0..64usize {
            for i in 0..32usize {
                want[j] += s[i + j] * c[i];
            }
        }
        assert_eq!(ws.array("D").unwrap(), want.as_slice());
        // 3 loads and 1 store per innermost iteration.
        assert_eq!(stats.loads(), 3 * 2048);
        assert_eq!(stats.stores(), 2048);
        assert_eq!(stats.loads_by_array["S"], 2048);
    }

    #[test]
    fn stores_wrap_to_element_type() {
        let k = parse_kernel(
            "kernel w { in A: i32[2]; out B: u8[2];
               for i in 0..2 { B[i] = A[i] + 250; } }",
        )
        .unwrap();
        let (ws, _) = run_with_inputs(&k, &[("A", vec![10, 5])]).unwrap();
        assert_eq!(ws.array("B").unwrap(), &[4, 255]);
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let k = parse_kernel(
            "kernel oob { out B: i32[4];
               for i in 0..8 { B[i] = 1; } }",
        )
        .unwrap();
        let mut ws = Workspace::for_kernel(&k);
        let err = Interpreter::new(&k).run(&mut ws).unwrap_err();
        assert!(matches!(err, IrError::OutOfBounds { .. }));
    }

    #[test]
    fn rotate_permutes_registers() {
        let k = parse_kernel(
            "kernel rot {
               out B: i32[3];
               var r0: i32; var r1: i32; var r2: i32;
               for t in 0..1 {
                 r0 = 10; r1 = 20; r2 = 30;
                 rotate(r0, r1, r2);
                 B[0] = r0; B[1] = r1; B[2] = r2;
               }
             }",
        )
        .unwrap();
        let (ws, _) = run_with_inputs(&k, &[]).unwrap();
        assert_eq!(ws.array("B").unwrap(), &[20, 30, 10]);
    }

    #[test]
    fn if_else_and_select_agree() {
        let k1 = parse_kernel(
            "kernel a { in A: i32[8]; out B: i32[8];
               for i in 0..8 { if (A[i] > 0) { B[i] = A[i]; } else { B[i] = 0 - A[i]; } } }",
        )
        .unwrap();
        let k2 = parse_kernel(
            "kernel b { in A: i32[8]; out B: i32[8];
               for i in 0..8 { B[i] = A[i] > 0 ? A[i] : 0 - A[i]; } }",
        )
        .unwrap();
        let input: Vec<i64> = vec![3, -4, 0, 7, -1, 2, -9, 5];
        let (w1, _) = run_with_inputs(&k1, &[("A", input.clone())]).unwrap();
        let (w2, _) = run_with_inputs(&k2, &[("A", input)]).unwrap();
        assert_eq!(w1.array("B"), w2.array("B"));
    }

    #[test]
    fn step_loop_iterates_correctly() {
        let k = parse_kernel(
            "kernel s { out B: i32[10];
               for i in 0..10 step 3 { B[i] = 1; } }",
        )
        .unwrap();
        let (ws, stats) = run_with_inputs(&k, &[]).unwrap();
        assert_eq!(ws.array("B").unwrap(), &[1, 0, 0, 1, 0, 0, 1, 0, 0, 1]);
        assert_eq!(stats.stores(), 4);
    }

    #[test]
    fn workspace_lists_arrays() {
        let k = parse_kernel(
            "kernel z { in A: i32[4]; out B: i32[4]; for i in 0..4 { B[i] = A[i]; } }",
        )
        .unwrap();
        let ws = Workspace::for_kernel(&k);
        let names: Vec<&str> = ws.array_names().collect();
        assert_eq!(names, vec!["A", "B"]);
    }

    #[test]
    fn uninitialized_output_read_lint() {
        let bad = parse_kernel(
            "kernel b { out B: i32[4]; out C: i32[4];
               for i in 0..4 { C[i] = B[i]; } }",
        )
        .unwrap();
        assert!(reads_uninitialized_outputs(&bad));
        let good = parse_kernel(
            "kernel g { in A: i32[4]; out B: i32[4];
               for i in 0..4 { B[i] = A[i]; } }",
        )
        .unwrap();
        assert!(!reads_uninitialized_outputs(&good));
    }

    #[test]
    fn set_array_validates_length() {
        let k = parse_kernel(
            "kernel z { in A: i32[4]; out B: i32[4]; for i in 0..4 { B[i] = A[i]; } }",
        )
        .unwrap();
        let mut ws = Workspace::for_kernel(&k);
        assert!(ws.set_array("A", &[1, 2]).is_err());
        assert!(ws.set_array("missing", &[1]).is_err());
    }
}
