//! Structural IR verifier.
//!
//! [`verify`] checks the invariants every transformation pass must
//! preserve and reports *all* violations as [`Diagnostic`]s (codes
//! `DF101`–`DF105`), unlike [`crate::Kernel::new`] validation which stops
//! at the first error. The transformation pipeline re-runs it after every
//! pass when `verify_each_pass` is enabled, so a pass that emits malformed
//! IR is caught at the pass boundary instead of surfacing later as a
//! wrong estimate or interpreter error.
//!
//! Checked invariants:
//!
//! - every name is declared exactly once (`DF105`);
//! - array accesses name declared arrays with matching subscript arity,
//!   and subscripts only use loop variables in scope (`DF101`, `DF102`);
//! - scalars that are read are written somewhere in the kernel — a scalar
//!   no pass ever defines is a dangling register (`DF101`);
//! - `rotate` register chains have a single element type (`DF103`);
//! - loops are well formed: positive step, ordered bounds, no shadowed
//!   induction variables (`DF104`).

use crate::diag::{codes, Diagnostic};
use crate::expr::{ArrayAccess, Expr};
use crate::kernel::Kernel;
use crate::stmt::{LValue, Stmt};
use std::collections::{HashMap, HashSet};

/// Verify structural invariants of `kernel`, returning every violation.
///
/// An empty result means the kernel is structurally sound. Diagnostics
/// carry no spans: verified kernels are usually transformation outputs
/// with no corresponding source text.
pub fn verify(kernel: &Kernel) -> Vec<Diagnostic> {
    let mut v = Verifier {
        kernel,
        diags: Vec::new(),
        reads: HashSet::new(),
        writes: HashSet::new(),
    };
    v.check_decls();
    let mut loop_vars = Vec::new();
    v.check_stmts(kernel.body(), &mut loop_vars);
    v.check_dangling_scalars();
    v.diags
}

struct Verifier<'k> {
    kernel: &'k Kernel,
    diags: Vec<Diagnostic>,
    /// Scalar names read anywhere in the body (loop variables excluded).
    reads: HashSet<String>,
    /// Scalar names written anywhere in the body (assignments or rotates).
    writes: HashSet<String>,
}

impl Verifier<'_> {
    fn check_decls(&mut self) {
        let mut seen: HashMap<&str, usize> = HashMap::new();
        for a in self.kernel.arrays() {
            *seen.entry(a.name.as_str()).or_default() += 1;
        }
        for s in self.kernel.scalars() {
            *seen.entry(s.name.as_str()).or_default() += 1;
        }
        let mut dups: Vec<&str> = seen
            .iter()
            .filter(|(_, &n)| n > 1)
            .map(|(&name, _)| name)
            .collect();
        dups.sort_unstable();
        for name in dups {
            self.diags.push(Diagnostic::error(
                codes::V_DUPLICATE_DECL,
                format!("name `{name}` is declared more than once"),
            ));
        }
    }

    fn check_stmts(&mut self, stmts: &[Stmt], loop_vars: &mut Vec<String>) {
        for s in stmts {
            match s {
                Stmt::Assign { lhs, rhs } => {
                    match lhs {
                        LValue::Scalar(n) => {
                            self.writes.insert(n.clone());
                            if self.kernel.scalar(n).is_none() {
                                self.diags.push(Diagnostic::error(
                                    codes::V_UNDECLARED,
                                    format!("assignment to undeclared scalar `{n}`"),
                                ));
                            }
                        }
                        LValue::Array(a) => self.check_access(a, loop_vars),
                    }
                    self.check_expr(rhs, loop_vars);
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    self.check_expr(cond, loop_vars);
                    self.check_stmts(then_body, loop_vars);
                    self.check_stmts(else_body, loop_vars);
                }
                Stmt::For(l) => {
                    if l.step <= 0 {
                        self.diags.push(Diagnostic::error(
                            codes::V_LOOP_FORM,
                            format!("loop `{}` has non-positive step {}", l.var, l.step),
                        ));
                    }
                    if l.upper < l.lower {
                        self.diags.push(Diagnostic::error(
                            codes::V_LOOP_FORM,
                            format!(
                                "loop `{}` has bounds out of order ({}..{})",
                                l.var, l.lower, l.upper
                            ),
                        ));
                    }
                    if loop_vars.iter().any(|v| v == &l.var) {
                        self.diags.push(Diagnostic::error(
                            codes::V_LOOP_FORM,
                            format!("nested loops share induction variable `{}`", l.var),
                        ));
                    }
                    if self.kernel.array(&l.var).is_some() || self.kernel.scalar(&l.var).is_some() {
                        self.diags.push(Diagnostic::error(
                            codes::V_LOOP_FORM,
                            format!("loop variable `{}` shadows a declaration", l.var),
                        ));
                    }
                    loop_vars.push(l.var.clone());
                    self.check_stmts(&l.body, loop_vars);
                    loop_vars.pop();
                }
                Stmt::Rotate(regs) => {
                    let mut tys = Vec::new();
                    for r in regs {
                        // Rotation both reads and redefines every register
                        // of the chain.
                        self.reads.insert(r.clone());
                        self.writes.insert(r.clone());
                        match self.kernel.scalar(r) {
                            Some(decl) => tys.push(decl.ty),
                            None => self.diags.push(Diagnostic::error(
                                codes::V_UNDECLARED,
                                format!("rotate names undeclared register `{r}`"),
                            )),
                        }
                    }
                    if tys.windows(2).any(|w| w[0] != w[1]) {
                        self.diags.push(Diagnostic::error(
                            codes::V_TYPE_WIDTH,
                            format!("rotate chain ({}) mixes element types", regs.join(", ")),
                        ));
                    }
                }
            }
        }
    }

    fn check_expr(&mut self, e: &Expr, loop_vars: &[String]) {
        match e {
            Expr::Int(_) => {}
            Expr::Scalar(n) => {
                if loop_vars.iter().any(|v| v == n) {
                    return;
                }
                self.reads.insert(n.clone());
                if self.kernel.scalar(n).is_none() {
                    self.diags.push(Diagnostic::error(
                        codes::V_UNDECLARED,
                        format!("read of undeclared name `{n}`"),
                    ));
                }
            }
            Expr::Load(a) => self.check_access(a, loop_vars),
            Expr::Unary(_, e) => self.check_expr(e, loop_vars),
            Expr::Binary(_, a, b) => {
                self.check_expr(a, loop_vars);
                self.check_expr(b, loop_vars);
            }
            Expr::Select(c, t, f) => {
                self.check_expr(c, loop_vars);
                self.check_expr(t, loop_vars);
                self.check_expr(f, loop_vars);
            }
        }
    }

    fn check_access(&mut self, a: &ArrayAccess, loop_vars: &[String]) {
        let Some(decl) = self.kernel.array(&a.array) else {
            self.diags.push(Diagnostic::error(
                codes::V_UNDECLARED,
                format!("access to undeclared array `{}`", a.array),
            ));
            return;
        };
        if decl.dims.len() != a.indices.len() {
            self.diags.push(Diagnostic::error(
                codes::V_ARITY,
                format!(
                    "array `{}` has {} dimension(s) but was accessed with {}",
                    a.array,
                    decl.dims.len(),
                    a.indices.len()
                ),
            ));
        }
        for idx in &a.indices {
            for v in idx.vars() {
                if !loop_vars.iter().any(|lv| lv == v) {
                    self.diags.push(Diagnostic::error(
                        codes::V_UNDECLARED,
                        format!(
                            "subscript of `{}` uses variable `{v}` outside its loop",
                            a.array
                        ),
                    ));
                }
            }
        }
    }

    fn check_dangling_scalars(&mut self) {
        let mut dangling: Vec<&String> = self.reads.difference(&self.writes).collect();
        dangling.retain(|n| self.kernel.scalar(n).is_some());
        dangling.sort_unstable();
        for n in dangling {
            self.diags.push(Diagnostic::error(
                codes::V_UNDECLARED,
                format!("scalar `{n}` is read but never written by any statement"),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::AffineExpr;
    use crate::decl::{ArrayDecl, ArrayKind, ScalarDecl};
    use crate::parse_kernel;
    use crate::stmt::Loop;
    use crate::types::ScalarType;

    const FIR: &str = "kernel fir { in S: i32[96]; in C: i32[32]; inout D: i32[64];
       for j in 0..64 { for i in 0..32 {
         D[j] = D[j] + S[i + j] * C[i]; } } }";

    #[test]
    fn valid_kernel_verifies_clean() {
        let k = parse_kernel(FIR).unwrap();
        assert!(verify(&k).is_empty());
    }

    #[test]
    fn dangling_scalar_read_is_reported() {
        // `t` is declared and read but never written: Kernel::new accepts
        // it (it only checks declarations), verify flags it.
        let k = parse_kernel(
            "kernel d { in A: i32[4]; out B: i32[4]; var t: i32;
               for i in 0..4 { B[i] = A[i] + t; } }",
        )
        .unwrap();
        let diags = verify(&k);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::V_UNDECLARED);
        assert!(diags[0].message.contains("`t`"), "{}", diags[0].message);
    }

    #[test]
    fn mixed_type_rotate_is_reported() {
        let k = parse_kernel(
            "kernel r { in A: i32[8]; out B: i32[8]; var r0: i32; var r1: i16;
               for i in 0..8 { r0 = A[i]; r1 = r0; B[i] = r1; rotate(r0, r1); } }",
        )
        .unwrap();
        let diags = verify(&k);
        assert!(
            diags.iter().any(|d| d.code == codes::V_TYPE_WIDTH),
            "{diags:?}"
        );
    }

    #[test]
    fn verifier_collects_multiple_violations() {
        // Kernel::new refuses malformed IR, so drive the checker directly
        // with a corrupted body against a valid kernel's declarations —
        // the situation a buggy pass would produce.
        let k = parse_kernel(FIR).unwrap();
        let bad_body = vec![Stmt::For(Loop {
            var: "j".into(),
            lower: 5,
            upper: 1,
            step: 0,
            body: vec![Stmt::assign(
                LValue::Array(ArrayAccess::new("Z", vec![AffineExpr::var("j")])),
                Expr::load1("D", AffineExpr::var("q")),
            )],
        })];
        let mut v = Verifier {
            kernel: &k,
            diags: Vec::new(),
            reads: HashSet::new(),
            writes: HashSet::new(),
        };
        let mut loop_vars = Vec::new();
        v.check_stmts(&bad_body, &mut loop_vars);
        let codes_seen: Vec<&str> = v.diags.iter().map(|d| d.code).collect();
        assert!(codes_seen.contains(&codes::V_LOOP_FORM));
        assert!(codes_seen.contains(&codes::V_UNDECLARED));
    }

    #[test]
    fn distinct_decls_pass_the_duplicate_check() {
        let k = Kernel::new(
            "x",
            vec![ArrayDecl::new("A", ScalarType::I32, vec![4], ArrayKind::In)],
            vec![ScalarDecl::new("t", ScalarType::I32)],
            vec![],
        )
        .unwrap();
        let mut v = Verifier {
            kernel: &k,
            diags: Vec::new(),
            reads: HashSet::new(),
            writes: HashSet::new(),
        };
        v.check_decls();
        assert!(v.diags.is_empty());
    }
}
