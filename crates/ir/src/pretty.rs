//! Pretty printer: renders a [`Kernel`] back to the textual DSL.
//!
//! The output of [`print_kernel`] re-parses to an equal kernel for source
//! kernels (those without `rotate` statements round-trip exactly; `rotate`
//! is printed in a parseable form as well).

use crate::expr::{BinOp, Expr, UnOp};
use crate::kernel::Kernel;
use crate::stmt::{LValue, Stmt};
use std::fmt::Write;

/// Render a kernel as DSL source text.
pub fn print_kernel(k: &Kernel) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "kernel {} {{", k.name());
    for a in k.arrays() {
        let mut dims = String::new();
        for d in &a.dims {
            let _ = write!(dims, "[{d}]");
        }
        match a.range {
            Some((lo, hi)) => {
                let _ = writeln!(
                    s,
                    "  {} {}: {}{} range {}..{};",
                    a.kind, a.name, a.ty, dims, lo, hi
                );
            }
            None => {
                let _ = writeln!(s, "  {} {}: {}{};", a.kind, a.name, a.ty, dims);
            }
        }
    }
    for sc in k.scalars() {
        let _ = writeln!(s, "  var {}: {};", sc.name, sc.ty);
    }
    print_stmts(&mut s, k.body(), 1);
    s.push_str("}\n");
    s
}

fn indent(s: &mut String, level: usize) {
    for _ in 0..level {
        s.push_str("  ");
    }
}

/// Render a statement list at the given indentation level.
pub fn print_stmts(s: &mut String, stmts: &[Stmt], level: usize) {
    for st in stmts {
        match st {
            Stmt::Assign { lhs, rhs } => {
                indent(s, level);
                let _ = writeln!(s, "{} = {};", print_lvalue(lhs), print_expr(rhs, 0));
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                indent(s, level);
                let _ = writeln!(s, "if ({}) {{", print_expr(cond, 0));
                print_stmts(s, then_body, level + 1);
                if else_body.is_empty() {
                    indent(s, level);
                    s.push_str("}\n");
                } else {
                    indent(s, level);
                    s.push_str("} else {\n");
                    print_stmts(s, else_body, level + 1);
                    indent(s, level);
                    s.push_str("}\n");
                }
            }
            Stmt::For(l) => {
                indent(s, level);
                if l.step == 1 {
                    let _ = writeln!(s, "for {} in {}..{} {{", l.var, l.lower, l.upper);
                } else {
                    let _ = writeln!(
                        s,
                        "for {} in {}..{} step {} {{",
                        l.var, l.lower, l.upper, l.step
                    );
                }
                print_stmts(s, &l.body, level + 1);
                indent(s, level);
                s.push_str("}\n");
            }
            Stmt::Rotate(regs) => {
                indent(s, level);
                let _ = writeln!(s, "rotate({});", regs.join(", "));
            }
        }
    }
}

fn print_lvalue(l: &LValue) -> String {
    match l {
        LValue::Scalar(n) => n.clone(),
        LValue::Array(a) => a.to_string(),
    }
}

/// Binding strength used for minimal parenthesization. Higher binds
/// tighter.
fn precedence(op: BinOp) -> u8 {
    match op {
        BinOp::Mul | BinOp::Div | BinOp::Rem => 10,
        BinOp::Add | BinOp::Sub => 9,
        BinOp::Shl | BinOp::Shr => 8,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 7,
        BinOp::Eq | BinOp::Ne => 6,
        BinOp::And => 5,
        BinOp::Xor => 4,
        BinOp::Or => 3,
    }
}

/// Render an expression; `min_prec` is the loosest precedence allowed
/// without parentheses.
pub fn print_expr(e: &Expr, min_prec: u8) -> String {
    match e {
        Expr::Int(v) => v.to_string(),
        Expr::Scalar(n) => n.clone(),
        Expr::Load(a) => a.to_string(),
        Expr::Unary(UnOp::Abs, inner) => format!("abs({})", print_expr(inner, 0)),
        Expr::Unary(op, inner) => format!("{op}{}", print_expr(inner, 11)),
        Expr::Binary(op, a, b) => {
            let p = precedence(*op);
            // Left-associative: the right operand needs strictly higher
            // binding to avoid parentheses.
            let body = format!(
                "{} {} {}",
                print_expr(a, p),
                op.symbol(),
                print_expr(b, p + 1)
            );
            if p < min_prec {
                format!("({body})")
            } else {
                body
            }
        }
        Expr::Select(c, t, f) => {
            let body = format!(
                "{} ? {} : {}",
                print_expr(c, 1),
                print_expr(t, 1),
                print_expr(f, 1)
            );
            if min_prec > 0 {
                format!("({body})")
            } else {
                body
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::AffineExpr;

    #[test]
    fn expr_parenthesization_is_minimal() {
        // (a + b) * c needs parens; a + b * c does not.
        let a = Expr::scalar("a");
        let b = Expr::scalar("b");
        let c = Expr::scalar("c");
        let e1 = Expr::mul(Expr::add(a.clone(), b.clone()), c.clone());
        assert_eq!(print_expr(&e1, 0), "(a + b) * c");
        let e2 = Expr::add(a.clone(), Expr::mul(b.clone(), c.clone()));
        assert_eq!(print_expr(&e2, 0), "a + b * c");
        // Left-associativity: a - b - c prints without parens,
        // a - (b - c) keeps them.
        let e3 = Expr::bin(
            BinOp::Sub,
            Expr::bin(BinOp::Sub, a.clone(), b.clone()),
            c.clone(),
        );
        assert_eq!(print_expr(&e3, 0), "a - b - c");
        let e4 = Expr::bin(BinOp::Sub, a, Expr::bin(BinOp::Sub, b, c));
        assert_eq!(print_expr(&e4, 0), "a - (b - c)");
    }

    #[test]
    fn select_and_abs() {
        let e = Expr::Select(
            Box::new(Expr::bin(BinOp::Gt, Expr::scalar("x"), Expr::Int(0))),
            Box::new(Expr::scalar("x")),
            Box::new(Expr::Unary(UnOp::Neg, Box::new(Expr::scalar("x")))),
        );
        assert_eq!(print_expr(&e, 0), "x > 0 ? x : -x");
        let a = Expr::Unary(UnOp::Abs, Box::new(Expr::scalar("x")));
        assert_eq!(print_expr(&a, 0), "abs(x)");
    }

    #[test]
    fn load_with_affine_subscript() {
        let e = Expr::load1("S", AffineExpr::var("i") + AffineExpr::var("j") + 1.into());
        assert_eq!(print_expr(&e, 0), "S[i + j + 1]");
    }
}
