//! Canonical form and stable content hashing of kernels.
//!
//! The persistent cross-run cache (the `defacto-cache` crate) is
//! content-addressed: two invocations must agree on a key for "the same
//! kernel" even when the kernels were written by different hands. The
//! canonical form makes that precise. Canonicalization applies, in order:
//!
//! 1. **Bound normalization** — every loop is rewritten to `0..trip`
//!    with unit step, substituting `var := step*var + lower` into affine
//!    subscripts and non-subscript reads (the same rewrite the pipeline's
//!    `normalize_loops` pass performs, so kernels that normalize alike
//!    canonicalize alike);
//! 2. **Alpha-renaming** — loop variables are renamed positionally per
//!    binding site (`i0`, `i1`, … in pre-order), scalars and arrays by
//!    first use in the body (`s0…`, `a0…`); declarations never used in
//!    the body are ordered by structural shape after all used ones;
//! 3. **Declaration sorting** — declarations are emitted in canonical
//!    index order, and the kernel is renamed to `k`.
//!
//! The resulting kernel is hashed with a fixed 128-bit FNV-1a over a
//! structural byte stream. Unlike `DefaultHasher`, the algorithm is
//! pinned here, so hashes are stable across processes and toolchain
//! versions — a requirement for on-disk keys. The guarantee:
//! **structurally identical kernels (alpha-renamed, decl-reordered,
//! bound-shifted, or renamed kernels) hash identically**, and the
//! estimate pipeline is invariant under exactly those rewrites (see
//! DESIGN.md §12 for the soundness argument).
//!
//! Besides the whole-kernel hash, [`canonicalize`] reports per-subtree
//! hashes (the declaration group, every loop subtree, and the innermost
//! perfect-nest body). Incremental re-exploration diffs these to decide
//! which analyses an edit invalidated.

use crate::affine::AffineExpr;
use crate::decl::{ArrayDecl, ArrayKind, ScalarDecl};
use crate::expr::{ArrayAccess, BinOp, Expr, UnOp};
use crate::kernel::Kernel;
use crate::stmt::{LValue, Loop, Stmt};
use crate::types::ScalarType;
use std::collections::HashMap;
use std::fmt;

/// A stable 128-bit content hash (FNV-1a over the canonical structural
/// byte stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentHash(pub u128);

impl ContentHash {
    /// Render as 32 lowercase hex digits.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parse the `to_hex` form.
    pub fn from_hex(s: &str) -> Option<ContentHash> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(ContentHash)
    }
}

impl fmt::Display for ContentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

const FNV128_BASIS: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;

/// Streaming FNV-1a/128. Field boundaries are disambiguated with tag
/// bytes and length prefixes so distinct structures cannot collide by
/// concatenation.
struct Hasher128 {
    state: u128,
}

impl Hasher128 {
    fn new(domain: u8) -> Hasher128 {
        let mut h = Hasher128 {
            state: FNV128_BASIS,
        };
        h.byte(domain);
        h
    }

    fn byte(&mut self, b: u8) {
        self.state ^= b as u128;
        self.state = self.state.wrapping_mul(FNV128_PRIME);
    }

    fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.byte(b);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.bytes(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    fn finish(&self) -> ContentHash {
        ContentHash(self.state)
    }
}

/// The hash of one addressable IR subtree of the canonical kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubtreeHash {
    /// Stable path: `decls` for the declaration group, `l0`, `l0/l1`, …
    /// for loop subtrees (index = position among `For` statements at
    /// that nesting level, outermost first), `innermost` for the
    /// innermost body of a perfect nest.
    pub path: String,
    /// Structural hash of the subtree in canonical form.
    pub hash: ContentHash,
}

/// A kernel in canonical form, with its content hash and per-subtree
/// hashes.
#[derive(Debug, Clone)]
pub struct CanonicalKernel {
    /// The canonical kernel (normalized, alpha-renamed, decls sorted).
    pub kernel: Kernel,
    /// Whole-kernel content hash.
    pub hash: ContentHash,
    /// Subtree hashes, in a deterministic order (decls first, then
    /// loops pre-order, then `innermost` when the body is a perfect
    /// nest).
    pub subtrees: Vec<SubtreeHash>,
}

impl CanonicalKernel {
    /// Look up a subtree hash by path.
    pub fn subtree(&self, path: &str) -> Option<ContentHash> {
        self.subtrees
            .iter()
            .find(|s| s.path == path)
            .map(|s| s.hash)
    }

    /// Paths whose hashes differ between `self` and `other` (present in
    /// either). This is the invalidation set of an edit.
    pub fn changed_subtrees(&self, other: &CanonicalKernel) -> Vec<String> {
        let mut changed = Vec::new();
        for s in &self.subtrees {
            if other.subtree(&s.path) != Some(s.hash) {
                changed.push(s.path.clone());
            }
        }
        for s in &other.subtrees {
            if self.subtree(&s.path).is_none() && !changed.contains(&s.path) {
                changed.push(s.path.clone());
            }
        }
        changed
    }
}

/// Compute the canonical form and content hash of `kernel`.
pub fn canonicalize(kernel: &Kernel) -> CanonicalKernel {
    let mut cx = Canonicalizer::new(kernel);
    let body = cx.rename_stmts(kernel.body());
    let (arrays, scalars) = cx.canonical_decls();
    let canonical = Kernel::new("k", arrays, scalars, body)
        .expect("canonical rebuild of a valid kernel is valid");
    let hash = hash_kernel(&canonical);
    let subtrees = subtree_hashes(&canonical);
    CanonicalKernel {
        kernel: canonical,
        hash,
        subtrees,
    }
}

/// The canonical content hash of `kernel` (shorthand for
/// `canonicalize(kernel).hash`).
pub fn content_hash(kernel: &Kernel) -> ContentHash {
    canonicalize(kernel).hash
}

/// Alpha-renaming and bound-normalization state.
struct Canonicalizer<'k> {
    kernel: &'k Kernel,
    /// Original array name → canonical index, in first-use order.
    arrays: HashMap<String, usize>,
    /// Original scalar name → canonical index, in first-use order.
    scalars: HashMap<String, usize>,
    /// Per-binding-site loop-variable scopes: `(original, canonical)`,
    /// innermost last.
    scopes: Vec<(String, String)>,
    next_ivar: usize,
}

impl<'k> Canonicalizer<'k> {
    fn new(kernel: &'k Kernel) -> Canonicalizer<'k> {
        Canonicalizer {
            kernel,
            arrays: HashMap::new(),
            scalars: HashMap::new(),
            scopes: Vec::new(),
            next_ivar: 0,
        }
    }

    fn array_name(&mut self, original: &str) -> String {
        let next = self.arrays.len();
        let idx = *self
            .arrays
            .entry(original.to_string())
            .or_insert_with(|| next);
        format!("a{idx}")
    }

    /// Canonical name of a value read/written as a scalar: an in-scope
    /// loop variable, else a declared scalar (allocated by first use).
    fn value_name(&mut self, original: &str) -> String {
        for (orig, canon) in self.scopes.iter().rev() {
            if orig == original {
                return canon.clone();
            }
        }
        if self.kernel.scalar(original).is_some() {
            let next = self.scalars.len();
            let idx = *self
                .scalars
                .entry(original.to_string())
                .or_insert_with(|| next);
            format!("s{idx}")
        } else {
            // Out-of-scope or undeclared name (impossible in a validated
            // kernel); keep it so validation reports it faithfully.
            original.to_string()
        }
    }

    fn rename_stmts(&mut self, stmts: &[Stmt]) -> Vec<Stmt> {
        stmts.iter().map(|s| self.rename_stmt(s)).collect()
    }

    fn rename_stmt(&mut self, stmt: &Stmt) -> Stmt {
        match stmt {
            Stmt::Assign { lhs, rhs } => Stmt::Assign {
                lhs: match lhs {
                    LValue::Scalar(n) => LValue::Scalar(self.value_name(n)),
                    LValue::Array(a) => LValue::Array(self.rename_access(a)),
                },
                rhs: self.rename_expr(rhs),
            },
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => Stmt::If {
                cond: self.rename_expr(cond),
                then_body: self.rename_stmts(then_body),
                else_body: self.rename_stmts(else_body),
            },
            Stmt::For(l) => {
                let canon_var = format!("i{}", self.next_ivar);
                self.next_ivar += 1;
                self.scopes.push((l.var.clone(), canon_var.clone()));
                // Normalize bounds: `for v in lo..hi step s` becomes
                // `for v in 0..trip` with `v := s*v + lo` substituted in
                // the body (the rename pass below reads the scope entry,
                // the normalization is applied structurally here).
                let body = if l.lower == 0 && l.step == 1 {
                    self.rename_stmts(&l.body)
                } else {
                    let renamed = self.rename_stmts(&l.body);
                    let step = l.step.max(1);
                    normalize_var_stmts(&renamed, &canon_var, step, l.lower)
                };
                self.scopes.pop();
                Stmt::For(Loop {
                    var: canon_var,
                    lower: 0,
                    upper: l.trip_count(),
                    step: 1,
                    body,
                })
            }
            Stmt::Rotate(regs) => Stmt::Rotate(regs.iter().map(|r| self.value_name(r)).collect()),
        }
    }

    fn rename_expr(&mut self, expr: &Expr) -> Expr {
        match expr {
            Expr::Int(v) => Expr::Int(*v),
            Expr::Scalar(n) => Expr::Scalar(self.value_name(n)),
            Expr::Load(a) => Expr::Load(self.rename_access(a)),
            Expr::Unary(op, e) => Expr::Unary(*op, Box::new(self.rename_expr(e))),
            Expr::Binary(op, a, b) => Expr::Binary(
                *op,
                Box::new(self.rename_expr(a)),
                Box::new(self.rename_expr(b)),
            ),
            Expr::Select(c, t, e) => Expr::Select(
                Box::new(self.rename_expr(c)),
                Box::new(self.rename_expr(t)),
                Box::new(self.rename_expr(e)),
            ),
        }
    }

    fn rename_access(&mut self, access: &ArrayAccess) -> ArrayAccess {
        let array = self.array_name(&access.array);
        let indices = access
            .indices
            .iter()
            .map(|e| self.rename_affine(e))
            .collect();
        ArrayAccess { array, indices }
    }

    fn rename_affine(&mut self, e: &AffineExpr) -> AffineExpr {
        let terms: Vec<(String, i64)> = e.terms().map(|(v, c)| (self.value_name(v), c)).collect();
        AffineExpr::from_terms(terms, e.constant_term())
    }

    /// Declarations in canonical order: used decls by first-use index,
    /// then unused ones sorted by structural shape (interchangeable, so
    /// shape order is canonical), all renamed.
    fn canonical_decls(&self) -> (Vec<ArrayDecl>, Vec<ScalarDecl>) {
        let mut arrays: Vec<ArrayDecl> = Vec::with_capacity(self.kernel.arrays().len());
        let mut used: Vec<(usize, &ArrayDecl)> = Vec::new();
        let mut unused_arrays: Vec<&ArrayDecl> = Vec::new();
        for a in self.kernel.arrays() {
            match self.arrays.get(&a.name) {
                Some(&idx) => used.push((idx, a)),
                None => unused_arrays.push(a),
            }
        }
        used.sort_by_key(|(idx, _)| *idx);
        unused_arrays.sort_by_key(|a| array_shape_key(a));
        for (idx, a) in used {
            let mut d = a.clone();
            d.name = format!("a{idx}");
            arrays.push(d);
        }
        let base = arrays.len();
        for (off, a) in unused_arrays.into_iter().enumerate() {
            let mut d = a.clone();
            d.name = format!("a{}", base + off);
            arrays.push(d);
        }

        let mut scalars: Vec<ScalarDecl> = Vec::with_capacity(self.kernel.scalars().len());
        let mut used_s: Vec<(usize, &ScalarDecl)> = Vec::new();
        let mut unused_s: Vec<&ScalarDecl> = Vec::new();
        for s in self.kernel.scalars() {
            match self.scalars.get(&s.name) {
                Some(&idx) => used_s.push((idx, s)),
                None => unused_s.push(s),
            }
        }
        used_s.sort_by_key(|(idx, _)| *idx);
        unused_s.sort_by_key(|s| scalar_shape_key(s));
        for (idx, s) in used_s {
            let mut d = s.clone();
            d.name = format!("s{idx}");
            scalars.push(d);
        }
        let base = scalars.len();
        for (off, s) in unused_s.into_iter().enumerate() {
            let mut d = s.clone();
            d.name = format!("s{}", base + off);
            scalars.push(d);
        }
        (arrays, scalars)
    }
}

/// Substitute `var := step*var + lower` into `stmts`: affine subscripts
/// are rewritten exactly, non-subscript scalar reads of `var` become the
/// expression `var*step + lower` (matching the pipeline's
/// `normalize_loops` rewrite).
fn normalize_var_stmts(stmts: &[Stmt], var: &str, step: i64, lower: i64) -> Vec<Stmt> {
    stmts
        .iter()
        .map(|s| normalize_var_stmt(s, var, step, lower))
        .collect()
}

fn normalize_var_stmt(stmt: &Stmt, var: &str, step: i64, lower: i64) -> Stmt {
    match stmt {
        Stmt::Assign { lhs, rhs } => Stmt::Assign {
            lhs: match lhs {
                LValue::Scalar(n) => LValue::Scalar(n.clone()),
                LValue::Array(a) => LValue::Array(normalize_var_access(a, var, step, lower)),
            },
            rhs: normalize_var_expr(rhs, var, step, lower),
        },
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => Stmt::If {
            cond: normalize_var_expr(cond, var, step, lower),
            then_body: normalize_var_stmts(then_body, var, step, lower),
            else_body: normalize_var_stmts(else_body, var, step, lower),
        },
        // An inner loop never rebinds `var` (nested loops cannot share
        // induction variables), so the substitution passes through.
        Stmt::For(l) => Stmt::For(Loop {
            var: l.var.clone(),
            lower: l.lower,
            upper: l.upper,
            step: l.step,
            body: normalize_var_stmts(&l.body, var, step, lower),
        }),
        Stmt::Rotate(r) => Stmt::Rotate(r.clone()),
    }
}

fn normalize_var_expr(expr: &Expr, var: &str, step: i64, lower: i64) -> Expr {
    match expr {
        Expr::Int(v) => Expr::Int(*v),
        Expr::Scalar(n) if n == var => {
            // v := v*step + lower, folding the identity parts away.
            let mut e = Expr::Scalar(n.clone());
            if step != 1 {
                e = Expr::bin(BinOp::Mul, e, Expr::Int(step));
            }
            if lower != 0 {
                e = Expr::bin(BinOp::Add, e, Expr::Int(lower));
            }
            e
        }
        Expr::Scalar(n) => Expr::Scalar(n.clone()),
        Expr::Load(a) => Expr::Load(normalize_var_access(a, var, step, lower)),
        Expr::Unary(op, e) => Expr::Unary(*op, Box::new(normalize_var_expr(e, var, step, lower))),
        Expr::Binary(op, a, b) => Expr::Binary(
            *op,
            Box::new(normalize_var_expr(a, var, step, lower)),
            Box::new(normalize_var_expr(b, var, step, lower)),
        ),
        Expr::Select(c, t, e) => Expr::Select(
            Box::new(normalize_var_expr(c, var, step, lower)),
            Box::new(normalize_var_expr(t, var, step, lower)),
            Box::new(normalize_var_expr(e, var, step, lower)),
        ),
    }
}

fn normalize_var_access(access: &ArrayAccess, var: &str, step: i64, lower: i64) -> ArrayAccess {
    access.map_indices(|e| {
        let c = e.coeff(var);
        if c == 0 {
            return e.clone();
        }
        let terms: Vec<(String, i64)> = e
            .terms()
            .map(|(v, k)| {
                if v == var {
                    (v.to_string(), k * step)
                } else {
                    (v.to_string(), k)
                }
            })
            .collect();
        AffineExpr::from_terms(terms, e.constant_term() + c * lower)
    })
}

fn array_shape_key(a: &ArrayDecl) -> (u8, u8, Vec<usize>, Option<(i64, i64)>) {
    (kind_tag(a.kind), type_tag(a.ty), a.dims.clone(), a.range)
}

fn scalar_shape_key(s: &ScalarDecl) -> (u8, bool) {
    (type_tag(s.ty), s.compiler_temp)
}

fn kind_tag(k: ArrayKind) -> u8 {
    match k {
        ArrayKind::In => 0,
        ArrayKind::Out => 1,
        ArrayKind::InOut => 2,
    }
}

fn type_tag(t: ScalarType) -> u8 {
    // Width + signedness pins the tag without naming every variant.
    let base = match t.bits() {
        8 => 0,
        16 => 2,
        32 => 4,
        b => 6 + (b as u8 & 1),
    };
    base + t.is_signed() as u8
}

fn bin_tag(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Rem => 4,
        BinOp::Shl => 5,
        BinOp::Shr => 6,
        BinOp::And => 7,
        BinOp::Or => 8,
        BinOp::Xor => 9,
        BinOp::Eq => 10,
        BinOp::Ne => 11,
        BinOp::Lt => 12,
        BinOp::Le => 13,
        BinOp::Gt => 14,
        BinOp::Ge => 15,
    }
}

fn un_tag(op: UnOp) -> u8 {
    match op {
        UnOp::Neg => 0,
        UnOp::Not => 1,
        UnOp::Abs => 2,
    }
}

/// Structural hash of a whole (already canonical) kernel.
fn hash_kernel(k: &Kernel) -> ContentHash {
    let mut h = Hasher128::new(b'K');
    hash_decls_into(&mut h, k);
    h.u64(k.body().len() as u64);
    hash_stmts(&mut h, k.body());
    h.finish()
}

fn hash_decls_into(h: &mut Hasher128, k: &Kernel) {
    h.u64(k.arrays().len() as u64);
    for a in k.arrays() {
        h.byte(b'A');
        h.str(&a.name);
        h.byte(type_tag(a.ty));
        h.byte(kind_tag(a.kind));
        h.u64(a.dims.len() as u64);
        for &d in &a.dims {
            h.u64(d as u64);
        }
        match a.range {
            None => h.byte(0),
            Some((lo, hi)) => {
                h.byte(1);
                h.i64(lo);
                h.i64(hi);
            }
        }
    }
    h.u64(k.scalars().len() as u64);
    for s in k.scalars() {
        h.byte(b'S');
        h.str(&s.name);
        h.byte(type_tag(s.ty));
        h.byte(s.compiler_temp as u8);
    }
}

fn hash_stmts(h: &mut Hasher128, stmts: &[Stmt]) {
    for s in stmts {
        hash_stmt(h, s);
    }
}

fn hash_stmt(h: &mut Hasher128, stmt: &Stmt) {
    match stmt {
        Stmt::Assign { lhs, rhs } => {
            h.byte(1);
            match lhs {
                LValue::Scalar(n) => {
                    h.byte(0);
                    h.str(n);
                }
                LValue::Array(a) => {
                    h.byte(1);
                    hash_access(h, a);
                }
            }
            hash_expr(h, rhs);
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            h.byte(2);
            hash_expr(h, cond);
            h.u64(then_body.len() as u64);
            hash_stmts(h, then_body);
            h.u64(else_body.len() as u64);
            hash_stmts(h, else_body);
        }
        Stmt::For(l) => {
            h.byte(3);
            hash_loop(h, l);
        }
        Stmt::Rotate(regs) => {
            h.byte(4);
            h.u64(regs.len() as u64);
            for r in regs {
                h.str(r);
            }
        }
    }
}

fn hash_loop(h: &mut Hasher128, l: &Loop) {
    h.str(&l.var);
    h.i64(l.lower);
    h.i64(l.upper);
    h.i64(l.step);
    h.u64(l.body.len() as u64);
    hash_stmts(h, &l.body);
}

fn hash_expr(h: &mut Hasher128, e: &Expr) {
    match e {
        Expr::Int(v) => {
            h.byte(10);
            h.i64(*v);
        }
        Expr::Scalar(n) => {
            h.byte(11);
            h.str(n);
        }
        Expr::Load(a) => {
            h.byte(12);
            hash_access(h, a);
        }
        Expr::Unary(op, e) => {
            h.byte(13);
            h.byte(un_tag(*op));
            hash_expr(h, e);
        }
        Expr::Binary(op, a, b) => {
            h.byte(14);
            h.byte(bin_tag(*op));
            hash_expr(h, a);
            hash_expr(h, b);
        }
        Expr::Select(c, t, f) => {
            h.byte(15);
            hash_expr(h, c);
            hash_expr(h, t);
            hash_expr(h, f);
        }
    }
}

fn hash_access(h: &mut Hasher128, a: &ArrayAccess) {
    h.str(&a.array);
    h.u64(a.indices.len() as u64);
    for idx in &a.indices {
        h.u64(idx.num_vars() as u64);
        for (v, c) in idx.terms() {
            h.str(v);
            h.i64(c);
        }
        h.i64(idx.constant_term());
    }
}

/// Subtree hashes of a canonical kernel: the declaration group, every
/// loop subtree in pre-order, and the innermost body of a perfect nest.
fn subtree_hashes(k: &Kernel) -> Vec<SubtreeHash> {
    let mut out = Vec::new();
    let mut h = Hasher128::new(b'D');
    hash_decls_into(&mut h, k);
    out.push(SubtreeHash {
        path: "decls".to_string(),
        hash: h.finish(),
    });
    collect_loop_hashes(k.body(), "", &mut out);
    if let Some(nest) = k.perfect_nest() {
        let mut h = Hasher128::new(b'B');
        let body = nest.innermost_body();
        h.u64(body.len() as u64);
        hash_stmts(&mut h, body);
        out.push(SubtreeHash {
            path: "innermost".to_string(),
            hash: h.finish(),
        });
    }
    out
}

fn collect_loop_hashes(stmts: &[Stmt], prefix: &str, out: &mut Vec<SubtreeHash>) {
    let mut idx = 0usize;
    for s in stmts {
        if let Stmt::For(l) = s {
            let path = if prefix.is_empty() {
                format!("l{idx}")
            } else {
                format!("{prefix}/l{idx}")
            };
            let mut h = Hasher128::new(b'L');
            hash_loop(&mut h, l);
            out.push(SubtreeHash {
                path: path.clone(),
                hash: h.finish(),
            });
            collect_loop_hashes(&l.body, &path, out);
            idx += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_kernel;

    const FIR: &str = "kernel fir { in S: i32[96]; in C: i32[32]; inout D: i32[64];
       for j in 0..64 { for i in 0..32 {
         D[j] = D[j] + S[i + j] * C[i]; } } }";

    // Alpha-renamed (loop vars, arrays, kernel name) and decl-reordered.
    const FIR_RENAMED: &str = "kernel f2 { inout Dst: i32[64]; in Coef: i32[32]; in Sig: i32[96];
       for a in 0..64 { for b in 0..32 {
         Dst[a] = Dst[a] + Sig[b + a] * Coef[b]; } } }";

    // Bounds shifted by +2 with compensated subscripts.
    const FIR_SHIFTED: &str = "kernel fir { in S: i32[96]; in C: i32[32]; inout D: i32[64];
       for j in 2..66 { for i in 0..32 {
         D[j - 2] = D[j - 2] + S[i + j - 2] * C[i]; } } }";

    #[test]
    fn alpha_renamed_and_reordered_kernels_hash_identically() {
        let a = parse_kernel(FIR).unwrap();
        let b = parse_kernel(FIR_RENAMED).unwrap();
        let ca = canonicalize(&a);
        let cb = canonicalize(&b);
        assert_eq!(ca.hash, cb.hash);
        assert_eq!(ca.kernel, cb.kernel);
        assert_eq!(ca.subtrees, cb.subtrees);
    }

    #[test]
    fn shifted_bounds_normalize_to_the_same_hash() {
        let a = parse_kernel(FIR).unwrap();
        let b = parse_kernel(FIR_SHIFTED).unwrap();
        assert_eq!(content_hash(&a), content_hash(&b));
    }

    #[test]
    fn distinct_kernels_hash_differently() {
        let a = parse_kernel(FIR).unwrap();
        let smaller = FIR.replace("0..64", "0..32");
        let b = parse_kernel(&smaller).unwrap();
        assert_ne!(content_hash(&a), content_hash(&b));
    }

    #[test]
    fn inner_edit_leaves_outer_independent_subtrees_alone() {
        let a = canonicalize(&parse_kernel(FIR).unwrap());
        let edited = FIR.replace("0..32", "0..16");
        let b = canonicalize(&parse_kernel(&edited).unwrap());
        let changed = a.changed_subtrees(&b);
        assert!(changed.contains(&"l0".to_string()), "{changed:?}");
        assert!(changed.contains(&"l0/l0".to_string()), "{changed:?}");
        assert!(!changed.contains(&"decls".to_string()), "{changed:?}");
        // The innermost statement body is bound-independent.
        assert_eq!(a.subtree("innermost"), b.subtree("innermost"));
    }

    #[test]
    fn decl_edit_leaves_loop_subtrees_alone() {
        let a = canonicalize(&parse_kernel(FIR).unwrap());
        let edited = FIR.replace("in S: i32[96]", "in S: i16[96]");
        let b = canonicalize(&parse_kernel(&edited).unwrap());
        let changed = a.changed_subtrees(&b);
        assert!(changed.contains(&"decls".to_string()), "{changed:?}");
        assert!(!changed.iter().any(|p| p.starts_with('l')), "{changed:?}");
    }

    #[test]
    fn content_hash_is_stable_across_calls() {
        let k = parse_kernel(FIR).unwrap();
        assert_eq!(content_hash(&k), content_hash(&k));
    }

    #[test]
    fn hex_round_trip() {
        let h = content_hash(&parse_kernel(FIR).unwrap());
        assert_eq!(ContentHash::from_hex(&h.to_hex()), Some(h));
        assert_eq!(ContentHash::from_hex("zz"), None);
    }

    #[test]
    fn sibling_loops_with_shared_vs_distinct_vars_are_alpha_equal() {
        let shared = "kernel k { out A: i32[8]; out B: i32[8];
           for i in 0..8 { A[i] = i; } for i in 0..8 { B[i] = i; } }";
        let distinct = "kernel k { out A: i32[8]; out B: i32[8];
           for i in 0..8 { A[i] = i; } for j in 0..8 { B[j] = j; } }";
        let a = parse_kernel(shared).unwrap();
        let b = parse_kernel(distinct).unwrap();
        assert_eq!(content_hash(&a), content_hash(&b));
    }
}
