//! Fluent construction of kernels without going through the parser.
//!
//! ```
//! use defacto_ir::{AffineExpr, ArrayKind, Expr, KernelBuilder, ScalarType};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let i = AffineExpr::var("i");
//! let kernel = KernelBuilder::new("scale")
//!     .array("A", ScalarType::I32, &[16], ArrayKind::In)
//!     .array("B", ScalarType::I32, &[16], ArrayKind::Out)
//!     .nest(&[("i", 16)], |b| {
//!         b.store1("B", i.clone(), Expr::mul(Expr::load1("A", i.clone()), 2.into()));
//!     })
//!     .build()?;
//! assert_eq!(kernel.perfect_nest().unwrap().depth(), 1);
//! # Ok(())
//! # }
//! ```

use crate::affine::AffineExpr;
use crate::decl::{ArrayDecl, ArrayKind, ScalarDecl};
use crate::error::Result;
use crate::expr::{ArrayAccess, Expr};
use crate::kernel::Kernel;
use crate::stmt::{LValue, Loop, Stmt};
use crate::types::ScalarType;

/// Builder for [`Kernel`] values.
#[derive(Debug, Clone)]
pub struct KernelBuilder {
    name: String,
    arrays: Vec<ArrayDecl>,
    scalars: Vec<ScalarDecl>,
    body: Vec<Stmt>,
}

impl KernelBuilder {
    /// Start building a kernel with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        KernelBuilder {
            name: name.into(),
            arrays: Vec::new(),
            scalars: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Declare an array.
    pub fn array(
        mut self,
        name: impl Into<String>,
        ty: ScalarType,
        dims: &[usize],
        kind: ArrayKind,
    ) -> Self {
        self.arrays
            .push(ArrayDecl::new(name, ty, dims.to_vec(), kind));
        self
    }

    /// Declare a scalar.
    pub fn scalar(mut self, name: impl Into<String>, ty: ScalarType) -> Self {
        self.scalars.push(ScalarDecl::new(name, ty));
        self
    }

    /// Build a perfect loop nest: `dims` gives `(var, trip_count)` pairs
    /// outermost-first, and `f` populates the innermost body through a
    /// [`BodyBuilder`].
    pub fn nest(mut self, dims: &[(&str, i64)], f: impl FnOnce(&mut BodyBuilder)) -> Self {
        let mut bb = BodyBuilder::default();
        f(&mut bb);
        let mut body = bb.stmts;
        for &(var, trip) in dims.iter().rev() {
            body = vec![Stmt::For(Loop::new(var, 0, trip, body))];
        }
        self.body.extend(body);
        self
    }

    /// Append a raw statement to the kernel body.
    pub fn push_stmt(mut self, s: Stmt) -> Self {
        self.body.push(s);
        self
    }

    /// Validate and produce the kernel.
    ///
    /// # Errors
    ///
    /// Propagates validation failures from [`Kernel::new`].
    pub fn build(self) -> Result<Kernel> {
        Kernel::new(self.name, self.arrays, self.scalars, self.body)
    }
}

/// Collects innermost-body statements for [`KernelBuilder::nest`].
#[derive(Debug, Default)]
pub struct BodyBuilder {
    stmts: Vec<Stmt>,
}

impl BodyBuilder {
    /// `array[idx] = value;` for a 1-D array.
    pub fn store1(&mut self, array: &str, idx: AffineExpr, value: Expr) -> &mut Self {
        self.stmts.push(Stmt::assign(
            LValue::Array(ArrayAccess::new(array, vec![idx])),
            value,
        ));
        self
    }

    /// `array[i0][i1] = value;` for a 2-D array.
    pub fn store2(
        &mut self,
        array: &str,
        i0: AffineExpr,
        i1: AffineExpr,
        value: Expr,
    ) -> &mut Self {
        self.stmts.push(Stmt::assign(
            LValue::Array(ArrayAccess::new(array, vec![i0, i1])),
            value,
        ));
        self
    }

    /// `scalar = value;`
    pub fn set(&mut self, scalar: &str, value: Expr) -> &mut Self {
        self.stmts.push(Stmt::assign(LValue::scalar(scalar), value));
        self
    }

    /// `if (cond) { then }` with no else branch.
    pub fn if_then(&mut self, cond: Expr, f: impl FnOnce(&mut BodyBuilder)) -> &mut Self {
        let mut bb = BodyBuilder::default();
        f(&mut bb);
        self.stmts.push(Stmt::If {
            cond,
            then_body: bb.stmts,
            else_body: vec![],
        });
        self
    }

    /// Append a raw statement.
    pub fn stmt(&mut self, s: Stmt) -> &mut Self {
        self.stmts.push(s);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;

    #[test]
    fn builds_two_deep_nest() {
        let i = AffineExpr::var("i");
        let j = AffineExpr::var("j");
        let k = KernelBuilder::new("fir")
            .array("S", ScalarType::I32, &[96], ArrayKind::In)
            .array("C", ScalarType::I32, &[32], ArrayKind::In)
            .array("D", ScalarType::I32, &[64], ArrayKind::InOut)
            .nest(&[("j", 64), ("i", 32)], |b| {
                b.store1(
                    "D",
                    j.clone(),
                    Expr::add(
                        Expr::load1("D", j.clone()),
                        Expr::mul(
                            Expr::load1("S", i.clone() + j.clone()),
                            Expr::load1("C", i.clone()),
                        ),
                    ),
                );
            })
            .build()
            .unwrap();
        let nest = k.perfect_nest().unwrap();
        assert_eq!(nest.vars(), vec!["j", "i"]);
        assert_eq!(nest.trip_counts(), vec![64, 32]);
    }

    #[test]
    fn builder_if_then() {
        let i = AffineExpr::var("i");
        let k = KernelBuilder::new("clip")
            .array("A", ScalarType::I16, &[8], ArrayKind::InOut)
            .nest(&[("i", 8)], |b| {
                b.if_then(
                    Expr::bin(BinOp::Gt, Expr::load1("A", i.clone()), Expr::Int(100)),
                    |t| {
                        t.store1("A", i.clone(), Expr::Int(100));
                    },
                );
            })
            .build()
            .unwrap();
        assert!(k.perfect_nest().is_some());
    }

    #[test]
    fn invalid_kernel_is_reported() {
        let err = KernelBuilder::new("bad")
            .nest(&[("i", 4)], |b| {
                b.store1("missing", AffineExpr::var("i"), Expr::Int(0));
            })
            .build();
        assert!(err.is_err());
    }
}
