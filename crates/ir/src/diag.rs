//! Structured diagnostics with stable `DF`-prefixed codes.
//!
//! Every user-facing legality or invariant failure in the system is
//! reported as a [`Diagnostic`]: a stable code, a severity, a message, an
//! optional primary [`Span`] into the kernel source, secondary notes and an
//! optional suggested fix. Diagnostics render both for terminals (with a
//! caret excerpt when the source text is available) and as JSON for
//! tooling.
//!
//! Code ranges: `DF001`–`DF0xx` are lint rules (front-end legality and
//! profitability checks), `DF1xx` are IR-verifier invariants checked
//! between transformation passes.

use crate::span::Span;
use std::fmt;

/// Stable diagnostic codes. The numbers are part of the tool's contract:
/// tests and CI pin them, so codes are never reused or renumbered.
pub mod codes {
    /// Lexical or syntactic error in the kernel DSL.
    pub const SYNTAX: &str = "DF001";
    /// Subscript expression is not affine in the loop variables.
    pub const NON_AFFINE: &str = "DF002";
    /// Loop bound is not a compile-time constant.
    pub const NON_CONSTANT_BOUND: &str = "DF003";
    /// Control flow outside `for`/`if`/assignment (e.g. `while`, `break`).
    pub const UNSUPPORTED_CONTROL_FLOW: &str = "DF004";
    /// A constant-analyzable access falls outside the declared extent.
    pub const OUT_OF_BOUNDS: &str = "DF005";
    /// Declared array or scalar is never used.
    pub const UNUSED_DECL: &str = "DF006";
    /// Dependences block unroll-and-jam at every loop level.
    pub const JAM_BLOCKED: &str = "DF007";
    /// Distinct write references to one array defeat redundant-write
    /// elimination in scalar replacement.
    pub const WRITE_WRITE_CONFLICT: &str = "DF008";
    /// Every member of the saturation set exceeds the device capacity.
    pub const CAPACITY_INFEASIBLE: &str = "DF009";
    /// A loop can never execute: reversed bounds or an empty range give a
    /// zero trip count, so the estimator would price it as free while the
    /// design space around it collapses.
    pub const DEGENERATE_LOOP: &str = "DF010";
    /// Dependences restrict a multi-loop nest to the identity
    /// permutation, so an interchange axis adds nothing to the space.
    pub const INTERCHANGE_PINNED: &str = "DF011";
    /// Packing an array is a provable no-op or illegal: its element
    /// width already fills the memory word, or its access stride defeats
    /// word-packing alignment.
    pub const PACKING_INERT: &str = "DF012";
    /// Verifier: use of an undeclared or never-written name.
    pub const V_UNDECLARED: &str = "DF101";
    /// Verifier: subscript arity differs from the declared dimensions.
    pub const V_ARITY: &str = "DF102";
    /// Verifier: inconsistent scalar type widths (e.g. mixed-type rotate).
    pub const V_TYPE_WIDTH: &str = "DF103";
    /// Verifier: malformed loop (bad step/bounds, shadowed loop variable).
    pub const V_LOOP_FORM: &str = "DF104";
    /// Verifier: a name is declared more than once.
    pub const V_DUPLICATE_DECL: &str = "DF105";
}

/// How serious a diagnostic is. Errors make `defacto lint` exit non-zero
/// and abort exploration; warnings are advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory: the kernel is legal but a transformation or the search
    /// will be less effective than it could be.
    Warning,
    /// The kernel violates a precondition of the system.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// A secondary message attached to a [`Diagnostic`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Note {
    /// The note text.
    pub message: String,
    /// Where it points, if anywhere.
    pub span: Option<Span>,
}

/// One structured diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code from [`codes`].
    pub code: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// The main message, lowercase-first like compiler diagnostics.
    pub message: String,
    /// The source location the diagnostic points at, when known.
    pub primary: Option<Span>,
    /// Secondary notes (related locations, explanations).
    pub notes: Vec<Note>,
    /// A suggested fix, when one exists.
    pub help: Option<String>,
}

impl Diagnostic {
    /// A new error diagnostic.
    pub fn error(code: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Error,
            message: message.into(),
            primary: None,
            notes: Vec::new(),
            help: None,
        }
    }

    /// A new warning diagnostic.
    pub fn warning(code: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(code, message)
        }
    }

    /// Attach the primary span.
    pub fn with_span(mut self, span: Span) -> Diagnostic {
        self.primary = Some(span);
        self
    }

    /// Attach an optional primary span (no-op on `None`).
    pub fn with_span_opt(mut self, span: Option<Span>) -> Diagnostic {
        if span.is_some() {
            self.primary = span;
        }
        self
    }

    /// Attach a secondary note.
    pub fn with_note(mut self, message: impl Into<String>, span: Option<Span>) -> Diagnostic {
        self.notes.push(Note {
            message: message.into(),
            span,
        });
        self
    }

    /// Attach a suggested fix.
    pub fn with_help(mut self, help: impl Into<String>) -> Diagnostic {
        self.help = Some(help.into());
        self
    }

    /// Whether this diagnostic is an error.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }

    /// Render for a terminal. With `source`, diagnostics that carry a
    /// primary span include a caret excerpt of the offending line.
    pub fn render_human(&self, source: Option<&str>) -> String {
        let mut out = format!("{}[{}]: {}", self.severity, self.code, self.message);
        if let Some(span) = self.primary {
            out.push_str(&format!("\n  --> {}:{}", span.line, span.col));
            if let Some(src) = source {
                if let Some(line_text) = src.split('\n').nth(span.line.saturating_sub(1)) {
                    let line_text = line_text.trim_end_matches('\r');
                    let width = span.line.to_string().len();
                    let carets = span.len().max(1).min(
                        line_text
                            .chars()
                            .count()
                            .saturating_sub(span.col.saturating_sub(1))
                            .max(1),
                    );
                    out.push_str(&format!(
                        "\n{:w$} |\n{} | {}\n{:w$} | {}{}",
                        "",
                        span.line,
                        line_text,
                        "",
                        " ".repeat(span.col.saturating_sub(1)),
                        "^".repeat(carets),
                        w = width,
                    ));
                }
            }
        }
        for note in &self.notes {
            match note.span {
                Some(s) => out.push_str(&format!(
                    "\n  = note: {} (at {}:{})",
                    note.message, s.line, s.col
                )),
                None => out.push_str(&format!("\n  = note: {}", note.message)),
            }
        }
        if let Some(help) = &self.help {
            out.push_str(&format!("\n  = help: {help}"));
        }
        out
    }

    /// Render as a single JSON object (hand-rolled; this crate has no
    /// dependencies).
    pub fn render_json(&self) -> String {
        let mut out = format!(
            "{{\"code\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\"",
            self.code,
            self.severity,
            json_escape(&self.message)
        );
        if let Some(s) = self.primary {
            out.push_str(&format!(
                ",\"span\":{{\"start\":{},\"end\":{},\"line\":{},\"col\":{}}}",
                s.start, s.end, s.line, s.col
            ));
        }
        if !self.notes.is_empty() {
            out.push_str(",\"notes\":[");
            for (i, n) in self.notes.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{{\"message\":\"{}\"", json_escape(&n.message)));
                if let Some(s) = n.span {
                    out.push_str(&format!(",\"line\":{},\"col\":{}", s.line, s.col));
                }
                out.push('}');
            }
            out.push(']');
        }
        if let Some(h) = &self.help {
            out.push_str(&format!(",\"help\":\"{}\"", json_escape(h)));
        }
        out.push('}');
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)
    }
}

/// Render a slice of diagnostics for a terminal, one per paragraph.
pub fn render_all_human(diags: &[Diagnostic], source: Option<&str>) -> String {
    diags
        .iter()
        .map(|d| d.render_human(source))
        .collect::<Vec<_>>()
        .join("\n\n")
}

/// Render a slice of diagnostics as a JSON array.
pub fn render_all_json(diags: &[Diagnostic]) -> String {
    let body = diags
        .iter()
        .map(Diagnostic::render_json)
        .collect::<Vec<_>>()
        .join(",");
    format!("[{body}]")
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_rendering_includes_caret_excerpt() {
        let src = "kernel k {\n  B[i] = A[i * i];\n}";
        let span = Span::from_line_col(src, 2, 9, 8);
        let d = Diagnostic::error(codes::NON_AFFINE, "subscript `i * i` is not affine")
            .with_span(span)
            .with_help("subscripts must be affine in the loop variables");
        let text = d.render_human(Some(src));
        assert!(text.starts_with("error[DF002]:"), "{text}");
        assert!(text.contains("--> 2:9"));
        assert!(text.contains("^^^^^^^^"));
        assert!(text.contains("help:"));
    }

    #[test]
    fn human_rendering_without_source_still_shows_position() {
        let d = Diagnostic::warning(codes::UNUSED_DECL, "array `T` is never accessed")
            .with_span(Span::new(10, 11, 3, 6));
        let text = d.render_human(None);
        assert!(text.starts_with("warning[DF006]:"));
        assert!(text.contains("--> 3:6"));
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let d = Diagnostic::error(codes::SYNTAX, "expected `;`, found \"}\"")
            .with_span(Span::new(5, 6, 1, 6))
            .with_note("kernel body starts here", Some(Span::new(0, 1, 1, 1)))
            .with_help("add a `;`");
        let json = d.render_json();
        assert!(json.contains("\"code\":\"DF001\""));
        assert!(json.contains("\\\"}\\\""), "{json}");
        assert!(json.contains("\"span\":{\"start\":5"));
        // Balanced braces/brackets (crude well-formedness check).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count() - json.matches("\\\"}").count()
        );
    }

    #[test]
    fn render_all_json_is_an_array() {
        let diags = vec![
            Diagnostic::error(codes::SYNTAX, "a"),
            Diagnostic::warning(codes::UNUSED_DECL, "b"),
        ];
        let json = render_all_json(&diags);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("},{"));
    }

    #[test]
    fn severity_orders_warnings_below_errors() {
        assert!(Severity::Warning < Severity::Error);
    }
}
