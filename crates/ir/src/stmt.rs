//! Statements and loops of the kernel language.

use crate::expr::{ArrayAccess, Expr};
use std::fmt;

/// The target of an assignment.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LValue {
    /// A scalar variable (declared scalar or compiler-introduced register).
    Scalar(String),
    /// An array element.
    Array(ArrayAccess),
}

impl LValue {
    /// Shorthand for a scalar target.
    pub fn scalar(name: impl Into<String>) -> Self {
        LValue::Scalar(name.into())
    }

    /// The array access if this is an array target.
    pub fn as_array(&self) -> Option<&ArrayAccess> {
        match self {
            LValue::Array(a) => Some(a),
            LValue::Scalar(_) => None,
        }
    }
}

impl fmt::Display for LValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LValue::Scalar(s) => f.write_str(s),
            LValue::Array(a) => write!(f, "{a}"),
        }
    }
}

/// A counted loop `for var in lower..upper step s { body }`.
///
/// Bounds are compile-time constants (a requirement of the paper's input
/// domain: behavioral synthesis needs constant trip counts) and `upper` is
/// exclusive.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Loop {
    /// The induction variable.
    pub var: String,
    /// Inclusive lower bound.
    pub lower: i64,
    /// Exclusive upper bound.
    pub upper: i64,
    /// Step (strictly positive).
    pub step: i64,
    /// Loop body.
    pub body: Vec<Stmt>,
}

impl Loop {
    /// A normalized loop `for var in 0..trip_count` with step 1.
    pub fn new(var: impl Into<String>, lower: i64, upper: i64, body: Vec<Stmt>) -> Self {
        Loop {
            var: var.into(),
            lower,
            upper,
            step: 1,
            body,
        }
    }

    /// Number of iterations the loop executes.
    pub fn trip_count(&self) -> i64 {
        if self.upper <= self.lower || self.step <= 0 {
            0
        } else {
            (self.upper - self.lower + self.step - 1) / self.step
        }
    }

    /// True when the loop is in normalized form: lower bound 0, step 1.
    pub fn is_normalized(&self) -> bool {
        self.lower == 0 && self.step == 1
    }

    /// The iteration values of the induction variable, in order.
    pub fn iter_values(&self) -> impl Iterator<Item = i64> + '_ {
        // A non-positive step is malformed (the interpreter rejects it);
        // yield nothing rather than pretend it strides by one.
        let upper = if self.step > 0 {
            self.upper
        } else {
            self.lower
        };
        (self.lower..upper).step_by(self.step.max(1) as usize)
    }
}

/// A statement of the kernel language.
///
/// The source language produced by the parser only contains `Assign`, `If`
/// and (nested) `For`; `Rotate` is introduced by scalar replacement to model
/// the parallel register-rotation operation of Figure 1(c) in the paper.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Stmt {
    /// `lhs = rhs;`
    Assign {
        /// Assignment target.
        lhs: LValue,
        /// Assigned expression.
        rhs: Expr,
    },
    /// `if (cond) { then } else { otherwise }` — `otherwise` may be empty.
    If {
        /// Branch condition (non-zero means taken).
        cond: Expr,
        /// Statements executed when the condition holds.
        then_body: Vec<Stmt>,
        /// Statements executed otherwise.
        else_body: Vec<Stmt>,
    },
    /// A nested loop. Source kernels form a perfect nest; transformed code
    /// may be imperfect (peeled iterations, hoisted loads, sunk stores).
    For(Loop),
    /// `rotate(r0, r1, ..., rk);` — shift each register left by one and
    /// rotate the first value into the last position. In hardware all moves
    /// happen in parallel in a single cycle; the interpreter emulates the
    /// same permutation sequentially.
    Rotate(Vec<String>),
}

impl Stmt {
    /// Shorthand for an assignment statement.
    pub fn assign(lhs: LValue, rhs: Expr) -> Stmt {
        Stmt::Assign { lhs, rhs }
    }

    /// All array accesses *read* by this statement (not descending into
    /// nested loops or branches).
    pub fn direct_loads(&self) -> Vec<&ArrayAccess> {
        match self {
            Stmt::Assign { rhs, .. } => rhs.loads(),
            Stmt::If { cond, .. } => cond.loads(),
            Stmt::For(_) | Stmt::Rotate(_) => Vec::new(),
        }
    }

    /// The array access *written* by this statement, if it writes one.
    pub fn direct_store(&self) -> Option<&ArrayAccess> {
        match self {
            Stmt::Assign { lhs, .. } => lhs.as_array(),
            _ => None,
        }
    }
}

/// Walk `stmts` recursively (including bodies of `If` and `For`), invoking
/// `f` on every statement in program order.
pub fn walk_stmts<'a>(stmts: &'a [Stmt], f: &mut impl FnMut(&'a Stmt)) {
    for s in stmts {
        f(s);
        match s {
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                walk_stmts(then_body, f);
                walk_stmts(else_body, f);
            }
            Stmt::For(l) => walk_stmts(&l.body, f),
            _ => {}
        }
    }
}

/// Collect every array access in `stmts` (reads and writes, recursively),
/// as `(access, is_write)` pairs in program order.
pub fn collect_accesses(stmts: &[Stmt]) -> Vec<(ArrayAccess, bool)> {
    let mut out = Vec::new();
    walk_stmts(stmts, &mut |s| match s {
        Stmt::Assign { lhs, rhs } => {
            for a in rhs.loads() {
                out.push((a.clone(), false));
            }
            if let Some(a) = lhs.as_array() {
                out.push((a.clone(), true));
            }
        }
        Stmt::If { cond, .. } => {
            for a in cond.loads() {
                out.push((a.clone(), false));
            }
        }
        _ => {}
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::AffineExpr;

    fn fir_body() -> Vec<Stmt> {
        // D[j] = D[j] + S[i+j] * C[i];
        vec![Stmt::assign(
            LValue::Array(ArrayAccess::new("D", vec![AffineExpr::var("j")])),
            Expr::add(
                Expr::load1("D", AffineExpr::var("j")),
                Expr::mul(
                    Expr::load1("S", AffineExpr::var("i") + AffineExpr::var("j")),
                    Expr::load1("C", AffineExpr::var("i")),
                ),
            ),
        )]
    }

    #[test]
    fn trip_count() {
        let l = Loop::new("i", 0, 32, vec![]);
        assert_eq!(l.trip_count(), 32);
        assert!(l.is_normalized());

        let l2 = Loop {
            var: "i".into(),
            lower: 3,
            upper: 10,
            step: 2,
            body: vec![],
        };
        assert_eq!(l2.trip_count(), 4); // 3,5,7,9
        assert!(!l2.is_normalized());
        assert_eq!(l2.iter_values().collect::<Vec<_>>(), vec![3, 5, 7, 9]);

        let empty = Loop::new("i", 5, 5, vec![]);
        assert_eq!(empty.trip_count(), 0);
    }

    #[test]
    fn direct_accesses() {
        let body = fir_body();
        let loads = body[0].direct_loads();
        assert_eq!(loads.len(), 3);
        let store = body[0].direct_store().unwrap();
        assert_eq!(store.array, "D");
    }

    #[test]
    fn collect_accesses_recurses_into_loops() {
        let nest = vec![Stmt::For(Loop::new(
            "j",
            0,
            4,
            vec![Stmt::For(Loop::new("i", 0, 4, fir_body()))],
        ))];
        let acc = collect_accesses(&nest);
        // 3 reads + 1 write.
        assert_eq!(acc.len(), 4);
        assert_eq!(acc.iter().filter(|(_, w)| *w).count(), 1);
    }

    #[test]
    fn collect_accesses_sees_if_condition_loads() {
        let s = Stmt::If {
            cond: Expr::bin(
                crate::BinOp::Gt,
                Expr::load1("A", AffineExpr::var("i")),
                Expr::Int(0),
            ),
            then_body: fir_body(),
            else_body: vec![],
        };
        let acc = collect_accesses(std::slice::from_ref(&s));
        // 1 condition read + 3 reads + 1 write inside the branch.
        assert_eq!(acc.len(), 5);
    }
}
