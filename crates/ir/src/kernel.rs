//! The top-level kernel: declarations plus a loop-nest body.

use crate::decl::{ArrayDecl, ScalarDecl};
use crate::error::{IrError, Result};
use crate::expr::{ArrayAccess, Expr};
use crate::stmt::{walk_stmts, LValue, Loop, Stmt};
use crate::types::ScalarType;
use std::collections::HashSet;
use std::fmt;

/// Largest flattened element count a single array declaration may have
/// (16 Mi elements, 128 MiB of interpreter storage).
pub const MAX_ARRAY_ELEMS: usize = 1 << 24;

/// A complete kernel: named declarations and a statement body, typically a
/// single perfect loop nest in source form.
///
/// Construct kernels with [`crate::parse_kernel`] or
/// [`crate::KernelBuilder`]; both validate the structural rules of the
/// paper's input domain (declared names, affine subscripts with matching
/// dimensionality, constant loop bounds, unique loop variables).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Kernel {
    name: String,
    arrays: Vec<ArrayDecl>,
    scalars: Vec<ScalarDecl>,
    body: Vec<Stmt>,
}

impl Kernel {
    /// Assemble and validate a kernel.
    ///
    /// # Errors
    ///
    /// Returns an error when a name is redeclared or undeclared, an array is
    /// accessed with the wrong dimensionality, a loop is malformed, or two
    /// nested loops share an induction-variable name.
    pub fn new(
        name: impl Into<String>,
        arrays: Vec<ArrayDecl>,
        scalars: Vec<ScalarDecl>,
        body: Vec<Stmt>,
    ) -> Result<Self> {
        let k = Kernel {
            name: name.into(),
            arrays,
            scalars,
            body,
        };
        k.validate()?;
        Ok(k)
    }

    /// The kernel's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Array declarations, in declaration order.
    pub fn arrays(&self) -> &[ArrayDecl] {
        &self.arrays
    }

    /// Scalar declarations, in declaration order.
    pub fn scalars(&self) -> &[ScalarDecl] {
        &self.scalars
    }

    /// The statement body.
    pub fn body(&self) -> &[Stmt] {
        &self.body
    }

    /// Look up an array declaration by name.
    pub fn array(&self, name: &str) -> Option<&ArrayDecl> {
        self.arrays.iter().find(|a| a.name == name)
    }

    /// Look up a scalar declaration by name.
    pub fn scalar(&self, name: &str) -> Option<&ScalarDecl> {
        self.scalars.iter().find(|s| s.name == name)
    }

    /// The element type of the named array or scalar, if declared.
    pub fn type_of(&self, name: &str) -> Option<ScalarType> {
        self.array(name)
            .map(|a| a.ty)
            .or_else(|| self.scalar(name).map(|s| s.ty))
    }

    /// Produce a copy with a different body, revalidating.
    ///
    /// # Errors
    ///
    /// Same validation failures as [`Kernel::new`].
    pub fn with_body(&self, body: Vec<Stmt>) -> Result<Kernel> {
        Kernel::new(
            self.name.clone(),
            self.arrays.clone(),
            self.scalars.clone(),
            body,
        )
    }

    /// Produce a copy with additional compiler-temporary scalar
    /// declarations and a different body, revalidating.
    ///
    /// # Errors
    ///
    /// Same validation failures as [`Kernel::new`].
    pub fn with_body_and_temps(&self, body: Vec<Stmt>, temps: Vec<ScalarDecl>) -> Result<Kernel> {
        let mut scalars = self.scalars.clone();
        for t in temps {
            if scalars.iter().any(|s| s.name == t.name) {
                return Err(IrError::Redeclared(t.name));
            }
            scalars.push(t);
        }
        Kernel::new(self.name.clone(), self.arrays.clone(), scalars, body)
    }

    /// [`Kernel::with_body`] without revalidation, for transformation
    /// pipelines whose output is valid by construction (e.g. rebuilding a
    /// nest from an already-validated kernel's own statements). The
    /// validation in [`Kernel::validate`] is a pure check — it never
    /// alters the kernel — so skipping it changes nothing but time; any
    /// caller handing over statements of uncertain provenance must use
    /// [`Kernel::with_body`] instead.
    #[must_use]
    pub fn with_body_unchecked(&self, body: Vec<Stmt>) -> Kernel {
        Kernel {
            name: self.name.clone(),
            arrays: self.arrays.clone(),
            scalars: self.scalars.clone(),
            body,
        }
    }

    /// [`Kernel::with_body_and_temps`] without revalidation; the caller
    /// guarantees the body is valid and the temporary names are fresh
    /// (see [`Kernel::with_body_unchecked`]).
    #[must_use]
    pub fn with_body_and_temps_unchecked(&self, body: Vec<Stmt>, temps: Vec<ScalarDecl>) -> Kernel {
        let mut scalars = self.scalars.clone();
        scalars.extend(temps);
        Kernel {
            name: self.name.clone(),
            arrays: self.arrays.clone(),
            scalars,
            body,
        }
    }

    /// View the body as a perfect loop nest, if it is one: a chain of
    /// single-statement loops ending in a body with no further loops.
    pub fn perfect_nest(&self) -> Option<NestView<'_>> {
        NestView::of(&self.body)
    }

    /// All loop induction variables in the body, outermost first for the
    /// perfect-nest prefix, then any others in program order.
    pub fn loop_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        walk_stmts(&self.body, &mut |s| {
            if let Stmt::For(l) = s {
                if !out.contains(&l.var) {
                    out.push(l.var.clone());
                }
            }
        });
        out
    }

    fn validate(&self) -> Result<()> {
        let mut names: HashSet<&str> = HashSet::new();
        for a in &self.arrays {
            if !names.insert(a.name.as_str()) {
                return Err(IrError::Redeclared(a.name.clone()));
            }
            // Interpreting a kernel allocates every array up front; cap
            // the element count so a declaration like `A: i8[1 << 40]`
            // is a structured error instead of an allocation abort.
            match a.dims.iter().try_fold(1usize, |n, &d| n.checked_mul(d)) {
                Some(n) if n <= MAX_ARRAY_ELEMS => {}
                _ => {
                    return Err(IrError::Invalid(format!(
                        "array `{}` exceeds {MAX_ARRAY_ELEMS} elements",
                        a.name
                    )))
                }
            }
        }
        for s in &self.scalars {
            if !names.insert(s.name.as_str()) {
                return Err(IrError::Redeclared(s.name.clone()));
            }
        }
        let mut loop_vars: Vec<String> = Vec::new();
        self.validate_stmts(&self.body, &mut loop_vars)?;
        Ok(())
    }

    fn validate_stmts(&self, stmts: &[Stmt], loop_vars: &mut Vec<String>) -> Result<()> {
        for s in stmts {
            match s {
                Stmt::Assign { lhs, rhs } => {
                    match lhs {
                        LValue::Scalar(n) => {
                            if self.scalar(n).is_none() {
                                return Err(IrError::Undeclared(n.clone()));
                            }
                        }
                        LValue::Array(a) => self.validate_access(a, loop_vars)?,
                    }
                    self.validate_expr(rhs, loop_vars)?;
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    self.validate_expr(cond, loop_vars)?;
                    self.validate_stmts(then_body, loop_vars)?;
                    self.validate_stmts(else_body, loop_vars)?;
                }
                Stmt::For(l) => {
                    if l.step <= 0 {
                        return Err(IrError::MalformedLoop(format!(
                            "loop `{}` has non-positive step {}",
                            l.var, l.step
                        )));
                    }
                    if loop_vars.iter().any(|v| v == &l.var) {
                        return Err(IrError::MalformedLoop(format!(
                            "nested loops share induction variable `{}`",
                            l.var
                        )));
                    }
                    if names_conflict(&l.var, &self.arrays, &self.scalars) {
                        return Err(IrError::Redeclared(l.var.clone()));
                    }
                    loop_vars.push(l.var.clone());
                    self.validate_stmts(&l.body, loop_vars)?;
                    loop_vars.pop();
                }
                Stmt::Rotate(regs) => {
                    for r in regs {
                        if self.scalar(r).is_none() {
                            return Err(IrError::Undeclared(r.clone()));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn validate_expr(&self, e: &Expr, loop_vars: &[String]) -> Result<()> {
        match e {
            Expr::Int(_) => Ok(()),
            Expr::Scalar(n) => {
                if self.scalar(n).is_some() || loop_vars.iter().any(|v| v == n) {
                    Ok(())
                } else {
                    Err(IrError::Undeclared(n.clone()))
                }
            }
            Expr::Load(a) => self.validate_access(a, loop_vars),
            Expr::Unary(_, e) => self.validate_expr(e, loop_vars),
            Expr::Binary(_, a, b) => {
                self.validate_expr(a, loop_vars)?;
                self.validate_expr(b, loop_vars)
            }
            Expr::Select(c, t, e) => {
                self.validate_expr(c, loop_vars)?;
                self.validate_expr(t, loop_vars)?;
                self.validate_expr(e, loop_vars)
            }
        }
    }

    fn validate_access(&self, a: &ArrayAccess, loop_vars: &[String]) -> Result<()> {
        let decl = self
            .array(&a.array)
            .ok_or_else(|| IrError::Undeclared(a.array.clone()))?;
        if decl.dims.len() != a.indices.len() {
            return Err(IrError::DimensionMismatch {
                array: a.array.clone(),
                declared: decl.dims.len(),
                used: a.indices.len(),
            });
        }
        for idx in &a.indices {
            for v in idx.vars() {
                if !loop_vars.iter().any(|lv| lv == v) {
                    return Err(IrError::Undeclared(v.to_string()));
                }
            }
        }
        Ok(())
    }
}

fn names_conflict(var: &str, arrays: &[ArrayDecl], scalars: &[ScalarDecl]) -> bool {
    arrays.iter().any(|a| a.name == var) || scalars.iter().any(|s| s.name == var)
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::pretty::print_kernel(self))
    }
}

/// A borrowed view of a perfect loop nest: the chain of loops from
/// outermost to innermost, and the innermost body.
#[derive(Debug, Clone)]
pub struct NestView<'a> {
    loops: Vec<&'a Loop>,
    innermost_body: &'a [Stmt],
}

impl<'a> NestView<'a> {
    /// Extract the perfect nest rooted at `stmts`, if `stmts` is a single
    /// loop whose body chains through single-loop statements.
    pub fn of(stmts: &'a [Stmt]) -> Option<Self> {
        let mut loops = Vec::new();
        let mut cur = stmts;
        loop {
            match cur {
                [Stmt::For(l)] => {
                    loops.push(l);
                    cur = &l.body;
                }
                body => {
                    if loops.is_empty() {
                        return None;
                    }
                    // A perfect nest's innermost body contains no loops.
                    if body.iter().any(|s| matches!(s, Stmt::For(_))) {
                        return None;
                    }
                    return Some(NestView {
                        loops,
                        innermost_body: body,
                    });
                }
            }
        }
    }

    /// Number of loops in the nest.
    pub fn depth(&self) -> usize {
        self.loops.len()
    }

    /// The loops, outermost first.
    pub fn loops(&self) -> &[&'a Loop] {
        &self.loops
    }

    /// The loop at `level` (0 = outermost).
    pub fn loop_at(&self, level: usize) -> &'a Loop {
        self.loops[level]
    }

    /// Induction-variable names, outermost first.
    pub fn vars(&self) -> Vec<&'a str> {
        self.loops.iter().map(|l| l.var.as_str()).collect()
    }

    /// Trip counts, outermost first.
    pub fn trip_counts(&self) -> Vec<i64> {
        self.loops.iter().map(|l| l.trip_count()).collect()
    }

    /// The statements of the innermost loop body.
    pub fn innermost_body(&self) -> &'a [Stmt] {
        self.innermost_body
    }

    /// Total number of innermost iterations (product of trip counts).
    pub fn total_iterations(&self) -> i64 {
        self.trip_counts().iter().product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::AffineExpr;
    use crate::decl::ArrayKind;

    fn fir() -> Kernel {
        let body = vec![Stmt::For(Loop::new(
            "j",
            0,
            64,
            vec![Stmt::For(Loop::new(
                "i",
                0,
                32,
                vec![Stmt::assign(
                    LValue::Array(ArrayAccess::new("D", vec![AffineExpr::var("j")])),
                    Expr::add(
                        Expr::load1("D", AffineExpr::var("j")),
                        Expr::mul(
                            Expr::load1("S", AffineExpr::var("i") + AffineExpr::var("j")),
                            Expr::load1("C", AffineExpr::var("i")),
                        ),
                    ),
                )],
            ))],
        ))];
        Kernel::new(
            "fir",
            vec![
                ArrayDecl::new("S", ScalarType::I32, vec![96], ArrayKind::In),
                ArrayDecl::new("C", ScalarType::I32, vec![32], ArrayKind::In),
                ArrayDecl::new("D", ScalarType::I32, vec![64], ArrayKind::InOut),
            ],
            vec![],
            body,
        )
        .unwrap()
    }

    #[test]
    fn perfect_nest_view() {
        let k = fir();
        let nest = k.perfect_nest().unwrap();
        assert_eq!(nest.depth(), 2);
        assert_eq!(nest.vars(), vec!["j", "i"]);
        assert_eq!(nest.trip_counts(), vec![64, 32]);
        assert_eq!(nest.total_iterations(), 2048);
        assert_eq!(nest.innermost_body().len(), 1);
    }

    #[test]
    fn loop_vars_outermost_first() {
        assert_eq!(fir().loop_vars(), vec!["j".to_string(), "i".to_string()]);
    }

    #[test]
    fn undeclared_array_rejected() {
        let body = vec![Stmt::For(Loop::new(
            "i",
            0,
            4,
            vec![Stmt::assign(
                LValue::Array(ArrayAccess::new("X", vec![AffineExpr::var("i")])),
                Expr::Int(0),
            )],
        ))];
        let err = Kernel::new("bad", vec![], vec![], body).unwrap_err();
        assert_eq!(err, IrError::Undeclared("X".into()));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let body = vec![Stmt::For(Loop::new(
            "i",
            0,
            4,
            vec![Stmt::assign(
                LValue::Array(ArrayAccess::new(
                    "A",
                    vec![AffineExpr::var("i"), AffineExpr::var("i")],
                )),
                Expr::Int(0),
            )],
        ))];
        let arr = ArrayDecl::new("A", ScalarType::I32, vec![4], ArrayKind::Out);
        let err = Kernel::new("bad", vec![arr], vec![], body).unwrap_err();
        assert!(matches!(err, IrError::DimensionMismatch { .. }));
    }

    #[test]
    fn duplicate_loop_var_rejected() {
        let inner = Loop::new("i", 0, 4, vec![]);
        let body = vec![Stmt::For(Loop::new("i", 0, 4, vec![Stmt::For(inner)]))];
        let err = Kernel::new("bad", vec![], vec![], body).unwrap_err();
        assert!(matches!(err, IrError::MalformedLoop(_)));
    }

    #[test]
    fn loop_index_use_outside_its_loop_rejected() {
        // `i` used in a subscript but no enclosing loop declares it.
        let body = vec![Stmt::assign(
            LValue::Array(ArrayAccess::new("A", vec![AffineExpr::var("i")])),
            Expr::Int(0),
        )];
        let arr = ArrayDecl::new("A", ScalarType::I32, vec![4], ArrayKind::Out);
        let err = Kernel::new("bad", vec![arr], vec![], body).unwrap_err();
        assert_eq!(err, IrError::Undeclared("i".into()));
    }

    #[test]
    fn imperfect_nest_has_no_view() {
        let body = vec![Stmt::For(Loop::new(
            "j",
            0,
            4,
            vec![
                Stmt::assign(LValue::scalar("t"), Expr::Int(0)),
                Stmt::For(Loop::new("i", 0, 4, vec![])),
            ],
        ))];
        let k = Kernel::new(
            "imp",
            vec![],
            vec![ScalarDecl::new("t", ScalarType::I32)],
            body,
        )
        .unwrap();
        assert!(k.perfect_nest().is_none());
    }

    #[test]
    fn with_body_and_temps_rejects_duplicates() {
        let k = fir();
        let err = k
            .with_body_and_temps(
                k.body().to_vec(),
                vec![ScalarDecl::temp("S", ScalarType::I32)],
            )
            .unwrap_err();
        assert_eq!(err, IrError::Redeclared("S".into()));
    }
}
