//! Textual front end for the kernel DSL.
//!
//! The grammar covers exactly the paper's input domain — see the crate
//! docs for an example. Subscript expressions are parsed as general
//! arithmetic and then *normalized to affine form*; anything that cannot be
//! normalized (e.g. `A[i*i]`) is rejected with [`crate::IrError::NonAffine`].

mod lexer;
mod parse;

use crate::error::Result;
use crate::kernel::Kernel;
use crate::span::SpanMap;

pub use lexer::{Token, TokenKind};

/// Parse a kernel from DSL source text.
///
/// # Errors
///
/// Returns [`crate::IrError::Parse`] for lexical/syntactic problems,
/// [`crate::IrError::NonAffine`] for non-affine subscripts, and the
/// validation errors of [`Kernel::new`] for semantic problems.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let k = defacto_ir::parse_kernel(
///     "kernel copy {
///        in  A: i16[8];
///        out B: i16[8];
///        for i in 0..8 { B[i] = A[i]; }
///      }",
/// )?;
/// assert_eq!(k.arrays().len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse_kernel(src: &str) -> Result<Kernel> {
    parse_kernel_with_spans(src).map(|(k, _)| k)
}

/// Parse a kernel and also return the [`SpanMap`] side-table mapping its
/// declarations, loop headers and array accesses back to source spans.
///
/// Diagnostics (see [`crate::diag`]) use the map to point at the offending
/// entity. Spans live in a side table rather than in the AST so that
/// parsed and programmatically built kernels remain structurally equal.
///
/// # Errors
///
/// Same as [`parse_kernel`].
pub fn parse_kernel_with_spans(src: &str) -> Result<(Kernel, SpanMap)> {
    let tokens = lexer::lex(src)?;
    let mut parser = parse::Parser::new(tokens);
    let kernel = parser.parse_kernel()?;
    Ok((kernel, parser.take_spans()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pretty::print_kernel;

    const FIR: &str = "kernel fir {
  in S: i32[96];
  in C: i32[32];
  inout D: i32[64];
  for j in 0..64 {
    for i in 0..32 {
      D[j] = D[j] + S[i + j] * C[i];
    }
  }
}";

    #[test]
    fn parses_fir() {
        let k = parse_kernel(FIR).unwrap();
        assert_eq!(k.name(), "fir");
        let nest = k.perfect_nest().unwrap();
        assert_eq!(nest.trip_counts(), vec![64, 32]);
    }

    #[test]
    fn pretty_print_round_trips() {
        let k = parse_kernel(FIR).unwrap();
        let printed = print_kernel(&k);
        let k2 = parse_kernel(&printed).unwrap();
        assert_eq!(k, k2);
    }

    #[test]
    fn parses_2d_arrays_and_if() {
        let src = "kernel thresh {
          in A: u8[16][16];
          out B: u8[16][16];
          for i in 0..16 {
            for j in 0..16 {
              if (A[i][j] > 128) { B[i][j] = 255; } else { B[i][j] = 0; }
            }
          }
        }";
        let k = parse_kernel(src).unwrap();
        assert_eq!(k.array("A").unwrap().dims, vec![16, 16]);
    }

    #[test]
    fn parses_negative_offsets_and_coefficients() {
        let src = "kernel st {
          in A: i16[64];
          out B: i16[64];
          for i in 1..63 {
            B[i] = A[i - 1] + A[2*i - 2] + A[i + 1];
          }
        }";
        let k = parse_kernel(src).unwrap();
        let acc = crate::stmt::collect_accesses(k.body());
        let a2 = &acc[1].0;
        assert_eq!(a2.indices[0].coeff("i"), 2);
        assert_eq!(a2.indices[0].constant_term(), -2);
    }

    #[test]
    fn rejects_nonaffine_subscript() {
        let src = "kernel bad {
          in A: i32[16];
          out B: i32[16];
          for i in 0..4 { B[i] = A[i * i]; }
        }";
        let err = parse_kernel(src).unwrap_err();
        assert!(matches!(err, crate::IrError::NonAffine { .. }), "{err}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_kernel("kernel x {").is_err());
        assert!(parse_kernel("for i in 0..4 {}").is_err());
        assert!(parse_kernel("kernel x { in A: i32[4]; for i in 0..4 { A[i] = ; } }").is_err());
    }

    #[test]
    fn parses_step_loops_and_rotate() {
        let src = "kernel s {
          in A: i32[16];
          out B: i32[16];
          var r0: i32;
          var r1: i32;
          for i in 0..16 step 2 {
            B[i] = A[i] + r0;
            rotate(r0, r1);
          }
        }";
        let k = parse_kernel(src).unwrap();
        let nest = k.perfect_nest().unwrap();
        assert_eq!(nest.loop_at(0).step, 2);
        assert_eq!(nest.loop_at(0).trip_count(), 8);
    }

    #[test]
    fn parse_error_carries_position() {
        let err = parse_kernel("kernel x {\n  in A i32[4];\n}").unwrap_err();
        match err {
            crate::IrError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn rejects_missing_loop_bound() {
        let err = parse_kernel(
            "kernel x { in A: i32[4]; out B: i32[4];
               for i in 0.. { B[i] = A[i]; } }",
        )
        .unwrap_err();
        assert!(matches!(err, crate::IrError::Parse { .. }), "{err}");
        assert!(err.to_string().contains("loop upper bound"), "{err}");
    }

    #[test]
    fn rejects_symbolic_loop_bound_with_targeted_message() {
        let err = parse_kernel(
            "kernel x { in A: i32[4]; out B: i32[4];
               for i in 0..n { B[i] = A[i]; } }",
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("must be a compile-time constant"),
            "{err}"
        );
    }

    #[test]
    fn rejects_unsupported_control_flow_keywords() {
        for stmt in ["while (1) { }", "break;", "continue;", "return;"] {
            let src = format!("kernel x {{ in A: i32[4]; for i in 0..4 {{ {stmt} }} }}");
            let err = parse_kernel(&src).unwrap_err();
            assert!(
                err.to_string().contains("unsupported control flow"),
                "{stmt}: {err}"
            );
        }
    }

    #[test]
    fn rejects_bad_subscript_with_span() {
        let src = "kernel x { in A: i32[16]; out B: i32[4];
               for i in 0..4 { B[i] = A[i * i]; } }";
        match parse_kernel(src).unwrap_err() {
            crate::IrError::NonAffine { expr, span } => {
                assert_eq!(expr, "i * i");
                assert_eq!(&src[span.start..span.end], "i * i");
            }
            other => panic!("expected NonAffine, got {other}"),
        }
    }

    #[test]
    fn rejects_duplicate_array_decl() {
        let err = parse_kernel(
            "kernel x { in A: i32[4]; in A: i32[8];
               for i in 0..4 { A[i] = A[i]; } }",
        )
        .unwrap_err();
        assert!(matches!(err, crate::IrError::Redeclared(_)), "{err}");
    }

    #[test]
    fn span_map_locates_entities() {
        let (k, spans) = parse_kernel_with_spans(FIR).unwrap();
        let d_span = spans.decl("D").unwrap();
        assert_eq!(&FIR[d_span.start..d_span.end], "D");
        assert!(spans.loop_header("j").is_some());
        assert!(spans.kernel_name().is_some());
        let (acc, _) = crate::stmt::collect_accesses(k.body())[0].clone();
        let a_span = spans.access(&acc).unwrap();
        assert_eq!(&FIR[a_span.start..a_span.end], "D[j]");
    }

    #[test]
    fn select_expression_parses() {
        let src = "kernel sel {
          in A: i32[8];
          out B: i32[8];
          for i in 0..8 { B[i] = A[i] > 0 ? A[i] : 0 - A[i]; }
        }";
        let k = parse_kernel(src).unwrap();
        let printed = print_kernel(&k);
        assert_eq!(parse_kernel(&printed).unwrap(), k);
    }

    #[test]
    fn abs_and_shift_parse() {
        let src = "kernel a {
          in A: i32[8];
          out B: i32[8];
          for i in 0..8 { B[i] = abs(A[i]) >> 2; }
        }";
        assert!(parse_kernel(src).is_ok());
    }
}
