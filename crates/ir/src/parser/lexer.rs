//! Hand-written lexer for the kernel DSL.

use crate::error::{IrError, Result};

/// The kind of a lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword.
    Ident(String),
    /// An unsigned integer literal (negation is an operator).
    Int(i64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `..`
    DotDot,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `?`
    Question,
    /// End of input sentinel.
    Eof,
}

/// A token with its source position (1-based line/column) and byte range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Line of the first character.
    pub line: usize,
    /// Column of the first character.
    pub col: usize,
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Token {
    /// The token's source span.
    pub fn span(&self) -> crate::span::Span {
        crate::span::Span::new(self.start, self.end, self.line, self.col)
    }
}

/// Tokenize `src`, appending an [`TokenKind::Eof`] sentinel.
///
/// Comments run from `//` to end of line. Whitespace separates tokens.
///
/// # Errors
///
/// Returns [`IrError::Parse`] on an unrecognized character or an integer
/// literal that overflows `i64`.
pub fn lex(src: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut off = 0; // byte offset of chars[i]
    let mut line = 1;
    let mut col = 1;

    // Single-character and symbol tokens are ASCII, so their byte length
    // equals their character length; only whitespace/comments may contain
    // wider characters, handled with `len_utf8` below.
    macro_rules! push {
        ($kind:expr, $len:expr, $l:expr, $c:expr) => {{
            tokens.push(Token {
                kind: $kind,
                line: $l,
                col: $c,
                start: off,
                end: off + $len,
            });
            i += $len;
            off += $len;
            col += $len;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let (tl, tc, toff) = (line, col, off);
        match c {
            '\n' => {
                i += 1;
                off += 1;
                line += 1;
                col = 1;
            }
            c if c.is_whitespace() => {
                i += 1;
                off += c.len_utf8();
                col += 1;
            }
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    off += chars[i].len_utf8();
                    i += 1;
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                col += i - start;
                off += i - start;
                tokens.push(Token {
                    kind: TokenKind::Ident(text),
                    line: tl,
                    col: tc,
                    start: toff,
                    end: off,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                col += i - start;
                off += i - start;
                let value: i64 = text.parse().map_err(|_| IrError::Parse {
                    line: tl,
                    col: tc,
                    msg: format!("integer literal `{text}` out of range"),
                })?;
                tokens.push(Token {
                    kind: TokenKind::Int(value),
                    line: tl,
                    col: tc,
                    start: toff,
                    end: off,
                });
            }
            '{' => push!(TokenKind::LBrace, 1, tl, tc),
            '}' => push!(TokenKind::RBrace, 1, tl, tc),
            '(' => push!(TokenKind::LParen, 1, tl, tc),
            ')' => push!(TokenKind::RParen, 1, tl, tc),
            '[' => push!(TokenKind::LBracket, 1, tl, tc),
            ']' => push!(TokenKind::RBracket, 1, tl, tc),
            ';' => push!(TokenKind::Semi, 1, tl, tc),
            ':' => push!(TokenKind::Colon, 1, tl, tc),
            ',' => push!(TokenKind::Comma, 1, tl, tc),
            '?' => push!(TokenKind::Question, 1, tl, tc),
            '+' => push!(TokenKind::Plus, 1, tl, tc),
            '-' => push!(TokenKind::Minus, 1, tl, tc),
            '*' => push!(TokenKind::Star, 1, tl, tc),
            '/' => push!(TokenKind::Slash, 1, tl, tc),
            '%' => push!(TokenKind::Percent, 1, tl, tc),
            '&' => push!(TokenKind::Amp, 1, tl, tc),
            '|' => push!(TokenKind::Pipe, 1, tl, tc),
            '^' => push!(TokenKind::Caret, 1, tl, tc),
            '~' => push!(TokenKind::Tilde, 1, tl, tc),
            '.' if chars.get(i + 1) == Some(&'.') => push!(TokenKind::DotDot, 2, tl, tc),
            '=' if chars.get(i + 1) == Some(&'=') => push!(TokenKind::EqEq, 2, tl, tc),
            '=' => push!(TokenKind::Assign, 1, tl, tc),
            '!' if chars.get(i + 1) == Some(&'=') => push!(TokenKind::Ne, 2, tl, tc),
            '<' if chars.get(i + 1) == Some(&'=') => push!(TokenKind::Le, 2, tl, tc),
            '<' if chars.get(i + 1) == Some(&'<') => push!(TokenKind::Shl, 2, tl, tc),
            '<' => push!(TokenKind::Lt, 1, tl, tc),
            '>' if chars.get(i + 1) == Some(&'=') => push!(TokenKind::Ge, 2, tl, tc),
            '>' if chars.get(i + 1) == Some(&'>') => push!(TokenKind::Shr, 2, tl, tc),
            '>' => push!(TokenKind::Gt, 1, tl, tc),
            other => {
                return Err(IrError::Parse {
                    line: tl,
                    col: tc,
                    msg: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
        col,
        start: off,
        end: off,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_symbols() {
        assert_eq!(
            kinds("a[i+1] = 2;"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::LBracket,
                TokenKind::Ident("i".into()),
                TokenKind::Plus,
                TokenKind::Int(1),
                TokenKind::RBracket,
                TokenKind::Assign,
                TokenKind::Int(2),
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_two_char_operators() {
        assert_eq!(
            kinds("== != <= >= << >> .."),
            vec![
                TokenKind::EqEq,
                TokenKind::Ne,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::Shl,
                TokenKind::Shr,
                TokenKind::DotDot,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("x // comment with symbols = + {\ny"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Ident("y".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn positions_track_lines_and_columns() {
        let toks = lex("ab\n  cd").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn byte_offsets_slice_back_to_source() {
        let src = "ab\n  cd[3]";
        for t in lex(src).unwrap() {
            let text = &src[t.start..t.end];
            match &t.kind {
                TokenKind::Ident(n) => assert_eq!(text, n),
                TokenKind::Int(v) => assert_eq!(text, v.to_string()),
                TokenKind::LBracket => assert_eq!(text, "["),
                TokenKind::RBracket => assert_eq!(text, "]"),
                TokenKind::Eof => assert!(text.is_empty()),
                other => panic!("unexpected token {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_unknown_character() {
        let err = lex("a $ b").unwrap_err();
        assert!(matches!(err, IrError::Parse { col: 3, .. }));
    }

    #[test]
    fn rejects_overflowing_literal() {
        assert!(lex("999999999999999999999999").is_err());
    }
}
