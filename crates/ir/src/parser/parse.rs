//! Recursive-descent parser for the kernel DSL.

use super::lexer::{Token, TokenKind};
use crate::affine::AffineExpr;
use crate::decl::{ArrayDecl, ArrayKind, ScalarDecl};
use crate::error::{IrError, Result};
use crate::expr::{ArrayAccess, BinOp, Expr, UnOp};
use crate::kernel::Kernel;
use crate::span::{Span, SpanMap};
use crate::stmt::{LValue, Loop, Stmt};
use crate::types::ScalarType;

/// Control-flow keywords of C-family languages the DSL deliberately does
/// not support; naming them yields a targeted diagnostic (DF004) instead
/// of a generic syntax error.
const UNSUPPORTED_CONTROL_FLOW: &[&str] = &[
    "while", "do", "break", "continue", "switch", "goto", "return",
];

/// Maximum statement/expression nesting the parser accepts. Recursive
/// descent means nesting costs native stack; a pathological input
/// (`((((…))))`, `-----x`, or a thousand nested `for`s) must come back as
/// a parse diagnostic, not a stack overflow.
const MAX_NESTING: usize = 64;

pub(crate) struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    spans: SpanMap,
    depth: usize,
}

impl Parser {
    pub(crate) fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            spans: SpanMap::default(),
            depth: 0,
        }
    }

    /// Enter one nesting level (statement or expression recursion),
    /// rejecting inputs deeper than [`MAX_NESTING`].
    fn enter(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > MAX_NESTING {
            Err(self.error(format!("nesting deeper than {MAX_NESTING} levels")))
        } else {
            Ok(())
        }
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    /// The span side-table accumulated while parsing.
    pub(crate) fn take_spans(self) -> SpanMap {
        self.spans
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn here(&self) -> (usize, usize) {
        let t = &self.tokens[self.pos];
        (t.line, t.col)
    }

    /// Span of the current token.
    fn span_here(&self) -> Span {
        self.tokens[self.pos].span()
    }

    /// Span of the most recently consumed token.
    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span()
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        k
    }

    fn error(&self, msg: impl Into<String>) -> IrError {
        let (line, col) = self.here();
        IrError::Parse {
            line,
            col,
            msg: msg.into(),
        }
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> Result<()> {
        if *self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(self.error(format!("expected {what}, found {other:?}"))),
        }
    }

    fn expect_int(&mut self, what: &str) -> Result<i64> {
        // Allow a leading minus on integer positions (loop bounds).
        let neg = if *self.peek() == TokenKind::Minus {
            self.bump();
            true
        } else {
            false
        };
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(if neg { -v } else { v })
            }
            other => Err(self.error(format!("expected {what}, found {other:?}"))),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let TokenKind::Ident(name) = self.peek() {
            if name == kw {
                self.bump();
                return true;
            }
        }
        false
    }

    pub(crate) fn parse_kernel(&mut self) -> Result<Kernel> {
        if !self.eat_keyword("kernel") {
            return Err(self.error("expected `kernel`"));
        }
        let name_span = self.span_here();
        let name = self.expect_ident("kernel name")?;
        self.spans.record_kernel_name(name_span);
        self.expect(TokenKind::LBrace, "`{`")?;

        let mut arrays = Vec::new();
        let mut scalars = Vec::new();
        loop {
            let kind = if self.eat_keyword("in") {
                Some(ArrayKind::In)
            } else if self.eat_keyword("out") {
                Some(ArrayKind::Out)
            } else if self.eat_keyword("inout") {
                Some(ArrayKind::InOut)
            } else {
                None
            };
            if let Some(kind) = kind {
                arrays.push(self.parse_array_decl(kind)?);
            } else if self.eat_keyword("var") {
                scalars.push(self.parse_scalar_decl()?);
            } else {
                break;
            }
        }

        let mut body = Vec::new();
        while *self.peek() != TokenKind::RBrace {
            body.push(self.parse_stmt()?);
        }
        self.expect(TokenKind::RBrace, "`}`")?;
        if *self.peek() != TokenKind::Eof {
            return Err(self.error("unexpected trailing input after kernel"));
        }
        Kernel::new(name, arrays, scalars, body)
    }

    fn parse_array_decl(&mut self, kind: ArrayKind) -> Result<ArrayDecl> {
        let name_span = self.span_here();
        let name = self.expect_ident("array name")?;
        self.spans.record_decl(&name, name_span);
        self.expect(TokenKind::Colon, "`:`")?;
        let ty = self.parse_type()?;
        let mut dims = Vec::new();
        while *self.peek() == TokenKind::LBracket {
            self.bump();
            let d = self.expect_int("array extent")?;
            if d <= 0 {
                return Err(self.error("array extent must be positive"));
            }
            dims.push(d as usize);
            self.expect(TokenKind::RBracket, "`]`")?;
        }
        if dims.is_empty() {
            return Err(self.error("array declaration needs at least one dimension"));
        }
        let mut decl = ArrayDecl::new(name, ty, dims, kind);
        if self.eat_keyword("range") {
            let lo = self.expect_int("range lower bound")?;
            self.expect(TokenKind::DotDot, "`..`")?;
            let hi = self.expect_int("range upper bound")?;
            if lo > hi || decl.ty.wrap(lo) != lo || decl.ty.wrap(hi) != hi {
                return Err(self.error(format!("range {lo}..{hi} invalid for type {}", decl.ty)));
            }
            decl.range = Some((lo, hi));
        }
        self.expect(TokenKind::Semi, "`;`")?;
        Ok(decl)
    }

    fn parse_scalar_decl(&mut self) -> Result<ScalarDecl> {
        let name_span = self.span_here();
        let name = self.expect_ident("scalar name")?;
        self.spans.record_decl(&name, name_span);
        self.expect(TokenKind::Colon, "`:`")?;
        let ty = self.parse_type()?;
        self.expect(TokenKind::Semi, "`;`")?;
        Ok(ScalarDecl::new(name, ty))
    }

    fn parse_type(&mut self) -> Result<ScalarType> {
        let name = self.expect_ident("type name")?;
        name.parse()
            .map_err(|_| self.error(format!("unknown type `{name}`")))
    }

    fn parse_stmt(&mut self) -> Result<Stmt> {
        self.enter()?;
        let stmt = self.parse_stmt_inner();
        self.leave();
        stmt
    }

    fn parse_stmt_inner(&mut self) -> Result<Stmt> {
        match self.peek().clone() {
            TokenKind::Ident(kw) if kw == "for" => self.parse_for(),
            TokenKind::Ident(kw) if kw == "if" => self.parse_if(),
            TokenKind::Ident(kw) if kw == "rotate" => self.parse_rotate(),
            TokenKind::Ident(kw) if UNSUPPORTED_CONTROL_FLOW.contains(&kw.as_str()) => Err(self
                .error(format!(
                    "unsupported control flow `{kw}`; only `for` loops, structured \
                     `if` and assignments are allowed"
                ))),
            TokenKind::Ident(_) => self.parse_assign(),
            other => Err(self.error(format!("expected statement, found {other:?}"))),
        }
    }

    /// Parse a loop bound, which must be a constant integer; a symbolic
    /// bound gets a dedicated message that lint maps to DF003.
    fn parse_loop_bound(&mut self, what: &str) -> Result<i64> {
        if let TokenKind::Ident(name) = self.peek() {
            let name = name.clone();
            return Err(self.error(format!(
                "{what} must be a compile-time constant, found `{name}`"
            )));
        }
        self.expect_int(what)
    }

    fn parse_for(&mut self) -> Result<Stmt> {
        let for_span = self.span_here();
        if !self.eat_keyword("for") {
            return Err(self.error("expected `for`"));
        }
        let var = self.expect_ident("loop variable")?;
        if !self.eat_keyword("in") {
            return Err(self.error("expected `in`"));
        }
        let lower = self.parse_loop_bound("loop lower bound")?;
        self.expect(TokenKind::DotDot, "`..`")?;
        let upper = self.parse_loop_bound("loop upper bound")?;
        let step = if self.eat_keyword("step") {
            self.expect_int("loop step")?
        } else {
            1
        };
        self.spans.record_loop(&var, for_span.to(self.prev_span()));
        self.expect(TokenKind::LBrace, "`{`")?;
        let mut body = Vec::new();
        while *self.peek() != TokenKind::RBrace {
            body.push(self.parse_stmt()?);
        }
        self.expect(TokenKind::RBrace, "`}`")?;
        Ok(Stmt::For(Loop {
            var,
            lower,
            upper,
            step,
            body,
        }))
    }

    fn parse_if(&mut self) -> Result<Stmt> {
        if !self.eat_keyword("if") {
            return Err(self.error("expected `if`"));
        }
        self.expect(TokenKind::LParen, "`(`")?;
        let cond = self.parse_expr()?;
        self.expect(TokenKind::RParen, "`)`")?;
        self.expect(TokenKind::LBrace, "`{`")?;
        let mut then_body = Vec::new();
        while *self.peek() != TokenKind::RBrace {
            then_body.push(self.parse_stmt()?);
        }
        self.expect(TokenKind::RBrace, "`}`")?;
        let mut else_body = Vec::new();
        if self.eat_keyword("else") {
            self.expect(TokenKind::LBrace, "`{`")?;
            while *self.peek() != TokenKind::RBrace {
                else_body.push(self.parse_stmt()?);
            }
            self.expect(TokenKind::RBrace, "`}`")?;
        }
        Ok(Stmt::If {
            cond,
            then_body,
            else_body,
        })
    }

    fn parse_rotate(&mut self) -> Result<Stmt> {
        if !self.eat_keyword("rotate") {
            return Err(self.error("expected `rotate`"));
        }
        self.expect(TokenKind::LParen, "`(`")?;
        let mut regs = vec![self.expect_ident("register name")?];
        while *self.peek() == TokenKind::Comma {
            self.bump();
            regs.push(self.expect_ident("register name")?);
        }
        self.expect(TokenKind::RParen, "`)`")?;
        self.expect(TokenKind::Semi, "`;`")?;
        Ok(Stmt::Rotate(regs))
    }

    fn parse_assign(&mut self) -> Result<Stmt> {
        let name_span = self.span_here();
        let name = self.expect_ident("assignment target")?;
        let lhs = if *self.peek() == TokenKind::LBracket {
            LValue::Array(self.parse_subscripts(name, name_span)?)
        } else {
            LValue::Scalar(name)
        };
        self.expect(TokenKind::Assign, "`=`")?;
        let rhs = self.parse_expr()?;
        self.expect(TokenKind::Semi, "`;`")?;
        Ok(Stmt::Assign { lhs, rhs })
    }

    fn parse_subscripts(&mut self, array: String, name_span: Span) -> Result<ArrayAccess> {
        let mut indices = Vec::new();
        while *self.peek() == TokenKind::LBracket {
            self.bump();
            let sub_start = self.span_here();
            let e = self.parse_expr()?;
            let sub_span = sub_start.to(self.prev_span());
            let affine = expr_to_affine(&e).ok_or_else(|| IrError::NonAffine {
                expr: crate::pretty::print_expr(&e, 0),
                span: sub_span,
            })?;
            indices.push(affine);
            self.expect(TokenKind::RBracket, "`]`")?;
        }
        let access = ArrayAccess { array, indices };
        self.spans
            .record_access(&access, name_span.to(self.prev_span()));
        Ok(access)
    }

    /// Expression parsing: ternary over precedence-climbing binary ops.
    fn parse_expr(&mut self) -> Result<Expr> {
        self.enter()?;
        let expr = self.parse_expr_inner();
        self.leave();
        expr
    }

    fn parse_expr_inner(&mut self) -> Result<Expr> {
        let cond = self.parse_binary(0)?;
        if *self.peek() == TokenKind::Question {
            self.bump();
            let t = self.parse_expr()?;
            self.expect(TokenKind::Colon, "`:`")?;
            let f = self.parse_expr()?;
            Ok(Expr::Select(Box::new(cond), Box::new(t), Box::new(f)))
        } else {
            Ok(cond)
        }
    }

    fn parse_binary(&mut self, min_prec: u8) -> Result<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            let (op, prec) = match self.peek() {
                TokenKind::Star => (BinOp::Mul, 10),
                TokenKind::Slash => (BinOp::Div, 10),
                TokenKind::Percent => (BinOp::Rem, 10),
                TokenKind::Plus => (BinOp::Add, 9),
                TokenKind::Minus => (BinOp::Sub, 9),
                TokenKind::Shl => (BinOp::Shl, 8),
                TokenKind::Shr => (BinOp::Shr, 8),
                TokenKind::Lt => (BinOp::Lt, 7),
                TokenKind::Le => (BinOp::Le, 7),
                TokenKind::Gt => (BinOp::Gt, 7),
                TokenKind::Ge => (BinOp::Ge, 7),
                TokenKind::EqEq => (BinOp::Eq, 6),
                TokenKind::Ne => (BinOp::Ne, 6),
                TokenKind::Amp => (BinOp::And, 5),
                TokenKind::Caret => (BinOp::Xor, 4),
                TokenKind::Pipe => (BinOp::Or, 3),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.parse_binary(prec + 1)?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        self.enter()?;
        let expr = match self.peek().clone() {
            TokenKind::Minus => {
                self.bump();
                self.parse_unary()
                    .map(|e| Expr::Unary(UnOp::Neg, Box::new(e)))
            }
            TokenKind::Tilde => {
                self.bump();
                self.parse_unary()
                    .map(|e| Expr::Unary(UnOp::Not, Box::new(e)))
            }
            _ => self.parse_primary(),
        };
        self.leave();
        expr
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect(TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            TokenKind::Ident(name) if name == "abs" && *self.peek2() == TokenKind::LParen => {
                self.bump();
                self.bump();
                let e = self.parse_expr()?;
                self.expect(TokenKind::RParen, "`)`")?;
                Ok(Expr::Unary(UnOp::Abs, Box::new(e)))
            }
            TokenKind::Ident(name) => {
                let name_span = self.span_here();
                self.bump();
                if *self.peek() == TokenKind::LBracket {
                    Ok(Expr::Load(self.parse_subscripts(name, name_span)?))
                } else {
                    Ok(Expr::Scalar(name))
                }
            }
            other => Err(self.error(format!("expected expression, found {other:?}"))),
        }
    }
}

/// Normalize a parsed arithmetic expression into affine form, treating
/// every scalar read as a variable. Returns `None` if the expression is
/// not affine (variable*variable, division, shifts, comparisons, loads...).
pub(crate) fn expr_to_affine(e: &Expr) -> Option<AffineExpr> {
    match e {
        Expr::Int(v) => Some(AffineExpr::constant(*v)),
        Expr::Scalar(n) => Some(AffineExpr::var(n.clone())),
        Expr::Unary(UnOp::Neg, inner) => expr_to_affine(inner).map(|a| -a),
        Expr::Binary(BinOp::Add, a, b) => Some(expr_to_affine(a)? + expr_to_affine(b)?),
        Expr::Binary(BinOp::Sub, a, b) => Some(expr_to_affine(a)? - expr_to_affine(b)?),
        Expr::Binary(BinOp::Mul, a, b) => {
            let ea = expr_to_affine(a)?;
            let eb = expr_to_affine(b)?;
            if ea.is_constant() {
                Some(eb * ea.constant_term())
            } else if eb.is_constant() {
                Some(ea * eb.constant_term())
            } else {
                None
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::lexer::lex;

    fn parse_expr_str(src: &str) -> Expr {
        let mut p = Parser::new(lex(src).unwrap());
        p.parse_expr().unwrap()
    }

    #[test]
    fn precedence_mul_over_add() {
        let e = parse_expr_str("a + b * c");
        match e {
            Expr::Binary(BinOp::Add, _, rhs) => {
                assert!(matches!(*rhs, Expr::Binary(BinOp::Mul, _, _)))
            }
            _ => panic!(),
        }
    }

    #[test]
    fn left_associativity() {
        let e = parse_expr_str("a - b - c");
        match e {
            Expr::Binary(BinOp::Sub, lhs, _) => {
                assert!(matches!(*lhs, Expr::Binary(BinOp::Sub, _, _)))
            }
            _ => panic!(),
        }
    }

    #[test]
    fn affine_normalization() {
        let e = parse_expr_str("2*i + j - 3");
        let a = expr_to_affine(&e).unwrap();
        assert_eq!(a.coeff("i"), 2);
        assert_eq!(a.coeff("j"), 1);
        assert_eq!(a.constant_term(), -3);

        // i*2 (constant on the right) also works.
        let a2 = expr_to_affine(&parse_expr_str("i*2 - (j - 1)")).unwrap();
        assert_eq!(a2.coeff("i"), 2);
        assert_eq!(a2.coeff("j"), -1);
        assert_eq!(a2.constant_term(), 1);

        assert!(expr_to_affine(&parse_expr_str("i * j")).is_none());
        assert!(expr_to_affine(&parse_expr_str("i / 2")).is_none());
    }

    #[test]
    fn unary_chains() {
        let e = parse_expr_str("--x");
        assert_eq!(
            e,
            Expr::Unary(
                UnOp::Neg,
                Box::new(Expr::Unary(UnOp::Neg, Box::new(Expr::scalar("x"))))
            )
        );
    }
}
