//! Byte-offset source spans and the span side-table.
//!
//! Spans deliberately live *outside* the AST: `Kernel` derives `Eq` and the
//! pretty-printer round-trip tests compare parsed kernels structurally, so
//! attaching positions to nodes would make `parse(print(k)) != k`. Instead
//! [`crate::parser::parse_kernel_with_spans`] returns a [`SpanMap`] keyed by
//! the entities diagnostics point at: declarations, loop headers and array
//! accesses.

use crate::expr::ArrayAccess;
use std::collections::HashMap;

/// A half-open byte range `[start, end)` in kernel source text, together
/// with the 1-based line/column of its first byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: usize,
    /// 1-based column of the first byte.
    pub col: usize,
}

impl Span {
    /// Build a span from explicit byte offsets and position.
    pub fn new(start: usize, end: usize, line: usize, col: usize) -> Span {
        Span {
            start,
            end,
            line,
            col,
        }
    }

    /// Compute a length-`len` span from a 1-based line/column position by
    /// scanning `src`. Used to recover spans for errors that only carry
    /// line/column (e.g. [`crate::IrError::Parse`]).
    pub fn from_line_col(src: &str, line: usize, col: usize, len: usize) -> Span {
        let mut start = 0;
        for (n, l) in src.split('\n').enumerate() {
            if n + 1 == line {
                let in_line: usize = l
                    .chars()
                    .take(col.saturating_sub(1))
                    .map(char::len_utf8)
                    .sum();
                start += in_line;
                break;
            }
            start += l.len() + 1;
        }
        Span {
            start,
            end: start + len.max(1),
            line,
            col,
        }
    }

    /// Number of bytes covered.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// Whether the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// The span from the start of `self` to the end of `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start,
            end: other.end.max(self.end),
            line: self.line,
            col: self.col,
        }
    }
}

/// Side table mapping kernel entities to their source spans.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanMap {
    kernel_name: Option<Span>,
    decls: HashMap<String, Span>,
    loops: HashMap<String, Span>,
    accesses: HashMap<ArrayAccess, Span>,
}

impl SpanMap {
    /// Record the span of the kernel name.
    pub fn record_kernel_name(&mut self, span: Span) {
        self.kernel_name = Some(span);
    }

    /// Record the span of a declaration's name token.
    pub fn record_decl(&mut self, name: &str, span: Span) {
        self.decls.entry(name.to_string()).or_insert(span);
    }

    /// Record the span of a loop header (`for v in lo..hi`).
    pub fn record_loop(&mut self, var: &str, span: Span) {
        self.loops.entry(var.to_string()).or_insert(span);
    }

    /// Record the span of an array access. The first textual occurrence of
    /// a given access wins, so diagnostics about a repeated access (e.g.
    /// `D[j]` as both load and store) point at its first appearance.
    pub fn record_access(&mut self, access: &ArrayAccess, span: Span) {
        self.accesses.entry(access.clone()).or_insert(span);
    }

    /// Span of the kernel name, if recorded.
    pub fn kernel_name(&self) -> Option<Span> {
        self.kernel_name
    }

    /// Span of a declaration's name token.
    pub fn decl(&self, name: &str) -> Option<Span> {
        self.decls.get(name).copied()
    }

    /// Span of the header of the loop over `var`.
    pub fn loop_header(&self, var: &str) -> Option<Span> {
        self.loops.get(var).copied()
    }

    /// Span of the first textual occurrence of `access`.
    pub fn access(&self, access: &ArrayAccess) -> Option<Span> {
        self.accesses.get(access).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_line_col_finds_offsets() {
        let src = "ab\n  cd\nxy";
        let s = Span::from_line_col(src, 2, 3, 2);
        assert_eq!(&src[s.start..s.end], "cd");
        assert_eq!((s.line, s.col), (2, 3));
    }

    #[test]
    fn from_line_col_past_end_does_not_panic() {
        let s = Span::from_line_col("ab", 5, 1, 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn to_unions_spans() {
        let a = Span::new(3, 5, 1, 4);
        let b = Span::new(8, 12, 1, 9);
        let u = a.to(b);
        assert_eq!((u.start, u.end), (3, 12));
        assert_eq!((u.line, u.col), (1, 4));
    }

    #[test]
    fn first_access_occurrence_wins() {
        let mut m = SpanMap::default();
        let acc = ArrayAccess {
            array: "D".into(),
            indices: vec![],
        };
        m.record_access(&acc, Span::new(1, 2, 1, 2));
        m.record_access(&acc, Span::new(9, 10, 1, 10));
        assert_eq!(m.access(&acc).unwrap().start, 1);
    }
}
