//! Scalar element types supported by the kernel language.
//!
//! The paper's target domain is multimedia: image and signal processing on
//! 8- and 16-bit data, plus 32-bit integer accumulation. Bit widths matter
//! throughout the system — the balance metric is defined over *data bits*
//! fetched and consumed per cycle, and operator area scales with width.

use std::fmt;
use std::str::FromStr;

/// A fixed-width integer element type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScalarType {
    /// Signed 8-bit integer.
    I8,
    /// Signed 16-bit integer.
    I16,
    /// Signed 32-bit integer.
    I32,
    /// Unsigned 8-bit integer.
    U8,
    /// Unsigned 16-bit integer.
    U16,
    /// Unsigned 32-bit integer.
    U32,
}

impl ScalarType {
    /// Width of the type in bits.
    ///
    /// ```
    /// use defacto_ir::ScalarType;
    /// assert_eq!(ScalarType::I16.bits(), 16);
    /// ```
    pub fn bits(self) -> u32 {
        match self {
            ScalarType::I8 | ScalarType::U8 => 8,
            ScalarType::I16 | ScalarType::U16 => 16,
            ScalarType::I32 | ScalarType::U32 => 32,
        }
    }

    /// Whether values of this type are sign-extended.
    pub fn is_signed(self) -> bool {
        matches!(self, ScalarType::I8 | ScalarType::I16 | ScalarType::I32)
    }

    /// Wrap an arbitrary integer into this type's value range, mirroring the
    /// two's-complement truncation a hardware datapath of this width
    /// performs.
    ///
    /// ```
    /// use defacto_ir::ScalarType;
    /// assert_eq!(ScalarType::U8.wrap(257), 1);
    /// assert_eq!(ScalarType::I8.wrap(130), -126);
    /// assert_eq!(ScalarType::I32.wrap(-5), -5);
    /// ```
    pub fn wrap(self, v: i64) -> i64 {
        match self {
            ScalarType::I8 => v as i8 as i64,
            ScalarType::I16 => v as i16 as i64,
            ScalarType::I32 => v as i32 as i64,
            ScalarType::U8 => v as u8 as i64,
            ScalarType::U16 => v as u16 as i64,
            ScalarType::U32 => v as u32 as i64,
        }
    }

    /// All supported types, in declaration order.
    pub fn all() -> [ScalarType; 6] {
        [
            ScalarType::I8,
            ScalarType::I16,
            ScalarType::I32,
            ScalarType::U8,
            ScalarType::U16,
            ScalarType::U32,
        ]
    }
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ScalarType::I8 => "i8",
            ScalarType::I16 => "i16",
            ScalarType::I32 => "i32",
            ScalarType::U8 => "u8",
            ScalarType::U16 => "u16",
            ScalarType::U32 => "u32",
        };
        f.write_str(s)
    }
}

impl FromStr for ScalarType {
    type Err = crate::IrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "i8" => Ok(ScalarType::I8),
            "i16" => Ok(ScalarType::I16),
            "i32" => Ok(ScalarType::I32),
            "u8" => Ok(ScalarType::U8),
            "u16" => Ok(ScalarType::U16),
            "u32" => Ok(ScalarType::U32),
            other => Err(crate::IrError::Invalid(format!(
                "unknown scalar type `{other}`"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_and_signedness() {
        assert_eq!(ScalarType::I8.bits(), 8);
        assert_eq!(ScalarType::U32.bits(), 32);
        assert!(ScalarType::I16.is_signed());
        assert!(!ScalarType::U16.is_signed());
    }

    #[test]
    fn wrap_preserves_in_range_values() {
        for t in ScalarType::all() {
            assert_eq!(t.wrap(0), 0);
            assert_eq!(t.wrap(1), 1);
            if t.is_signed() {
                assert_eq!(t.wrap(-1), -1);
            }
        }
    }

    #[test]
    fn wrap_truncates() {
        assert_eq!(ScalarType::U8.wrap(256), 0);
        assert_eq!(ScalarType::U8.wrap(-1), 255);
        assert_eq!(ScalarType::I16.wrap(32768), -32768);
        assert_eq!(ScalarType::U16.wrap(65536 + 7), 7);
        assert_eq!(ScalarType::I32.wrap(1 << 33), 0);
    }

    #[test]
    fn display_round_trips_through_from_str() {
        for t in ScalarType::all() {
            let s = t.to_string();
            assert_eq!(s.parse::<ScalarType>().unwrap(), t);
        }
        assert!("f32".parse::<ScalarType>().is_err());
    }
}
