//! The `defacto` command-line tool: FPGA design space exploration for
//! kernel files. See [`defacto_cli::USAGE`] or run with no arguments.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match defacto_cli::parse_args(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    // `fuzz` generates its own kernels and has no file argument.
    let source = if cli.file.is_empty() {
        String::new()
    } else {
        match std::fs::read_to_string(&cli.file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read `{}`: {e}", cli.file);
                return ExitCode::from(1);
            }
        }
    };
    match defacto_cli::run(&cli, &source) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}
