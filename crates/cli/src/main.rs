//! The `defacto` command-line tool: FPGA design space exploration for
//! kernel files. See [`defacto_cli::USAGE`] or run with no arguments.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match defacto_cli::parse_args(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    // `watch` streams per-edit results; bypass the buffered `run` path
    // so lines appear as each re-exploration completes.
    if cli.command == defacto_cli::Command::Watch {
        let mut stdout = std::io::stdout().lock();
        return match defacto_cli::run_watch(&cli, &mut stdout) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(1)
            }
        };
    }
    // `fuzz` generates its own kernels and has no file argument.
    let source = if cli.file.is_empty() {
        String::new()
    } else {
        match std::fs::read_to_string(&cli.file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read `{}`: {e}", cli.file);
                return ExitCode::from(1);
            }
        }
    };
    match defacto_cli::run(&cli, &source) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}
