//! Implementation of the `defacto` command-line tool.
//!
//! ```text
//! defacto explore <file> [options]   run the balance-guided search
//! defacto lint    <file> [options]   report DF0xx diagnostics for the kernel
//! defacto audit   <file> [options]   trace the search and verify invariants
//! defacto sweep   <file> [options]   evaluate every design in the space
//! defacto analyze <file> [options]   saturation & dependence analysis
//! defacto vhdl    <file> [options]   emit behavioral VHDL
//! defacto schedule <file> [options]  Gantt chart of the steady-state body
//! defacto watch   <file> [options]   re-explore on every file change
//! defacto fuzz [options]             differential fuzz campaign (no file)
//!
//! options:
//!   --memory pipelined|non-pipelined   memory model   (default pipelined)
//!   --memories N                       external memories (default 4)
//!   --device xcv300|xcv1000|xc2v6000   target device  (default xcv1000)
//!   --unroll a,b,...                   fixed unroll vector (vhdl; default: explore)
//!   --axes a,b,... | all               joint-space axes for explore/sweep/analyze:
//!                                      unroll|interchange|tile|narrow|pack
//!                                      (default: classic unroll-only space)
//!   --strategy S                       joint-search strategy for `explore --axes`:
//!                                      exhaustive|coordinate-descent|branch-and-bound
//!                                      (default branch-and-bound — guided)
//!   --threads N                        evaluation worker threads
//!                                      (default: DEFACTO_THREADS or all cores)
//!   --trace FILE                       write the search trace as JSONL
//!   --verify                           re-verify IR invariants after every pass
//!   --fidelity full|multi|analytic     evaluation fidelity (default full)
//!   --cache-dir DIR                    persistent content-addressed estimate
//!                                      cache (default: DEFACTO_CACHE_DIR)
//!   --json                             machine-readable output
//!
//! watch options:
//!   --poll-ms N                        file poll interval (default 200)
//!   --max-runs N                       exit after N explorations (default: forever)
//!
//! fuzz options:
//!   --seed N                           campaign seed     (default 7)
//!   --count M                          kernels to generate (default 300)
//!   --smoke                            faster per-case oracle budget for CI
//! ```
//!
//! Environment: `DEFACTO_THREADS` and `DEFACTO_CACHE_DIR` act as defaults
//! for `--threads` and `--cache-dir`. Malformed values (zero, garbage,
//! blank) are *errors*, not silent fallbacks.
//!
//! `lint` exits non-zero when it reports anything; `explore` runs the
//! linter first and refuses kernels with lint *errors*.
//!
//! The binary is a thin wrapper over [`run`], which is fully testable.

use defacto::cache::PersistentCache;
use defacto::engine::EvalEngine;
use defacto::trace::JsonlSink;
use defacto::{audit_search_trace, prelude::*, to_jsonl, Axis, Fidelity};
use defacto_synth::{describe_schedule, emit_vhdl, main_body_schedule};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// Which subcommand to run.
    pub command: Command,
    /// Path of the kernel file.
    pub file: String,
    /// Memory model.
    pub memory: MemoryModel,
    /// Target device.
    pub device: FpgaDevice,
    /// Fixed unroll vector, when given.
    pub unroll: Option<UnrollVector>,
    /// Joint-space axes (`explore`/`sweep`/`analyze`; `None`: the
    /// classic unroll-only space).
    pub axes: Option<Vec<Axis>>,
    /// Joint-search strategy (`explore --axes` only; `None`: the guided
    /// default, [`StrategyKind::BranchAndBound`]).
    pub strategy: Option<StrategyKind>,
    /// Evaluation worker threads (`None`: `DEFACTO_THREADS` or all cores).
    pub threads: Option<usize>,
    /// Write the search trace to this JSONL file.
    pub trace: Option<String>,
    /// Run the IR verifier after every transformation pass.
    pub verify: bool,
    /// Evaluation fidelity (tier-0 analytic / multi-fidelity / full).
    pub fidelity: Fidelity,
    /// Persistent estimate-cache directory (`None`: `DEFACTO_CACHE_DIR`
    /// or no persistence).
    pub cache_dir: Option<String>,
    /// File poll interval in milliseconds (`watch` only).
    pub poll_ms: u64,
    /// Exit after this many explorations (`watch` only; `None`: forever).
    pub max_runs: Option<u64>,
    /// Snapshot of `DEFACTO_THREADS` taken at parse time (strictly
    /// validated by [`effective_threads`]).
    pub threads_env: Option<String>,
    /// Snapshot of `DEFACTO_CACHE_DIR` taken at parse time (strictly
    /// validated by [`effective_cache_dir`]).
    pub cache_dir_env: Option<String>,
    /// Emit JSON instead of tables.
    pub json: bool,
    /// Campaign seed (`fuzz` only).
    pub seed: u64,
    /// Kernels to generate (`fuzz` only).
    pub count: usize,
    /// Reduced per-case oracle budget for CI smoke runs (`fuzz` only).
    pub smoke: bool,
}

/// The tool's subcommands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Balance-guided search.
    Explore,
    /// Kernel lint: structured `DF0xx` diagnostics.
    Lint,
    /// Trace the search and replay the trace against the paper's
    /// invariants.
    Audit,
    /// Exhaustive sweep.
    Sweep,
    /// Saturation/dependence analysis only.
    Analyze,
    /// Behavioral VHDL emission.
    Vhdl,
    /// ASCII Gantt chart of the steady-state innermost body's schedule.
    Schedule,
    /// Re-explore the kernel on every file change, streaming per-edit
    /// stats (requires a persistent cache directory).
    Watch,
    /// Differential fuzz campaign over generated kernels (takes no file).
    Fuzz,
}

/// Errors surfaced to the user with exit code 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageError(pub String);

impl std::fmt::Display for UsageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for UsageError {}

/// `lint` found something: the rendered diagnostics plus a summary. The
/// binary surfaces this with a non-zero exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFailure {
    /// Number of error-severity diagnostics.
    pub errors: usize,
    /// Number of warning-severity diagnostics.
    pub warnings: usize,
    /// The diagnostics, already rendered (human or JSON per `--json`).
    pub rendered: String,
}

impl std::fmt::Display for LintFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "lint reported {} error(s), {} warning(s)",
            self.errors, self.warnings
        )?;
        write!(f, "{}", self.rendered)
    }
}

impl std::error::Error for LintFailure {}

/// The usage string printed on bad invocations.
pub const USAGE: &str = "usage: defacto <explore|lint|audit|sweep|analyze|vhdl|schedule|watch> \
<file.kernel> [--memory pipelined|non-pipelined] [--memories N] \
[--device xcv300|xcv1000|xc2v6000] [--unroll a,b,...] [--axes a,b,...|all] \
[--strategy exhaustive|coordinate-descent|branch-and-bound] [--threads N] \
[--trace FILE] [--verify] [--fidelity full|multi|analytic] [--cache-dir DIR] [--json]\n\
       defacto watch <file.kernel> [--cache-dir DIR] [--poll-ms N] [--max-runs N] [--json]\n\
       defacto fuzz [--seed N] [--count M] [--smoke] [--json]";

/// Parse command-line arguments (without the program name).
///
/// # Errors
///
/// Returns [`UsageError`] for unknown commands, flags or malformed
/// values.
pub fn parse_args(args: &[String]) -> Result<Cli, UsageError> {
    let mut it = args.iter();
    let command = match it.next().map(String::as_str) {
        Some("explore") => Command::Explore,
        Some("lint") => Command::Lint,
        Some("audit") => Command::Audit,
        Some("sweep") => Command::Sweep,
        Some("analyze") => Command::Analyze,
        Some("vhdl") => Command::Vhdl,
        Some("schedule") => Command::Schedule,
        Some("watch") => Command::Watch,
        Some("fuzz") => Command::Fuzz,
        Some(other) => return Err(UsageError(format!("unknown command `{other}`\n{USAGE}"))),
        None => return Err(UsageError(USAGE.to_string())),
    };
    // `fuzz` generates its own kernels; every other command reads one.
    let file = if command == Command::Fuzz {
        String::new()
    } else {
        it.next()
            .ok_or_else(|| UsageError(format!("missing kernel file\n{USAGE}")))?
            .clone()
    };

    let mut memories = 4usize;
    let mut pipelined = true;
    let mut device = FpgaDevice::virtex1000();
    let mut unroll = None;
    let mut axes = None;
    let mut strategy = None;
    let mut threads = None;
    let mut trace = None;
    let mut verify = false;
    let mut fidelity = Fidelity::Full;
    let mut cache_dir = None;
    let mut poll_ms = 200u64;
    let mut max_runs = None;
    let mut json = false;
    let mut seed = 7u64;
    let mut count = 300usize;
    let mut smoke = false;

    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--memory" => match it.next().map(String::as_str) {
                Some("pipelined") => pipelined = true,
                Some("non-pipelined") => pipelined = false,
                other => {
                    return Err(UsageError(format!(
                        "--memory expects pipelined|non-pipelined, got {other:?}"
                    )))
                }
            },
            "--memories" => {
                let v = it
                    .next()
                    .and_then(|s| s.parse::<usize>().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| UsageError("--memories expects a positive integer".into()))?;
                memories = v;
            }
            "--device" => {
                device = match it.next().map(String::as_str) {
                    Some("xcv300") => FpgaDevice::virtex300(),
                    Some("xcv1000") => FpgaDevice::virtex1000(),
                    Some("xc2v6000") => FpgaDevice::virtex2_6000(),
                    other => {
                        return Err(UsageError(format!(
                            "--device expects xcv300|xcv1000|xc2v6000, got {other:?}"
                        )))
                    }
                };
            }
            "--unroll" => {
                let text = it
                    .next()
                    .ok_or_else(|| UsageError("--unroll expects a,b,...".into()))?;
                let factors: Result<Vec<i64>, _> =
                    text.split(',').map(|t| t.trim().parse::<i64>()).collect();
                let factors =
                    factors.map_err(|_| UsageError(format!("bad unroll vector `{text}`")))?;
                if factors.iter().any(|&f| f < 1) {
                    return Err(UsageError(format!("bad unroll vector `{text}`")));
                }
                unroll = Some(UnrollVector(factors));
            }
            "--axes"
                if matches!(
                    command,
                    Command::Explore | Command::Sweep | Command::Analyze
                ) =>
            {
                let text = it.next().ok_or_else(|| {
                    UsageError(
                        "--axes expects a comma-separated list of \
                         unroll|interchange|tile|narrow|pack, or `all`"
                            .into(),
                    )
                })?;
                axes = Some(parse_axes(text)?);
            }
            "--strategy" if command == Command::Explore => {
                // Strictly validated, like --threads/--cache-dir: a
                // missing, blank or unknown value is a typed error,
                // never a silent fall-back to the guided default.
                let text = it.next().filter(|s| !s.trim().is_empty()).ok_or_else(|| {
                    UsageError(
                        "--strategy expects exhaustive|coordinate-descent|branch-and-bound".into(),
                    )
                })?;
                strategy = Some(text.trim().parse::<StrategyKind>().map_err(UsageError)?);
            }
            "--threads" => {
                let v = it
                    .next()
                    .and_then(|s| s.parse::<usize>().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| UsageError("--threads expects a positive integer".into()))?;
                threads = Some(v);
            }
            "--trace" => {
                let path = it
                    .next()
                    .ok_or_else(|| UsageError("--trace expects a file path".into()))?;
                trace = Some(path.clone());
            }
            "--verify" => verify = true,
            "--fidelity" => {
                let v = it
                    .next()
                    .ok_or_else(|| UsageError("--fidelity expects full|multi|analytic".into()))?;
                fidelity = v.parse::<Fidelity>().map_err(UsageError)?;
            }
            "--cache-dir" => {
                let dir = it
                    .next()
                    .filter(|s| !s.trim().is_empty())
                    .ok_or_else(|| UsageError("--cache-dir expects a directory path".into()))?;
                cache_dir = Some(dir.clone());
            }
            "--poll-ms" if command == Command::Watch => {
                poll_ms = it
                    .next()
                    .and_then(|s| s.parse::<u64>().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| UsageError("--poll-ms expects a positive integer".into()))?;
            }
            "--max-runs" if command == Command::Watch => {
                let v = it
                    .next()
                    .and_then(|s| s.parse::<u64>().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| UsageError("--max-runs expects a positive integer".into()))?;
                max_runs = Some(v);
            }
            "--json" => json = true,
            "--seed" if command == Command::Fuzz => {
                seed = it
                    .next()
                    .and_then(|s| s.parse::<u64>().ok())
                    .ok_or_else(|| UsageError("--seed expects an unsigned integer".into()))?;
            }
            "--count" if command == Command::Fuzz => {
                count = it
                    .next()
                    .and_then(|s| s.parse::<usize>().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| UsageError("--count expects a positive integer".into()))?;
            }
            "--smoke" if command == Command::Fuzz => smoke = true,
            other => return Err(UsageError(format!("unknown flag `{other}`\n{USAGE}"))),
        }
    }

    if strategy.is_some() && axes.is_none() {
        return Err(UsageError(
            "--strategy requires --axes (a joint space to search)".into(),
        ));
    }
    let memory = if pipelined {
        MemoryModel::pipelined(memories)
    } else {
        MemoryModel::non_pipelined(memories)
    };
    Ok(Cli {
        command,
        file,
        memory,
        device,
        unroll,
        axes,
        strategy,
        threads,
        trace,
        verify,
        fidelity,
        cache_dir,
        poll_ms,
        max_runs,
        threads_env: std::env::var("DEFACTO_THREADS").ok(),
        cache_dir_env: std::env::var("DEFACTO_CACHE_DIR").ok(),
        json,
        seed,
        count,
        smoke,
    })
}

/// Parse a `--axes` value: a comma-separated subset of
/// `unroll|interchange|tile|narrow|pack` (no duplicates), or the
/// shorthand `all`. Strictly validated — garbage, an unknown axis, or
/// an empty list is a typed [`UsageError`], never a panic or a silent
/// default.
fn parse_axes(text: &str) -> Result<Vec<Axis>, UsageError> {
    if text.trim() == "all" {
        return Ok(Axis::ALL.to_vec());
    }
    if text.trim().is_empty() {
        return Err(UsageError(
            "--axes expects a comma-separated list of \
             unroll|interchange|tile|narrow|pack, or `all`"
                .into(),
        ));
    }
    let mut axes = Vec::new();
    for part in text.split(',') {
        let axis = part.trim().parse::<Axis>().map_err(UsageError)?;
        if axes.contains(&axis) {
            return Err(UsageError(format!("duplicate axis `{axis}` in --axes")));
        }
        axes.push(axis);
    }
    Ok(axes)
}

/// The worker-thread request in effect: the `--threads` flag, else a
/// *strictly validated* `DEFACTO_THREADS` environment variable. Unlike
/// the library's lenient resolution (which treats garbage as absent),
/// the CLI rejects malformed values — a typo must not silently change
/// the worker count.
///
/// # Errors
///
/// [`UsageError`] when `DEFACTO_THREADS` is set but not a positive
/// integer.
pub fn effective_threads(cli: &Cli) -> Result<Option<usize>, UsageError> {
    if cli.threads.is_some() {
        return Ok(cli.threads);
    }
    match &cli.threads_env {
        Some(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => Ok(Some(n)),
            _ => Err(UsageError(format!(
                "DEFACTO_THREADS must be a positive integer, got `{raw}`"
            ))),
        },
        None => Ok(None),
    }
}

/// The persistent-cache directory in effect: the `--cache-dir` flag,
/// else the `DEFACTO_CACHE_DIR` environment variable. Blank values are
/// rejected, not treated as "no cache".
///
/// # Errors
///
/// [`UsageError`] when `DEFACTO_CACHE_DIR` is set but blank.
pub fn effective_cache_dir(cli: &Cli) -> Result<Option<PathBuf>, UsageError> {
    if let Some(dir) = &cli.cache_dir {
        return Ok(Some(PathBuf::from(dir)));
    }
    match &cli.cache_dir_env {
        Some(raw) if raw.trim().is_empty() => Err(UsageError(
            "DEFACTO_CACHE_DIR must name a directory, got a blank value".into(),
        )),
        Some(raw) => Ok(Some(PathBuf::from(raw))),
        None => Ok(None),
    }
}

/// Open the persistent cache for `cli`, if one is configured.
///
/// # Errors
///
/// [`UsageError`] for malformed configuration, or the I/O error when the
/// directory cannot be created.
fn open_store(cli: &Cli) -> Result<Option<Arc<PersistentCache>>, Box<dyn std::error::Error>> {
    match effective_cache_dir(cli)? {
        None => Ok(None),
        Some(dir) => Ok(Some(Arc::new(PersistentCache::open(&dir).map_err(
            |e| UsageError(format!("cannot open cache dir `{}`: {e}", dir.display())),
        )?))),
    }
}

/// Run a parsed command against kernel source text, producing the output
/// string (the binary prints it).
///
/// # Errors
///
/// Propagates parse/exploration failures as boxed errors.
pub fn run(cli: &Cli, source: &str) -> Result<String, Box<dyn std::error::Error>> {
    if cli.command == Command::Lint {
        return run_lint(cli, source);
    }
    if cli.command == Command::Fuzz {
        return run_fuzz(cli);
    }
    if cli.command == Command::Watch {
        let mut streamed = Vec::new();
        run_watch(cli, &mut streamed)?;
        return Ok(String::from_utf8_lossy(&streamed).into_owned());
    }
    let threads = effective_threads(cli)?;
    let store = open_store(cli)?;
    let kernel = parse_kernel(source)?;
    let mut explorer = Explorer::new(&kernel)
        .memory(cli.memory.clone())
        .device(cli.device.clone())
        .verify_each_pass(cli.verify)
        .fidelity(cli.fidelity);
    if let Some(n) = threads {
        explorer = explorer.threads(n);
    }
    if let Some(store) = &store {
        explorer = explorer.persistent(store.clone());
    }
    if let Some(axes) = &cli.axes {
        explorer = explorer.axes(axes);
    }
    let mut out = String::new();

    match cli.command {
        Command::Lint | Command::Fuzz | Command::Watch => unreachable!("handled above"),
        Command::Explore if cli.axes.is_some() => {
            // Joint exploration: the same lint gate as the classic
            // search, then the selected strategy over the joint space —
            // guided (branch-and-bound) unless --strategy says otherwise.
            let lint = full_lint(&explorer, source);
            if lint.has_errors() {
                return Err(Box::new(LintFailure {
                    errors: lint.error_count(),
                    warnings: lint.warning_count(),
                    rendered: defacto::ir::diag::render_all_human(&lint.diagnostics, Some(source)),
                }));
            }
            let jsonl = match &cli.trace {
                Some(path) => {
                    let sink = Arc::new(JsonlSink::create(path)?);
                    explorer = explorer.trace(sink.clone());
                    Some(sink)
                }
                None => None,
            };
            let kind = cli.strategy.unwrap_or_default();
            let r = explorer.joint_explore(kind)?;
            if let Some(sink) = jsonl {
                sink.flush()?;
            }
            if cli.json {
                let selected = r.selected.as_ref().map(|d| {
                    serde_json::json!({
                        "unroll": d.point.unroll,
                        "permutation": d.point.permutation,
                        "tile": d.point.tile,
                        "narrow": d.point.narrow,
                        "pack": d.point.pack,
                        "cycles": d.estimate.cycles,
                        "slices": d.estimate.slices,
                        "fits": d.estimate.fits,
                    })
                });
                out.push_str(&serde_json::to_string_pretty(&serde_json::json!({
                    "kernel": kernel.name(),
                    "strategy": r.strategy.label(),
                    "selected": selected,
                    "visited": r.stats.strategy_visited,
                    "pruned": r.pruned,
                    "space_points": r.space_points,
                    "gap_cycles": r.gap_cycles,
                    "fidelity": cli.fidelity.label(),
                    "stats": serde_json::json!({
                        "evaluated": r.stats.evaluated,
                        "cache_hits": r.stats.cache_hits,
                        "workers": r.stats.workers,
                        "wall_ms": r.stats.wall.as_secs_f64() * 1e3,
                    }),
                }))?);
            } else {
                writeln!(out, "kernel `{}` on {}", kernel.name(), cli.device)?;
                match r.selected.as_ref() {
                    Some(d) => {
                        let perm: Vec<String> =
                            d.point.permutation.iter().map(usize::to_string).collect();
                        writeln!(
                            out,
                            "strategy {} selected unroll {} perm [{}] tile {} narrow {} \
                             pack {} -> {} cycles, {} slices",
                            r.strategy,
                            d.point.unroll_vector(),
                            perm.join(","),
                            d.point
                                .tile
                                .map_or_else(|| "-".into(), |(l, t)| format!("L{l}x{t}")),
                            d.point.narrow,
                            d.point.pack,
                            d.estimate.cycles,
                            d.estimate.slices
                        )?;
                    }
                    None => {
                        writeln!(out, "strategy {}: no evaluated design fits", r.strategy)?;
                    }
                }
                writeln!(
                    out,
                    "visited {} of {} joint points ({} pruned by tier-0 bounds){}",
                    r.stats.strategy_visited,
                    r.space_points,
                    r.pruned,
                    match r.gap_cycles {
                        Some(g) => format!(", optimality gap <= {g} cycles"),
                        None => String::new(),
                    }
                )?;
            }
        }
        Command::Explore => {
            // Gate the search on the linter: a kernel with lint errors
            // would fail (or mislead) mid-search anyway; report the
            // diagnostics up front instead. Warnings do not block.
            let lint = full_lint(&explorer, source);
            if lint.has_errors() {
                return Err(Box::new(LintFailure {
                    errors: lint.error_count(),
                    warnings: lint.warning_count(),
                    rendered: defacto::ir::diag::render_all_human(&lint.diagnostics, Some(source)),
                }));
            }
            let jsonl = match &cli.trace {
                Some(path) => {
                    let sink = Arc::new(JsonlSink::create(path)?);
                    explorer = explorer.trace(sink.clone());
                    Some(sink)
                }
                None => None,
            };
            let r = explorer.explore()?;
            if let Some(sink) = jsonl {
                sink.flush()?;
            }
            if cli.json {
                out.push_str(&serde_json::to_string_pretty(&serde_json::json!({
                    "kernel": kernel.name(),
                    "selected": r.selected,
                    "visited": r.visited.len(),
                    "space_size": r.space_size,
                    "termination": format!("{:?}", r.termination),
                    "verified_each_pass": cli.verify,
                    "fidelity": cli.fidelity.label(),
                    "stats": serde_json::json!({
                        "evaluated": r.stats.evaluated,
                        "cache_hits": r.stats.cache_hits,
                        "persist_hits": r.stats.persist_hits,
                        "persist_misses": r.stats.persist_misses,
                        "persist_hit_rate": r.stats.persist_hit_rate(),
                        "tier0_evaluated": r.stats.tier0_evaluated,
                        "tier0_promoted": r.stats.tier0_promoted,
                        "tier0_pruned": r.stats.tier0_pruned,
                        "workers": r.stats.workers,
                        "wall_ms": r.stats.wall.as_secs_f64() * 1e3,
                    }),
                }))?);
            } else {
                writeln!(out, "kernel `{}` on {}", kernel.name(), cli.device)?;
                writeln!(
                    out,
                    "selected unroll {} -> {} cycles ({:.1} us), {} slices, balance {:.3}",
                    r.selected.unroll,
                    r.selected.estimate.cycles,
                    r.selected.estimate.exec_time_us(),
                    r.selected.estimate.slices,
                    r.selected.estimate.balance
                )?;
                writeln!(
                    out,
                    "visited {} of {} designs ({:?})",
                    r.visited.len(),
                    r.space_size,
                    r.termination
                )?;
                writeln!(
                    out,
                    "evaluated {} points ({} cache hits) on {} worker{} in {:.1} ms",
                    r.stats.evaluated,
                    r.stats.cache_hits,
                    r.stats.workers,
                    if r.stats.workers == 1 { "" } else { "s" },
                    r.stats.wall.as_secs_f64() * 1e3
                )?;
                if cli.fidelity != Fidelity::Full {
                    writeln!(
                        out,
                        "tier 0 ({}): {} banded, {} promoted, {} pruned",
                        cli.fidelity,
                        r.stats.tier0_evaluated,
                        r.stats.tier0_promoted,
                        r.stats.tier0_pruned
                    )?;
                }
                if let Some(store) = &store {
                    writeln!(
                        out,
                        "persistent cache: {} hits, {} misses (rate {:.2}) at {}",
                        r.stats.persist_hits,
                        r.stats.persist_misses,
                        r.stats.persist_hit_rate(),
                        store.path().display()
                    )?;
                }
                if cli.verify {
                    // Reaching here means no evaluation raised
                    // `XformError::Verify`: every pass of every visited
                    // design produced structurally sound IR.
                    writeln!(
                        out,
                        "verifier: clean after every pass of every visited design"
                    )?;
                }
            }
        }
        Command::Audit => {
            let sink = Arc::new(MemorySink::new());
            explorer = explorer.trace(sink.clone());
            let r = explorer.explore()?;
            let (sat, space) = explorer.analyze()?;
            let events = sink.events();
            let report = audit_search_trace(&events, &space, &sat);
            if let Some(path) = &cli.trace {
                std::fs::write(path, to_jsonl(&events))?;
            }
            if cli.json {
                out.push_str(&serde_json::to_string_pretty(&serde_json::json!({
                    "kernel": kernel.name(),
                    "events": report.events,
                    "checks": report.checks,
                    "violations": report
                        .violations
                        .iter()
                        .map(|v| v.to_string())
                        .collect::<Vec<_>>(),
                    "termination": format!("{:?}", r.termination),
                    "selected": r.selected.unroll,
                }))?);
            } else {
                writeln!(
                    out,
                    "kernel `{}`: {} trace events, {} checks, {} invariant violations \
                     (terminated {:?}, selected {})",
                    kernel.name(),
                    report.events,
                    report.checks,
                    report.violations.len(),
                    r.termination,
                    r.selected.unroll
                )?;
                for v in &report.violations {
                    writeln!(out, "  {v}")?;
                }
            }
            if !report.is_clean() {
                return Err(Box::new(UsageError(format!(
                    "audit found {} invariant violation(s):\n{out}",
                    report.violations.len()
                ))));
            }
        }
        Command::Sweep if cli.axes.is_some() => {
            let space = explorer.joint_space()?;
            let sweep = explorer.joint_sweep()?;
            let pruned = space.pruned_counts().unwrap_or_default();
            let axes_label: Vec<&str> = space
                .axes()
                .unwrap_or_default()
                .iter()
                .map(|a| a.label())
                .collect();
            if cli.json {
                let rows: Vec<serde_json::Value> = sweep
                    .iter()
                    .map(|d| {
                        serde_json::json!({
                            "unroll": d.point.unroll,
                            "permutation": d.point.permutation,
                            "tile": d.point.tile,
                            "narrow": d.point.narrow,
                            "pack": d.point.pack,
                            "balance": d.estimate.balance,
                            "cycles": d.estimate.cycles,
                            "slices": d.estimate.slices,
                            "fits": d.estimate.fits,
                        })
                    })
                    .collect();
                let pruned_doc = serde_json::json!({
                    "permutations": pruned.permutations,
                    "unroll_perm": pruned.unroll_perm,
                    "tiles": pruned.tiles,
                });
                out.push_str(&serde_json::to_string_pretty(&serde_json::json!({
                    "axes": axes_label,
                    "points": rows,
                    "pruned_by_legality": pruned_doc,
                }))?);
            } else {
                writeln!(
                    out,
                    "{:>12} {:>9} {:>9} {:>6} {:>5} {:>9} {:>9} {:>8} {:>5}",
                    "unroll",
                    "perm",
                    "tile",
                    "narrow",
                    "pack",
                    "balance",
                    "cycles",
                    "slices",
                    "fits"
                )?;
                for d in &sweep {
                    let perm: Vec<String> =
                        d.point.permutation.iter().map(usize::to_string).collect();
                    writeln!(
                        out,
                        "{:>12} {:>9} {:>9} {:>6} {:>5} {:>9.3} {:>9} {:>8} {:>5}",
                        d.point.unroll_vector().to_string(),
                        format!("[{}]", perm.join(",")),
                        d.point
                            .tile
                            .map_or_else(|| "-".into(), |(l, t)| format!("L{l}x{t}")),
                        d.point.narrow,
                        d.point.pack,
                        d.estimate.balance,
                        d.estimate.cycles,
                        d.estimate.slices,
                        if d.estimate.fits { "yes" } else { "NO" }
                    )?;
                }
                writeln!(
                    out,
                    "joint space over [{}]: {} statically-legal points; pruned by legality: \
                     {} permutations, {} unroll x perm combos, {} tiles",
                    axes_label.join(","),
                    space.joint_size(),
                    pruned.permutations,
                    pruned.unroll_perm,
                    pruned.tiles
                )?;
            }
        }
        Command::Sweep => {
            let sweep = explorer.sweep()?;
            if cli.json {
                out.push_str(&serde_json::to_string_pretty(&sweep)?);
            } else {
                writeln!(
                    out,
                    "{:>12} {:>9} {:>9} {:>8} {:>5}",
                    "unroll", "balance", "cycles", "slices", "fits"
                )?;
                for d in &sweep {
                    writeln!(
                        out,
                        "{:>12} {:>9.3} {:>9} {:>8} {:>5}",
                        d.unroll.to_string(),
                        d.estimate.balance,
                        d.estimate.cycles,
                        d.estimate.slices,
                        if d.estimate.fits { "yes" } else { "NO" }
                    )?;
                }
            }
        }
        Command::Analyze => {
            let (sat, space) = explorer.analyze()?;
            let joint = cli
                .axes
                .as_ref()
                .map(|_| explorer.joint_space())
                .transpose()?;
            if cli.json {
                let mut doc = serde_json::json!({
                    "kernel": kernel.name(),
                    "read_sets": sat.read_sets,
                    "write_sets": sat.write_sets,
                    "psat": sat.psat,
                    "unrollable": sat.unrollable,
                    "u_init": sat.u_init,
                    "space_size": space.size(),
                });
                if let Some(j) = &joint {
                    let pruned = j.pruned_counts().unwrap_or_default();
                    let pruned_doc = serde_json::json!({
                        "permutations": pruned.permutations,
                        "unroll_perm": pruned.unroll_perm,
                        "tiles": pruned.tiles,
                    });
                    let joint_doc = serde_json::json!({
                        "axes": j.axes().unwrap_or_default().iter()
                            .map(|a| a.label()).collect::<Vec<_>>(),
                        "points": j.joint_size(),
                        "pruned_by_legality": pruned_doc,
                    });
                    if let serde_json::Value::Object(entries) = &mut doc {
                        entries.push(("joint".to_string(), joint_doc));
                    }
                }
                out.push_str(&serde_json::to_string_pretty(&doc)?);
            } else {
                writeln!(out, "kernel `{}`", kernel.name())?;
                writeln!(
                    out,
                    "steady uniformly generated sets: R={} W={}",
                    sat.read_sets, sat.write_sets
                )?;
                writeln!(out, "saturation product Psat = {}", sat.psat)?;
                writeln!(out, "explored loops: {:?}", sat.unrollable)?;
                writeln!(out, "initial point U_init = {}", sat.u_init)?;
                writeln!(out, "design space: {} candidates", space.size())?;
                if let Some(j) = &joint {
                    let pruned = j.pruned_counts().unwrap_or_default();
                    let labels: Vec<&str> = j
                        .axes()
                        .unwrap_or_default()
                        .iter()
                        .map(|a| a.label())
                        .collect();
                    writeln!(
                        out,
                        "joint space over [{}]: {} statically-legal points; pruned by \
                         legality: {} permutations, {} unroll x perm combos, {} tiles",
                        labels.join(","),
                        j.joint_size(),
                        pruned.permutations,
                        pruned.unroll_perm,
                        pruned.tiles
                    )?;
                }
            }
        }
        Command::Vhdl => {
            let unroll = match &cli.unroll {
                Some(u) => u.clone(),
                None => explorer.explore()?.selected.unroll,
            };
            let design = explorer.design(&unroll)?;
            out.push_str(&emit_vhdl(&design));
        }
        Command::Schedule => {
            let unroll = match &cli.unroll {
                Some(u) => u.clone(),
                None => explorer.explore()?.selected.unroll,
            };
            let design = explorer.design(&unroll)?;
            let (dfg, sched) = main_body_schedule(&design, &cli.memory);
            writeln!(
                out,
                "steady-state innermost body of `{}` at unroll {} ({}):",
                kernel.name(),
                unroll,
                cli.memory
            )?;
            out.push_str(&describe_schedule(&dfg, &sched));
        }
    }
    if let Some(store) = &store {
        store
            .flush()
            .map_err(|e| UsageError(format!("cannot write cache: {e}")))?;
    }
    Ok(out)
}

/// The `watch` subcommand: poll `cli.file`, re-explore on every content
/// change through an [`IncrementalSession`], and stream one line of
/// per-edit stats to `out` as each exploration finishes. A revision that
/// fails to parse (a save mid-edit) is reported and skipped — the
/// session keeps its warm state. Exits after `--max-runs` explorations
/// (runs forever without it).
///
/// # Errors
///
/// Propagates configuration and exploration failures; requires a cache
/// directory (`--cache-dir` or `DEFACTO_CACHE_DIR`).
pub fn run_watch(
    cli: &Cli,
    out: &mut dyn std::io::Write,
) -> Result<(), Box<dyn std::error::Error>> {
    let threads = effective_threads(cli)?;
    let store = open_store(cli)?.ok_or_else(|| {
        UsageError("watch requires a cache directory (--cache-dir or DEFACTO_CACHE_DIR)".into())
    })?;
    let mut session = IncrementalSession::new(store)
        .memory(cli.memory.clone())
        .device(cli.device.clone())
        .fidelity(cli.fidelity);
    if let Some(n) = threads {
        session = session.engine(Arc::new(EvalEngine::new(n)));
    }
    let mut last: Option<String> = None;
    let mut runs = 0u64;
    let mut revision = 0u64;
    loop {
        let text = match std::fs::read_to_string(&cli.file) {
            Ok(t) => t,
            Err(e) if last.is_some() => {
                // Transient: editors replace files non-atomically.
                writeln!(out, "watch: cannot read `{}`: {e}", cli.file)?;
                out.flush()?;
                std::thread::sleep(std::time::Duration::from_millis(cli.poll_ms));
                continue;
            }
            Err(e) => {
                return Err(Box::new(UsageError(format!(
                    "cannot read `{}`: {e}",
                    cli.file
                ))))
            }
        };
        if last.as_deref() != Some(text.as_str()) {
            last = Some(text.clone());
            revision += 1;
            match parse_kernel(&text) {
                Err(e) => {
                    writeln!(out, "rev {revision}: parse error: {e}")?;
                }
                Ok(kernel) => {
                    let o = session.explore(&kernel)?;
                    runs += 1;
                    let r = &o.result;
                    if cli.json {
                        writeln!(
                            out,
                            "{}",
                            serde_json::to_string(&serde_json::json!({
                                "revision": revision,
                                "kernel": kernel.name(),
                                "selected": r.selected.unroll.factors(),
                                "cycles": r.selected.estimate.cycles,
                                "slices": r.selected.estimate.slices,
                                "termination": format!("{:?}", r.termination),
                                "warm": o.warm,
                                "reused_analyses": o.reused_analyses,
                                "changed": o.changed,
                                "preloaded": o.preloaded,
                                "evaluated": r.stats.evaluated,
                                "cache_hits": r.stats.cache_hits,
                                "persist_hits": r.stats.persist_hits,
                                "persist_misses": r.stats.persist_misses,
                                "persist_hit_rate": r.stats.persist_hit_rate(),
                                "wall_ms": o.wall.as_secs_f64() * 1e3,
                            }))?
                        )?;
                    } else {
                        writeln!(
                            out,
                            "rev {revision} ({}): selected {} -> {} cycles, {} slices; \
                             evaluated {}, persist {}/{}, {:.1} ms{}",
                            if o.warm { "warm" } else { "cold" },
                            r.selected.unroll,
                            r.selected.estimate.cycles,
                            r.selected.estimate.slices,
                            r.stats.evaluated,
                            r.stats.persist_hits,
                            r.stats.persist_hits + r.stats.persist_misses,
                            o.wall.as_secs_f64() * 1e3,
                            if o.changed.is_empty() {
                                String::new()
                            } else {
                                format!("; changed: {}", o.changed.join(","))
                            }
                        )?;
                    }
                }
            }
            out.flush()?;
        }
        if let Some(max) = cli.max_runs {
            if runs >= max {
                return Ok(());
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(cli.poll_ms));
    }
}

/// Front-end lint over the source text plus the platform capacity rule.
///
/// The `DF009` check only runs on kernels that are otherwise error-free:
/// a kernel that does not parse has no saturation point to test.
fn full_lint(explorer: &Explorer<'_>, source: &str) -> LintReport {
    let mut report = lint_source(source);
    if !report.has_errors() {
        for d in explorer.capacity_diagnostics() {
            report.push(d);
        }
    }
    report
}

/// The `lint` subcommand: render every diagnostic; any finding at all
/// (errors *or* warnings) is a non-zero exit, so CI can gate on a clean
/// corpus.
fn run_lint(cli: &Cli, source: &str) -> Result<String, Box<dyn std::error::Error>> {
    let mut report = lint_source(source);
    let parsed = if report.has_errors() {
        None
    } else {
        parse_kernel(source).ok()
    };
    if let Some(kernel) = &parsed {
        let mut explorer = Explorer::new(kernel)
            .memory(cli.memory.clone())
            .device(cli.device.clone());
        if let Some(n) = cli.threads {
            explorer = explorer.threads(n);
        }
        for d in explorer.capacity_diagnostics() {
            report.push(d);
        }
    }
    let rendered = if cli.json {
        defacto::ir::diag::render_all_json(&report.diagnostics)
    } else {
        defacto::ir::diag::render_all_human(&report.diagnostics, Some(source))
    };
    if report.diagnostics.is_empty() {
        return Ok(if cli.json {
            rendered
        } else {
            let name = parsed
                .as_ref()
                .map_or_else(|| cli.file.clone(), |k| format!("`{}`", k.name()));
            format!("{name}: no diagnostics\n")
        });
    }
    Err(Box::new(LintFailure {
        errors: report.error_count(),
        warnings: report.warning_count(),
        rendered,
    }))
}

/// The `fuzz` subcommand: a seeded differential campaign. Any oracle
/// violation is a non-zero exit carrying the minimized reproducers, so CI
/// can gate on a clean run.
fn run_fuzz(cli: &Cli) -> Result<String, Box<dyn std::error::Error>> {
    let config = defacto_fuzz::CampaignConfig {
        seed: cli.seed,
        count: cli.count,
        // Smoke runs trade per-point coverage for wall clock: the CI
        // budget still crosses every oracle dimension on every case.
        max_points: if cli.smoke { 2 } else { 3 },
        ..defacto_fuzz::CampaignConfig::default()
    };
    let report = defacto_fuzz::run_campaign(&config);
    let rejected = serde_json::Value::Object(
        report
            .rejected
            .iter()
            .map(|(stage, n)| (stage.clone(), serde_json::json!(*n)))
            .collect(),
    );
    let rendered = if cli.json {
        serde_json::to_string_pretty(&serde_json::json!({
            "seed": cli.seed,
            "generated": report.generated,
            "runs": report.runs,
            "passed": report.passed,
            "checks": report.checks,
            "rejected": rejected,
            "violations": report
                .bugs
                .iter()
                .map(|b| serde_json::json!({
                    "index": b.index,
                    "profile": b.profile,
                    "oracle": b.oracle.label(),
                    "stage": b.stage,
                    "detail": b.detail,
                    "minimized": b.minimized,
                }))
                .collect::<Vec<_>>(),
        }))?
    } else {
        report.render()
    };
    if report.is_clean() {
        Ok(rendered)
    } else {
        Err(Box::new(UsageError(format!(
            "fuzz campaign found {} oracle violation(s):\n{rendered}",
            report.bugs.len()
        ))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIR: &str = "kernel fir { in S: i32[96]; in C: i32[32]; inout D: i32[64];
       for j in 0..64 { for i in 0..32 {
         D[j] = D[j] + S[i + j] * C[i]; } } }";

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_full_command_line() {
        let cli = parse_args(&argv(
            "explore fir.kernel --memory non-pipelined --memories 2 --device xcv300 \
             --fidelity multi --json",
        ))
        .unwrap();
        assert_eq!(cli.command, Command::Explore);
        assert_eq!(cli.file, "fir.kernel");
        assert!(!cli.memory.pipelined);
        assert_eq!(cli.memory.num_memories, 2);
        assert_eq!(cli.device.name, "XCV300");
        assert_eq!(cli.fidelity, Fidelity::Multi);
        assert!(cli.json);
    }

    #[test]
    fn rejects_bad_invocations() {
        assert!(parse_args(&argv("")).is_err());
        assert!(parse_args(&argv("frobnicate x")).is_err());
        assert!(parse_args(&argv("explore")).is_err());
        assert!(parse_args(&argv("explore f --memory sideways")).is_err());
        assert!(parse_args(&argv("explore f --memories 0")).is_err());
        assert!(parse_args(&argv("explore f --unroll 2,x")).is_err());
        assert!(parse_args(&argv("explore f --unroll 0,1")).is_err());
        assert!(parse_args(&argv("explore f --threads 0")).is_err());
        assert!(parse_args(&argv("explore f --threads two")).is_err());
        assert!(parse_args(&argv("explore f --trace")).is_err());
        assert!(parse_args(&argv("explore f --fidelity sideways")).is_err());
        assert!(parse_args(&argv("explore f --fidelity")).is_err());
        assert!(parse_args(&argv("explore f --what")).is_err());
    }

    #[test]
    fn axes_flag_parses_valid_lists() {
        let cli = parse_args(&argv("sweep fir.kernel --axes unroll,tile")).unwrap();
        assert_eq!(cli.axes, Some(vec![Axis::Unroll, Axis::Tile]));
        let cli = parse_args(&argv("analyze fir.kernel --axes all")).unwrap();
        assert_eq!(cli.axes.as_deref(), Some(&Axis::ALL[..]));
        // Whitespace around commas is tolerated; order is caller's choice.
        let cli = parse_args(&[
            "sweep".into(),
            "f".into(),
            "--axes".into(),
            "pack, narrow".into(),
        ])
        .unwrap();
        assert_eq!(cli.axes, Some(vec![Axis::Pack, Axis::Narrow]));
    }

    #[test]
    fn axes_flag_rejects_garbage_with_typed_error() {
        // Every rejection is a typed UsageError, never a panic.
        let err = parse_args(&argv("sweep f --axes lol")).unwrap_err();
        assert!(err.0.contains("unknown axis `lol`"), "{}", err.0);
        let err = parse_args(&argv("sweep f --axes unroll,unroll")).unwrap_err();
        assert!(err.0.contains("duplicate axis `unroll`"), "{}", err.0);
        let err = parse_args(&argv("sweep f --axes")).unwrap_err();
        assert!(err.0.contains("--axes expects"), "{}", err.0);
        let err =
            parse_args(&["sweep".into(), "f".into(), "--axes".into(), String::new()]).unwrap_err();
        assert!(err.0.contains("--axes expects"), "{}", err.0);
        let err = parse_args(&[
            "sweep".into(),
            "f".into(),
            "--axes".into(),
            "unroll,,tile".into(),
        ])
        .unwrap_err();
        assert!(err.0.contains("unknown axis"), "{}", err.0);
        // --axes only applies to explore/sweep/analyze; elsewhere it is
        // an unknown flag, reported as such.
        assert!(parse_args(&argv("vhdl f --axes unroll")).is_err());
        assert!(parse_args(&argv("lint f --axes all")).is_err());
    }

    #[test]
    fn strategy_flag_parses_every_kind() {
        // Default: no flag means the guided branch-and-bound strategy.
        let cli = parse_args(&argv("explore f --axes all")).unwrap();
        assert_eq!(cli.strategy, None);
        for kind in StrategyKind::ALL {
            let cli =
                parse_args(&argv(&format!("explore f --axes all --strategy {kind}"))).unwrap();
            assert_eq!(cli.strategy, Some(kind));
        }
    }

    #[test]
    fn strategy_flag_rejects_garbage_with_typed_error() {
        // Every rejection is a typed UsageError, never a panic or a
        // silent fall-back to the default strategy.
        let err = parse_args(&argv("explore f --axes all --strategy lol")).unwrap_err();
        assert!(err.0.contains("unknown strategy `lol`"), "{}", err.0);
        let err = parse_args(&argv("explore f --axes all --strategy")).unwrap_err();
        assert!(err.0.contains("--strategy expects"), "{}", err.0);
        let err = parse_args(&[
            "explore".into(),
            "f".into(),
            "--axes".into(),
            "all".into(),
            "--strategy".into(),
            "   ".into(),
        ])
        .unwrap_err();
        assert!(err.0.contains("--strategy expects"), "{}", err.0);
        // A strategy needs a joint space to search.
        let err = parse_args(&argv("explore f --strategy branch-and-bound")).unwrap_err();
        assert!(err.0.contains("--strategy requires --axes"), "{}", err.0);
        // --strategy is explore-only; elsewhere it is an unknown flag.
        assert!(parse_args(&argv("sweep f --axes all --strategy exhaustive")).is_err());
        assert!(parse_args(&argv("lint f --strategy exhaustive")).is_err());
    }

    #[test]
    fn explore_axes_defaults_to_guided_and_matches_exhaustive() {
        let guided = run(
            &parse_args(&argv("explore fir.kernel --axes all --json")).unwrap(),
            FIR,
        )
        .unwrap();
        let exhaustive = run(
            &parse_args(&argv(
                "explore fir.kernel --axes all --strategy exhaustive --json",
            ))
            .unwrap(),
            FIR,
        )
        .unwrap();
        let g: serde_json::Value = serde_json::from_str(&guided).unwrap();
        let e: serde_json::Value = serde_json::from_str(&exhaustive).unwrap();
        assert_eq!(g["strategy"], "branch-and-bound");
        assert_eq!(e["strategy"], "exhaustive");
        // Bound-pruning is sound: the guided selection is bit-identical.
        assert_eq!(g["selected"], e["selected"]);
        assert_eq!(g["gap_cycles"].as_u64(), Some(0));
        // ...at a fraction of the tier-1 evaluations.
        let space = g["space_points"].as_u64().unwrap();
        assert_eq!(e["visited"].as_u64(), Some(space));
        assert!(g["visited"].as_u64().unwrap() * 4 <= space, "{guided}");
    }

    #[test]
    fn explore_axes_human_output_reports_strategy() {
        let cli = parse_args(&argv(
            "explore fir.kernel --axes all --strategy coordinate-descent",
        ))
        .unwrap();
        let out = run(&cli, FIR).unwrap();
        assert!(
            out.contains("strategy coordinate-descent selected"),
            "{out}"
        );
        assert!(out.contains("pruned by tier-0 bounds"), "{out}");
        assert!(out.contains("optimality gap <="), "{out}");
    }

    #[test]
    fn sweep_with_unroll_axis_matches_classic_table() {
        let classic = run(&parse_args(&argv("sweep fir.kernel")).unwrap(), FIR).unwrap();
        let joint = run(
            &parse_args(&argv("sweep fir.kernel --axes unroll")).unwrap(),
            FIR,
        )
        .unwrap();
        // Same candidate count, same cycle column, plus the legality footer.
        assert_eq!(
            classic.lines().count() - 1, // classic: header + rows
            joint.lines().count() - 2,   // joint: header + rows + footer
        );
        assert!(
            joint.contains("pruned by legality: 0 permutations"),
            "{joint}"
        );
        for line in classic.lines().skip(1) {
            let cycles = line.split_whitespace().nth(2).unwrap();
            assert!(joint.contains(cycles), "missing cycles {cycles} in {joint}");
        }
    }

    #[test]
    fn sweep_all_axes_json_reports_points_and_prunes() {
        let cli = parse_args(&argv("sweep fir.kernel --axes all --json")).unwrap();
        let out = run(&cli, FIR).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["axes"][0], "unroll");
        assert!(v["points"][0]["cycles"].as_u64().unwrap() > 0);
        assert!(v["points"][0]["permutation"][0].as_u64().is_some());
        assert!(v["pruned_by_legality"]["permutations"].as_u64().is_some());
    }

    #[test]
    fn analyze_with_axes_reports_joint_space() {
        let cli = parse_args(&argv("analyze fir.kernel --axes all")).unwrap();
        let out = run(&cli, FIR).unwrap();
        assert!(
            out.contains("joint space over [unroll,interchange,tile,narrow,pack]"),
            "{out}"
        );
        let cli = parse_args(&argv("analyze fir.kernel --axes all --json")).unwrap();
        let out = run(&cli, FIR).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert!(v["joint"]["points"].as_u64().unwrap() > 0);
        // Without --axes the classic report is untouched.
        let plain = run(&parse_args(&argv("analyze fir.kernel")).unwrap(), FIR).unwrap();
        assert!(!plain.contains("joint space"), "{plain}");
    }

    #[test]
    fn parses_audit_and_trace() {
        let cli = parse_args(&argv("audit fir.kernel --trace /tmp/t.jsonl")).unwrap();
        assert_eq!(cli.command, Command::Audit);
        assert_eq!(cli.trace.as_deref(), Some("/tmp/t.jsonl"));
    }

    #[test]
    fn audit_runs_clean_on_fir() {
        let cli = parse_args(&argv("audit fir.kernel")).unwrap();
        let out = run(&cli, FIR).unwrap();
        assert!(out.contains("0 invariant violations"), "{out}");
        assert!(out.contains("trace events"), "{out}");
    }

    #[test]
    fn audit_multi_fidelity_trace_is_clean() {
        let cli = parse_args(&argv("audit fir.kernel --fidelity multi")).unwrap();
        let out = run(&cli, FIR).unwrap();
        assert!(out.contains("0 invariant violations"), "{out}");
    }

    #[test]
    fn explore_trace_writes_jsonl() {
        let dir = std::env::temp_dir().join("defacto-cli-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fir.jsonl");
        let cli = parse_args(&argv(&format!(
            "explore fir.kernel --trace {}",
            path.display()
        )))
        .unwrap();
        run(&cli, FIR).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.lines().count() > 2, "{text}");
        assert!(text.lines().all(|l| {
            let v: serde_json::Value = serde_json::from_str(l).unwrap();
            v["event"].as_str().is_some()
        }));
        assert!(text.contains("\"terminate\""), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn threads_flag_is_parsed_and_respected() {
        let cli = parse_args(&argv("explore fir.kernel --threads 2")).unwrap();
        assert_eq!(cli.threads, Some(2));
        let out = run(&cli, FIR).unwrap();
        assert!(out.contains("on 2 workers"), "{out}");
    }

    #[test]
    fn explore_runs_end_to_end() {
        let cli = parse_args(&argv("explore fir.kernel")).unwrap();
        let out = run(&cli, FIR).unwrap();
        assert!(out.contains("selected unroll"));
        assert!(out.contains("visited"));
    }

    #[test]
    fn explore_json_is_valid() {
        let cli = parse_args(&argv("explore fir.kernel --json")).unwrap();
        let out = run(&cli, FIR).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["kernel"], "fir");
        assert!(v["selected"]["estimate"]["cycles"].as_u64().unwrap() > 0);
    }

    #[test]
    fn explore_multi_fidelity_agrees_with_full_and_reports_tiers() {
        let full = run(
            &parse_args(&argv("explore fir.kernel --json")).unwrap(),
            FIR,
        )
        .unwrap();
        let multi = run(
            &parse_args(&argv("explore fir.kernel --fidelity multi --json")).unwrap(),
            FIR,
        )
        .unwrap();
        let f: serde_json::Value = serde_json::from_str(&full).unwrap();
        let m: serde_json::Value = serde_json::from_str(&multi).unwrap();
        assert_eq!(f["selected"], m["selected"]);
        assert_eq!(f["fidelity"], "full");
        assert_eq!(m["fidelity"], "multi");
        assert_eq!(f["stats"]["tier0_evaluated"].as_u64(), Some(0));
        assert!(m["stats"]["tier0_promoted"].as_u64().unwrap() > 0);
    }

    #[test]
    fn explore_analytic_reports_tier0_work() {
        let cli = parse_args(&argv("explore fir.kernel --fidelity analytic")).unwrap();
        let out = run(&cli, FIR).unwrap();
        assert!(out.contains("tier 0 (analytic):"), "{out}");
        assert!(out.contains("selected unroll"), "{out}");
    }

    #[test]
    fn analyze_reports_saturation() {
        let cli = parse_args(&argv("analyze fir.kernel")).unwrap();
        let out = run(&cli, FIR).unwrap();
        assert!(out.contains("Psat = 4"), "{out}");
        assert!(out.contains("42 candidates"), "{out}");
    }

    #[test]
    fn sweep_lists_every_design() {
        let cli = parse_args(&argv("sweep fir.kernel")).unwrap();
        let out = run(&cli, FIR).unwrap();
        // Header plus 42 designs.
        assert_eq!(out.lines().count(), 43, "{out}");
    }

    #[test]
    fn vhdl_with_fixed_unroll() {
        let cli = parse_args(&argv("vhdl fir.kernel --unroll 2,2")).unwrap();
        let out = run(&cli, FIR).unwrap();
        assert!(out.contains("entity fir is"));
        assert!(out.contains("unroll: (2,2)"));
    }

    #[test]
    fn schedule_prints_gantt() {
        let cli = parse_args(&argv("schedule fir.kernel --unroll 2,2")).unwrap();
        let out = run(&cli, FIR).unwrap();
        assert!(out.contains("steady-state innermost body"), "{out}");
        assert!(out.contains("load S"), "{out}");
        assert!(out.contains('#'), "{out}");
    }

    #[test]
    fn bad_kernel_source_errors() {
        let cli = parse_args(&argv("explore x.kernel")).unwrap();
        assert!(run(&cli, "kernel broken {").is_err());
    }

    #[test]
    fn lint_clean_kernel_exits_zero() {
        let cli = parse_args(&argv("lint fir.kernel")).unwrap();
        let out = run(&cli, FIR).unwrap();
        assert!(out.contains("no diagnostics"), "{out}");
    }

    #[test]
    fn lint_bad_kernel_is_an_error_with_code_and_span() {
        let cli = parse_args(&argv("lint x.kernel")).unwrap();
        let src = "kernel x { in A: i32[16]; out B: i32[4];
               for i in 0..4 { B[i] = A[i * i]; } }";
        let err = run(&cli, src).unwrap_err().to_string();
        assert!(err.contains("error[DF002]"), "{err}");
        assert!(err.contains("i * i"), "{err}");
        assert!(err.contains("-->"), "{err}"); // span rendered
    }

    #[test]
    fn lint_warnings_also_exit_nonzero() {
        let cli = parse_args(&argv("lint x.kernel")).unwrap();
        let src = "kernel x { in A: i32[4]; in U: i32[4]; out B: i32[4];
               for i in 0..4 { B[i] = A[i]; } }";
        let err = run(&cli, src).unwrap_err().to_string();
        assert!(err.contains("warning[DF006]"), "{err}");
        assert!(err.contains("0 error(s), 1 warning(s)"), "{err}");
    }

    #[test]
    fn lint_json_is_machine_readable() {
        let cli = parse_args(&argv("lint x.kernel --json")).unwrap();
        let src = "kernel x { in A: i32[4]; for i in 0..n { A[i] = A[i]; } }";
        let err = run(&cli, src).unwrap_err();
        let lint = err.downcast_ref::<LintFailure>().unwrap();
        let v: serde_json::Value = serde_json::from_str(&lint.rendered).unwrap();
        assert_eq!(v[0]["code"], "DF003");
        assert_eq!(v[0]["severity"], "error");
    }

    #[test]
    fn lint_small_device_reports_capacity() {
        // 16 memories push Psat to 16; no P(U)=16 design fits an XCV300.
        let cli = parse_args(&argv("lint fir.kernel --device xcv300 --memories 16")).unwrap();
        match run(&cli, FIR) {
            Ok(out) => panic!("expected DF009, got clean: {out}"),
            Err(e) => assert!(e.to_string().contains("DF009"), "{e}"),
        }
    }

    #[test]
    fn explore_refuses_kernels_with_lint_errors() {
        let cli = parse_args(&argv("explore x.kernel")).unwrap();
        // Parses fine but indexes A out of bounds (DF005).
        let src = "kernel x { in A: i32[4]; out B: i32[8];
               for i in 0..8 { B[i] = A[i]; } }";
        let err = run(&cli, src).unwrap_err().to_string();
        assert!(err.contains("DF005"), "{err}");
    }

    #[test]
    fn fuzz_parses_without_a_file_and_with_its_flags() {
        let cli = parse_args(&argv("fuzz --seed 11 --count 5 --smoke --json")).unwrap();
        assert_eq!(cli.command, Command::Fuzz);
        assert!(cli.file.is_empty());
        assert_eq!(cli.seed, 11);
        assert_eq!(cli.count, 5);
        assert!(cli.smoke && cli.json);
        // Defaults.
        let cli = parse_args(&argv("fuzz")).unwrap();
        assert_eq!((cli.seed, cli.count, cli.smoke), (7, 300, false));
        // Fuzz-only flags stay fuzz-only.
        assert!(parse_args(&argv("explore f --seed 3")).is_err());
        assert!(parse_args(&argv("fuzz --count 0")).is_err());
        assert!(parse_args(&argv("fuzz --seed banana")).is_err());
    }

    #[test]
    fn fuzz_smoke_campaign_runs_clean() {
        let cli = parse_args(&argv("fuzz --seed 5 --count 4 --smoke --json")).unwrap();
        let out = run(&cli, "").unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["generated"].as_u64(), Some(4));
        assert_eq!(v["runs"].as_u64(), Some(8));
        assert!(
            matches!(&v["violations"], serde_json::Value::Array(a) if a.is_empty()),
            "{out}"
        );
        let human = run(
            &parse_args(&argv("fuzz --seed 5 --count 4 --smoke")).unwrap(),
            "",
        )
        .unwrap();
        assert!(human.contains("violations: none"), "{human}");
    }

    #[test]
    fn explore_with_verify_reports_clean_verifier() {
        let cli = parse_args(&argv("explore fir.kernel --verify")).unwrap();
        let out = run(&cli, FIR).unwrap();
        assert!(out.contains("verifier: clean"), "{out}");
        assert!(out.contains("selected unroll"), "{out}");
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("defacto-cli-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn parses_watch_command_and_its_flags() {
        let cli = parse_args(&argv(
            "watch fir.kernel --cache-dir /tmp/c --poll-ms 50 --max-runs 3 --json",
        ))
        .unwrap();
        assert_eq!(cli.command, Command::Watch);
        assert_eq!(cli.cache_dir.as_deref(), Some("/tmp/c"));
        assert_eq!(cli.poll_ms, 50);
        assert_eq!(cli.max_runs, Some(3));
        // Watch-only flags stay watch-only; bad values are typed errors.
        assert!(parse_args(&argv("explore f --poll-ms 10")).is_err());
        assert!(parse_args(&argv("explore f --max-runs 1")).is_err());
        assert!(parse_args(&argv("watch f --cache-dir /c --poll-ms 0")).is_err());
        assert!(parse_args(&argv("watch f --cache-dir /c --max-runs 0")).is_err());
        assert!(parse_args(&argv("watch f --cache-dir")).is_err());
    }

    #[test]
    fn threads_env_rejects_garbage_with_typed_error() {
        let cli = parse_args(&argv("explore fir.kernel")).unwrap();
        for bad in ["0", "-3", "two", ""] {
            let mut cli = cli.clone();
            cli.threads_env = Some(bad.to_string());
            let err = effective_threads(&cli).unwrap_err();
            assert!(err.0.contains("DEFACTO_THREADS"), "{bad:?}: {err}");
        }
        // The flag always wins over the environment.
        let mut flagged = cli.clone();
        flagged.threads = Some(2);
        flagged.threads_env = Some("garbage".to_string());
        assert_eq!(effective_threads(&flagged).unwrap(), Some(2));
        let mut ok = cli.clone();
        ok.threads_env = Some("4".to_string());
        assert_eq!(effective_threads(&ok).unwrap(), Some(4));
    }

    #[test]
    fn cache_dir_env_rejects_blank_with_typed_error() {
        let cli = parse_args(&argv("explore fir.kernel")).unwrap();
        for bad in ["", "   "] {
            let mut cli = cli.clone();
            cli.cache_dir_env = Some(bad.to_string());
            let err = effective_cache_dir(&cli).unwrap_err();
            assert!(err.0.contains("DEFACTO_CACHE_DIR"), "{bad:?}: {err}");
        }
        let mut flagged = cli.clone();
        flagged.cache_dir = Some("/tmp/flag".to_string());
        flagged.cache_dir_env = Some("/tmp/env".to_string());
        assert_eq!(
            effective_cache_dir(&flagged).unwrap(),
            Some(PathBuf::from("/tmp/flag"))
        );
        let mut env_only = cli.clone();
        env_only.cache_dir_env = Some("/tmp/env".to_string());
        assert_eq!(
            effective_cache_dir(&env_only).unwrap(),
            Some(PathBuf::from("/tmp/env"))
        );
    }

    #[test]
    fn explore_cache_dir_round_trip_hits_on_second_run() {
        let dir = tmpdir("explore-cache");
        let args = format!("explore fir.kernel --json --cache-dir {}", dir.display());
        let cli = parse_args(&argv(&args)).unwrap();
        let cold = run(&cli, FIR).unwrap();
        let warm = run(&cli, FIR).unwrap();
        let c: serde_json::Value = serde_json::from_str(&cold).unwrap();
        let w: serde_json::Value = serde_json::from_str(&warm).unwrap();
        assert_eq!(c["selected"], w["selected"]);
        assert_eq!(c["stats"]["persist_hits"].as_u64(), Some(0));
        assert!(
            w["stats"]["persist_hits"].as_u64().unwrap() > 0,
            "warm run should hit the persistent cache: {warm}"
        );
        assert_eq!(w["stats"]["persist_misses"].as_u64(), Some(0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn watch_single_shot_streams_a_result_line() {
        let dir = tmpdir("watch-one");
        let file = dir.join("fir.kernel");
        std::fs::write(&file, FIR).unwrap();
        let args = format!(
            "watch {} --cache-dir {} --poll-ms 1 --max-runs 1 --json",
            file.display(),
            dir.display()
        );
        let cli = parse_args(&argv(&args)).unwrap();
        let mut buf = Vec::new();
        run_watch(&cli, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let line = text.lines().next().expect("one streamed line");
        let v: serde_json::Value = serde_json::from_str(line).unwrap();
        assert_eq!(v["revision"].as_u64(), Some(1));
        assert_eq!(v["kernel"], "fir");
        assert_eq!(v["warm"], serde_json::Value::Bool(false));
        assert!(v["cycles"].as_u64().unwrap() > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn watch_requires_a_cache_dir() {
        let dir = tmpdir("watch-nocache");
        let file = dir.join("fir.kernel");
        std::fs::write(&file, FIR).unwrap();
        let cli = parse_args(&argv(&format!("watch {} --max-runs 1", file.display()))).unwrap();
        let err = run_watch(&cli, &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("cache"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn watch_second_edit_is_warm_and_parse_errors_are_skipped() {
        let dir = tmpdir("watch-edit");
        let file = dir.join("fir.kernel");
        std::fs::write(&file, FIR).unwrap();
        let args = format!(
            "watch {} --cache-dir {} --poll-ms 1 --max-runs 2 --json",
            file.display(),
            dir.display()
        );
        let cli = parse_args(&argv(&args)).unwrap();
        // Edit the file from a helper thread: first a mid-save torn write
        // (parse error, must be skipped), then an alpha-renamed kernel.
        let edited = FIR
            .replace(" i ", " q ")
            .replace("C[i]", "C[q]")
            .replace("S[i + j]", "S[q + j]");
        let path = file.clone();
        let writer = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(60));
            std::fs::write(&path, "kernel fir {").unwrap();
            std::thread::sleep(std::time::Duration::from_millis(60));
            std::fs::write(&path, &edited).unwrap();
        });
        let mut buf = Vec::new();
        run_watch(&cli, &mut buf).unwrap();
        writer.join().unwrap();
        let text = String::from_utf8(buf).unwrap();
        let jsons: Vec<serde_json::Value> = text
            .lines()
            .filter(|l| l.starts_with('{'))
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(jsons.len(), 2, "{text}");
        assert!(text.contains("parse error"), "{text}");
        assert_eq!(jsons[0]["warm"], serde_json::Value::Bool(false));
        assert_eq!(jsons[1]["warm"], serde_json::Value::Bool(true));
        // The alpha-rename is canonically identical: fully served from cache.
        assert_eq!(jsons[1]["evaluated"].as_u64(), Some(0), "{text}");
        assert_eq!(jsons[0]["selected"], jsons[1]["selected"]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
