//! Cross-process determinism of the persistent cache.
//!
//! Two *separate* `defacto` processes explore the same kernel against
//! one cache directory. The second, cold process must (1) serve at
//! least 90% of its estimates from the store the first process wrote,
//! and (2) report byte-identical selections and search traces — the
//! cache is a pure accelerator, never an input to the answer. Runs over
//! all five paper kernels at 1 and 8 workers.

use std::path::{Path, PathBuf};
use std::process::Command;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("defacto-xproc-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn explore(file: &Path, cache: &Path, trace: &Path, workers: usize) -> serde_json::Value {
    let out = Command::new(env!("CARGO_BIN_EXE_defacto"))
        .arg("explore")
        .arg(file)
        .arg("--json")
        .arg("--cache-dir")
        .arg(cache)
        .arg("--trace")
        .arg(trace)
        .arg("--threads")
        .arg(workers.to_string())
        .output()
        .expect("spawn defacto");
    assert!(
        out.status.success(),
        "explore failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    serde_json::from_str(&String::from_utf8(out.stdout).unwrap()).expect("valid JSON")
}

#[test]
fn second_process_hits_warm_cache_with_identical_answers() {
    let dir = scratch("warm");
    for (name, source) in defacto_kernels::paper_kernel_sources() {
        let file = dir.join(format!("{name}.kernel"));
        std::fs::write(&file, &source).unwrap();
        for workers in [1usize, 8] {
            let cache = dir.join(format!("cache-{name}-{workers}"));
            let t1 = dir.join(format!("{name}-{workers}-cold.jsonl"));
            let t2 = dir.join(format!("{name}-{workers}-warm.jsonl"));

            let cold = explore(&file, &cache, &t1, workers);
            let warm = explore(&file, &cache, &t2, workers);

            // The first process starts from an empty store...
            assert_eq!(
                cold["stats"]["persist_hits"].as_u64(),
                Some(0),
                "{name}@{workers}: cold run should miss"
            );
            // ...and the second must be served almost entirely from it.
            let rate = warm["stats"]["persist_hit_rate"].as_f64().unwrap();
            assert!(
                rate >= 0.9,
                "{name}@{workers}: warm hit rate {rate} below 0.9: {warm:?}"
            );
            assert_eq!(
                warm["stats"]["evaluated"].as_u64(),
                Some(0),
                "{name}@{workers}: warm run re-evaluated designs"
            );

            // Selections and estimates are bit-identical...
            assert_eq!(
                cold["selected"], warm["selected"],
                "{name}@{workers}: selection changed across processes"
            );
            // ...and so is the search trace, byte for byte.
            let cold_trace = std::fs::read(&t1).unwrap();
            let warm_trace = std::fs::read(&t2).unwrap();
            assert!(!cold_trace.is_empty(), "{name}@{workers}: empty trace");
            assert_eq!(
                cold_trace, warm_trace,
                "{name}@{workers}: trace changed across processes"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
