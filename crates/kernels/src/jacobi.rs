//! JAC: 4-point Jacobi stencil averaging over a 2-D array.

use defacto_ir::{parse_kernel, Kernel};

/// The paper's JAC: a 32×32 interior sweep over a 34×34 array.
pub fn kernel() -> Kernel {
    kernel_sized(34)
}

/// Kernel-language source of the paper-sized JAC.
pub fn source() -> String {
    source_sized(34)
}

/// Kernel-language source of JAC over an `n×n` array.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn source_sized(n: usize) -> String {
    assert!(n >= 3, "JAC needs at least a 3×3 array");
    let hi = n - 1;
    format!(
        "kernel jac {{
           in A: i16[{n}][{n}];
           out B: i16[{n}][{n}];
           for i in 1..{hi} {{
             for j in 1..{hi} {{
               B[i][j] = (A[i - 1][j] + A[i + 1][j] + A[i][j - 1] + A[i][j + 1]) / 4;
             }}
           }}
         }}"
    )
}

/// JAC over an `n×n` array (interior `(n-2)×(n-2)`).
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn kernel_sized(n: usize) -> Kernel {
    parse_kernel(&source_sized(n)).expect("generated JAC parses")
}

/// Reference implementation over a flattened `n×n` grid; the border of
/// the output stays zero.
pub fn reference(a: &[i64], n: usize) -> Vec<i64> {
    let mut b = vec![0i64; n * n];
    for i in 1..n - 1 {
        for j in 1..n - 1 {
            let sum = a[(i - 1) * n + j] + a[(i + 1) * n + j] + a[i * n + j - 1] + a[i * n + j + 1];
            // C-style truncating division, wrapped to i16.
            b[i * n + j] = (sum / 4) as i16 as i64;
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::image;
    use defacto_ir::run_with_inputs;

    #[test]
    fn matches_reference() {
        let k = kernel();
        let a = image(34, 99);
        let (ws, _) = run_with_inputs(&k, &[("A", a.clone())]).unwrap();
        assert_eq!(ws.array("B").unwrap(), reference(&a, 34).as_slice());
    }

    #[test]
    fn interior_trip_counts() {
        let k = kernel();
        let nest = k.perfect_nest().unwrap();
        assert_eq!(nest.trip_counts(), vec![32, 32]);
    }

    #[test]
    fn constant_field_averages_to_itself() {
        let k = kernel_sized(6);
        let a = vec![40i64; 36];
        let (ws, _) = run_with_inputs(&k, &[("A", a)]).unwrap();
        let b = ws.array("B").unwrap();
        for i in 1..5 {
            for j in 1..5 {
                assert_eq!(b[i * 6 + j], 40);
            }
        }
        assert_eq!(b[0], 0); // border untouched
    }
}
