//! MM: dense integer matrix multiply, 32×16 by 16×4 in the paper.

use defacto_ir::{parse_kernel, Kernel};

/// The paper's MM: `C[i][j] += A[i][k] * B[k][j]` with
/// `A ∈ 32×16`, `B ∈ 16×4`.
pub fn kernel() -> Kernel {
    kernel_sized(32, 16, 4)
}

/// Kernel-language source of the paper-sized MM.
pub fn source() -> String {
    source_sized(32, 16, 4)
}

/// Kernel-language source of MM with `A ∈ m×k`, `B ∈ k×n`.
///
/// # Panics
///
/// Panics if any dimension is zero.
pub fn source_sized(m: usize, k: usize, n: usize) -> String {
    assert!(m > 0 && k > 0 && n > 0, "degenerate MM size");
    format!(
        "kernel mm {{
           in A: i32[{m}][{k}];
           in B: i32[{k}][{n}];
           inout C: i32[{m}][{n}];
           for i in 0..{m} {{
             for j in 0..{n} {{
               for k in 0..{k} {{
                 C[i][j] = C[i][j] + A[i][k] * B[k][j];
               }}
             }}
           }}
         }}"
    )
}

/// MM with `A ∈ m×k`, `B ∈ k×n`.
///
/// # Panics
///
/// Panics if any dimension is zero.
pub fn kernel_sized(m: usize, k: usize, n: usize) -> Kernel {
    parse_kernel(&source_sized(m, k, n)).expect("generated MM parses")
}

/// Reference implementation (row-major flattened inputs/outputs).
pub fn reference(a: &[i64], b: &[i64], m: usize, k: usize, n: usize) -> Vec<i64> {
    let mut c = vec![0i64; m * n];
    for i in 0..m {
        for j in 0..n {
            for kk in 0..k {
                c[i * n + j] = (c[i * n + j] + a[i * k + kk] * b[kk * n + j]) as i32 as i64;
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::signal;
    use defacto_ir::run_with_inputs;

    #[test]
    fn matches_reference() {
        let kern = kernel();
        let a = signal(32 * 16, 3);
        let b = signal(16 * 4, 17);
        let (ws, _) = run_with_inputs(&kern, &[("A", a.clone()), ("B", b.clone())]).unwrap();
        assert_eq!(
            ws.array("C").unwrap(),
            reference(&a, &b, 32, 16, 4).as_slice()
        );
    }

    #[test]
    fn nest_shape() {
        let nest = kernel().perfect_nest().unwrap().trip_counts();
        assert_eq!(nest, vec![32, 4, 16]);
    }

    #[test]
    fn sized_variant() {
        let kern = kernel_sized(4, 6, 2);
        let a = signal(24, 1);
        let b = signal(12, 2);
        let (ws, _) = run_with_inputs(&kern, &[("A", a.clone()), ("B", b.clone())]).unwrap();
        assert_eq!(
            ws.array("C").unwrap(),
            reference(&a, &b, 4, 6, 2).as_slice()
        );
    }
}
