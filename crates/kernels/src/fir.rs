//! FIR filter: integer multiply-accumulate over 32 consecutive elements
//! of a 64-element output (paper Figure 1(a)).

use defacto_ir::{parse_kernel, Kernel};

/// The paper's FIR: `D[j] += S[i+j] * C[i]` for `j ∈ [0,64)`,
/// `i ∈ [0,32)`.
pub fn kernel() -> Kernel {
    kernel_sized(64, 32)
}

/// Kernel-language source of the paper-sized FIR.
pub fn source() -> String {
    source_sized(64, 32)
}

/// Kernel-language source of FIR with `n_out` outputs and `n_taps`
/// filter taps.
///
/// # Panics
///
/// Panics if either size is zero (the generated kernel would be
/// degenerate).
pub fn source_sized(n_out: usize, n_taps: usize) -> String {
    assert!(n_out > 0 && n_taps > 0, "degenerate FIR size");
    format!(
        "kernel fir {{
           in S: i32[{}];
           in C: i32[{n_taps}];
           inout D: i32[{n_out}];
           for j in 0..{n_out} {{
             for i in 0..{n_taps} {{
               D[j] = D[j] + S[i + j] * C[i];
             }}
           }}
         }}",
        n_out + n_taps,
    )
}

/// FIR with `n_out` outputs and `n_taps` filter taps.
///
/// # Panics
///
/// Panics if either size is zero (the generated kernel would be
/// degenerate).
pub fn kernel_sized(n_out: usize, n_taps: usize) -> Kernel {
    parse_kernel(&source_sized(n_out, n_taps)).expect("generated FIR parses")
}

/// Reference implementation over `i64` (wrapping to `i32` on store, as
/// the hardware does).
pub fn reference(s: &[i64], c: &[i64]) -> Vec<i64> {
    let n_taps = c.len();
    let n_out = s.len() - n_taps;
    let mut d = vec![0i64; n_out];
    for j in 0..n_out {
        for i in 0..n_taps {
            d[j] = (d[j] + s[i + j] * c[i]) as i32 as i64;
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::signal;
    use defacto_ir::run_with_inputs;

    #[test]
    fn matches_reference() {
        let k = kernel();
        let s = signal(96, 11);
        let c = signal(32, 23);
        let (ws, _) = run_with_inputs(&k, &[("S", s.clone()), ("C", c.clone())]).unwrap();
        assert_eq!(ws.array("D").unwrap(), reference(&s, &c).as_slice());
    }

    #[test]
    fn sized_variant_scales() {
        let k = kernel_sized(16, 8);
        let nest = k.perfect_nest().unwrap();
        assert_eq!(nest.trip_counts(), vec![16, 8]);
        let s = signal(24, 5);
        let c = signal(8, 7);
        let (ws, _) = run_with_inputs(&k, &[("S", s.clone()), ("C", c.clone())]).unwrap();
        assert_eq!(ws.array("D").unwrap(), reference(&s, &c).as_slice());
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_size_panics() {
        kernel_sized(0, 4);
    }
}
