//! PAT: character pattern matching — a length-16 pattern slid over a
//! length-64 input string, counting per-position character matches.

use defacto_ir::{parse_kernel, Kernel};

/// The paper's PAT: pattern length 16 over a string of length 64
/// (48 alignment positions).
pub fn kernel() -> Kernel {
    kernel_sized(64, 16)
}

/// Kernel-language source of the paper-sized PAT.
pub fn source() -> String {
    source_sized(64, 16)
}

/// Kernel-language source of PAT with a string of `n` characters and a
/// pattern of `m`.
///
/// # Panics
///
/// Panics if `m == 0` or `m > n`.
pub fn source_sized(n: usize, m: usize) -> String {
    assert!(m > 0 && m <= n, "degenerate PAT size");
    let positions = n - m;
    format!(
        "kernel pat {{
           in S: u8[{n}];
           in P: u8[{m}];
           inout M: i16[{positions}];
           for j in 0..{positions} {{
             for i in 0..{m} {{
               M[j] = M[j] + (S[i + j] == P[i]);
             }}
           }}
         }}"
    )
}

/// PAT with a string of `n` characters and a pattern of `m`.
///
/// # Panics
///
/// Panics if `m == 0` or `m > n`.
pub fn kernel_sized(n: usize, m: usize) -> Kernel {
    parse_kernel(&source_sized(n, m)).expect("generated PAT parses")
}

/// Reference implementation: `M[j]` counts matching characters of the
/// pattern aligned at position `j`.
pub fn reference(s: &[i64], p: &[i64]) -> Vec<i64> {
    let positions = s.len() - p.len();
    (0..positions)
        .map(|j| {
            p.iter()
                .enumerate()
                .filter(|(i, &pc)| s[i + j] == pc)
                .count() as i64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::text;
    use defacto_ir::run_with_inputs;

    #[test]
    fn matches_reference() {
        let k = kernel();
        let s = text(64, 41);
        let p = text(16, 42);
        let (ws, _) = run_with_inputs(&k, &[("S", s.clone()), ("P", p.clone())]).unwrap();
        assert_eq!(ws.array("M").unwrap(), reference(&s, &p).as_slice());
    }

    #[test]
    fn exact_match_counts_full_pattern() {
        let k = kernel_sized(8, 4);
        let s: Vec<i64> = vec![1, 2, 3, 4, 1, 2, 3, 4];
        let p: Vec<i64> = vec![1, 2, 3, 4];
        let (ws, _) = run_with_inputs(&k, &[("S", s.clone()), ("P", p.clone())]).unwrap();
        let m = ws.array("M").unwrap();
        assert_eq!(m[0], 4);
        assert_eq!(m, reference(&s, &p).as_slice());
    }

    #[test]
    fn nest_shape() {
        let nest = kernel().perfect_nest().unwrap().trip_counts();
        assert_eq!(nest, vec![48, 16]);
    }
}
