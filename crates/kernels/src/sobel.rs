//! SOBEL: 3×3-window edge detection over an integer image, with the
//! customary |gx|+|gy| magnitude and 255 clamp.

use defacto_ir::{parse_kernel, Kernel};

/// The paper's SOBEL: a 32×32 interior sweep over a 34×34 8-bit image.
pub fn kernel() -> Kernel {
    kernel_sized(34)
}

/// Kernel-language source of the paper-sized SOBEL.
pub fn source() -> String {
    source_sized(34)
}

/// Kernel-language source of SOBEL over an `n×n` image.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn source_sized(n: usize) -> String {
    assert!(n >= 3, "SOBEL needs at least a 3×3 image");
    let hi = n - 1;
    format!(
        "kernel sobel {{
           in I: u8[{n}][{n}];
           out E: i16[{n}][{n}];
           var gx: i16;
           var gy: i16;
           var mag: i16;
           for i in 1..{hi} {{
             for j in 1..{hi} {{
               gx = (I[i - 1][j + 1] + 2 * I[i][j + 1] + I[i + 1][j + 1])
                  - (I[i - 1][j - 1] + 2 * I[i][j - 1] + I[i + 1][j - 1]);
               gy = (I[i + 1][j - 1] + 2 * I[i + 1][j] + I[i + 1][j + 1])
                  - (I[i - 1][j - 1] + 2 * I[i - 1][j] + I[i - 1][j + 1]);
               mag = abs(gx) + abs(gy);
               E[i][j] = mag > 255 ? 255 : mag;
             }}
           }}
         }}"
    )
}

/// SOBEL over an `n×n` image (interior `(n-2)×(n-2)`).
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn kernel_sized(n: usize) -> Kernel {
    parse_kernel(&source_sized(n)).expect("generated SOBEL parses")
}

/// Reference implementation over a flattened `n×n` image.
pub fn reference(img: &[i64], n: usize) -> Vec<i64> {
    let at = |i: usize, j: usize| img[i * n + j];
    let mut e = vec![0i64; n * n];
    for i in 1..n - 1 {
        for j in 1..n - 1 {
            let gx = (at(i - 1, j + 1) + 2 * at(i, j + 1) + at(i + 1, j + 1))
                - (at(i - 1, j - 1) + 2 * at(i, j - 1) + at(i + 1, j - 1));
            let gy = (at(i + 1, j - 1) + 2 * at(i + 1, j) + at(i + 1, j + 1))
                - (at(i - 1, j - 1) + 2 * at(i - 1, j) + at(i - 1, j + 1));
            let gx = gx as i16 as i64;
            let gy = gy as i16 as i64;
            let mag = (gx.abs() + gy.abs()) as i16 as i64;
            e[i * n + j] = if mag > 255 { 255 } else { mag };
        }
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::image;
    use defacto_ir::run_with_inputs;

    #[test]
    fn matches_reference() {
        let k = kernel();
        let img = image(34, 7);
        let (ws, _) = run_with_inputs(&k, &[("I", img.clone())]).unwrap();
        assert_eq!(ws.array("E").unwrap(), reference(&img, 34).as_slice());
    }

    #[test]
    fn flat_image_has_zero_edges() {
        let k = kernel_sized(8);
        let img = vec![100i64; 64];
        let (ws, _) = run_with_inputs(&k, &[("I", img)]).unwrap();
        assert!(ws.array("E").unwrap().iter().all(|&v| v == 0));
    }

    #[test]
    fn vertical_edge_detected_and_clamped() {
        // Left half 0, right half 200: a strong vertical edge at the
        // boundary columns, clamped to 255.
        let n = 8;
        let mut img = vec![0i64; n * n];
        for i in 0..n {
            for j in n / 2..n {
                img[i * n + j] = 200;
            }
        }
        let k = kernel_sized(n);
        let (ws, _) = run_with_inputs(&k, &[("I", img.clone())]).unwrap();
        let e = ws.array("E").unwrap();
        let mid = n / 2;
        // Edge columns respond strongly...
        assert_eq!(e[3 * n + mid - 1], 255);
        assert_eq!(e[3 * n + mid], 255);
        // ...flat regions do not.
        assert_eq!(e[3 * n + 1], 0);
        assert_eq!(e, reference(&img, n).as_slice());
    }
}
