//! Grayscale erosion and dilation — morphological operators from the
//! paper's introduction ("erosion/dilation operators").
//!
//! Over a 3×3 structuring element, dilation takes the window maximum and
//! erosion the minimum. Max/min lower to compare+select chains in the
//! kernel language, exercising `Select` nodes end to end.

use defacto_ir::{parse_kernel, Kernel};

/// Which morphological operator to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Morphology {
    /// 3×3 window maximum.
    Dilate,
    /// 3×3 window minimum.
    Erode,
}

/// Paper-scale morphology: a 3×3 window over a 34×34 8-bit image
/// (32×32 interior).
pub fn kernel(op: Morphology) -> Kernel {
    kernel_sized(op, 34)
}

/// Morphology over an `n×n` image.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn kernel_sized(op: Morphology, n: usize) -> Kernel {
    assert!(n >= 3, "morphology needs at least a 3×3 image");
    let hi = n - 1;
    let cmp = match op {
        Morphology::Dilate => ">",
        Morphology::Erode => "<",
    };
    let name = match op {
        Morphology::Dilate => "dilate",
        Morphology::Erode => "erode",
    };
    // Reduce the 3×3 window with a chain of compare/select steps.
    let mut body = String::from("m = I[i - 1][j - 1];\n");
    for (dv, du) in [
        (-1i64, 0i64),
        (-1, 1),
        (0, -1),
        (0, 0),
        (0, 1),
        (1, -1),
        (1, 0),
        (1, 1),
    ] {
        let idx = |d: i64, var: &str| -> String {
            match d {
                0 => format!("[{var}]"),
                d if d > 0 => format!("[{var} + {d}]"),
                d => format!("[{var} - {}]", -d),
            }
        };
        body.push_str(&format!(
            "m = I{r}{c} {cmp} m ? I{r}{c} : m;\n",
            r = idx(dv, "i"),
            c = idx(du, "j"),
        ));
    }
    let src = format!(
        "kernel {name} {{
           in I: u8[{n}][{n}];
           out O: u8[{n}][{n}];
           var m: u8;
           for i in 1..{hi} {{
             for j in 1..{hi} {{
               {body}
               O[i][j] = m;
             }}
           }}
         }}"
    );
    parse_kernel(&src).expect("generated morphology parses")
}

/// Reference implementation over a flattened `n×n` image; borders stay
/// zero.
pub fn reference(op: Morphology, img: &[i64], n: usize) -> Vec<i64> {
    let mut out = vec![0i64; n * n];
    for i in 1..n - 1 {
        for j in 1..n - 1 {
            let mut m = img[(i - 1) * n + (j - 1)];
            for dv in -1i64..=1 {
                for du in -1i64..=1 {
                    let v = img[((i as i64 + dv) * n as i64 + j as i64 + du) as usize];
                    m = match op {
                        Morphology::Dilate => m.max(v),
                        Morphology::Erode => m.min(v),
                    };
                }
            }
            out[i * n + j] = m;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::image;
    use defacto_ir::run_with_inputs;

    #[test]
    fn dilation_matches_reference() {
        let k = kernel(Morphology::Dilate);
        let img = image(34, 77);
        let (ws, _) = run_with_inputs(&k, &[("I", img.clone())]).unwrap();
        assert_eq!(
            ws.array("O").unwrap(),
            reference(Morphology::Dilate, &img, 34).as_slice()
        );
    }

    #[test]
    fn erosion_matches_reference() {
        let k = kernel(Morphology::Erode);
        let img = image(34, 78);
        let (ws, _) = run_with_inputs(&k, &[("I", img.clone())]).unwrap();
        assert_eq!(
            ws.array("O").unwrap(),
            reference(Morphology::Erode, &img, 34).as_slice()
        );
    }

    #[test]
    fn dilation_grows_bright_spots() {
        let n = 8;
        let mut img = vec![0i64; n * n];
        img[3 * n + 3] = 200;
        let k = kernel_sized(Morphology::Dilate, n);
        let (ws, _) = run_with_inputs(&k, &[("I", img)]).unwrap();
        let o = ws.array("O").unwrap();
        // The 3×3 neighbourhood of (3,3) lights up.
        for i in 2..=4 {
            for j in 2..=4 {
                assert_eq!(o[i * n + j], 200, "({i},{j})");
            }
        }
        assert_eq!(o[n + 1], 0);
    }

    #[test]
    fn erosion_removes_isolated_spots() {
        let n = 8;
        let mut img = vec![100i64; n * n];
        img[3 * n + 3] = 255; // isolated peak disappears under erosion
        let k = kernel_sized(Morphology::Erode, n);
        let (ws, _) = run_with_inputs(&k, &[("I", img)]).unwrap();
        let o = ws.array("O").unwrap();
        assert_eq!(o[3 * n + 3], 100);
    }
}
