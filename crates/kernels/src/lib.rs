//! The five multimedia kernels of the PLDI 2002 DEFACTO evaluation.
//!
//! Each module provides the kernel at the paper's published size, a
//! parameterized generator for scaling studies, a plain-Rust reference
//! implementation used as a semantics oracle, and deterministic random
//! input generators.
//!
//! | module | paper workload |
//! |---|---|
//! | [`fir`]    | integer multiply-accumulate over 32 consecutive elements of a 64-element output (FIR filter) |
//! | [`matmul`] | dense 32×16 by 16×4 integer matrix multiply (MM) |
//! | [`pattern`]| length-16 character pattern match over a length-64 string (PAT) |
//! | [`jacobi`] | 4-point stencil averaging over a 2-D array (JAC) |
//! | [`sobel`]  | 3×3-window edge detection over an integer image (SOBEL) |
//!
//! [`correlation`] and [`morphology`] add the remaining workload classes
//! the paper's introduction names (image correlation, erosion/dilation).

pub mod correlation;
pub mod fir;
pub mod jacobi;
pub mod matmul;
pub mod morphology;
pub mod pattern;
pub mod sobel;
pub mod workload;

use defacto_ir::Kernel;

/// All five paper kernels at their published sizes, with their paper
/// names. The extended suite in [`extended_kernels`] adds the other
/// workloads the paper's introduction motivates.
pub fn paper_kernels() -> Vec<(&'static str, Kernel)> {
    vec![
        ("FIR", fir::kernel()),
        ("MM", matmul::kernel()),
        ("PAT", pattern::kernel()),
        ("JAC", jacobi::kernel()),
        ("SOBEL", sobel::kernel()),
    ]
}

/// Kernel-language sources of the five paper kernels, in the same order
/// and with the same names as [`paper_kernels`] — for tests and tools
/// that drive the CLI with real kernel files.
pub fn paper_kernel_sources() -> Vec<(&'static str, String)> {
    vec![
        ("FIR", fir::source()),
        ("MM", matmul::source()),
        ("PAT", pattern::source()),
        ("JAC", jacobi::source()),
        ("SOBEL", sobel::source()),
    ]
}

/// The paper kernels plus image correlation and erosion/dilation — the
/// full set of application classes named in the paper's introduction.
pub fn extended_kernels() -> Vec<(&'static str, Kernel)> {
    let mut all = paper_kernels();
    all.push(("CORR", correlation::kernel()));
    all.push(("DILATE", morphology::kernel(morphology::Morphology::Dilate)));
    all.push(("ERODE", morphology::kernel(morphology::Morphology::Erode)));
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_build_and_have_perfect_nests() {
        for (name, k) in paper_kernels() {
            let nest = k
                .perfect_nest()
                .unwrap_or_else(|| panic!("{name} is not a perfect nest"));
            assert!(nest.depth() >= 2, "{name}");
            assert!(nest.total_iterations() > 0, "{name}");
        }
    }

    #[test]
    fn kernel_names_match_paper() {
        let names: Vec<&str> = paper_kernels().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["FIR", "MM", "PAT", "JAC", "SOBEL"]);
    }

    #[test]
    fn extended_suite_builds() {
        let all = extended_kernels();
        assert_eq!(all.len(), 8);
        for (name, k) in all {
            assert!(k.perfect_nest().is_some(), "{name}");
        }
    }
}
