//! 2-D image correlation — the first workload the paper's introduction
//! names ("image correlation, Laplacian image operators, erosion/dilation
//! operators and edge detection").
//!
//! A `t×t` template slides over an `n×n` image; each output position
//! accumulates the pointwise product of template and window.

use defacto_ir::{parse_kernel, Kernel};

/// Paper-scale correlation: an 8×8 template over a 24×24 image
/// (16×16 output positions).
pub fn kernel() -> Kernel {
    kernel_sized(24, 8)
}

/// Correlation of a `t×t` template over an `n×n` image.
///
/// # Panics
///
/// Panics if `t == 0` or `t > n`.
pub fn kernel_sized(n: usize, t: usize) -> Kernel {
    assert!(t > 0 && t <= n, "degenerate correlation size");
    let out = n - t;
    let src = format!(
        "kernel correlate {{
           in I: i16[{n}][{n}];
           in T: i16[{t}][{t}];
           inout R: i16[{out}][{out}];
           for y in 0..{out} {{
             for x in 0..{out} {{
               for v in 0..{t} {{
                 for u in 0..{t} {{
                   R[y][x] = R[y][x] + I[y + v][x + u] * T[v][u];
                 }}
               }}
             }}
           }}
         }}"
    );
    parse_kernel(&src).expect("generated correlation parses")
}

/// Reference implementation over flattened row-major arrays.
pub fn reference(image: &[i64], template: &[i64], n: usize, t: usize) -> Vec<i64> {
    let out = n - t;
    let mut r = vec![0i64; out * out];
    for y in 0..out {
        for x in 0..out {
            for v in 0..t {
                for u in 0..t {
                    let acc = r[y * out + x] + image[(y + v) * n + (x + u)] * template[v * t + u];
                    r[y * out + x] = acc as i16 as i64;
                }
            }
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::image;
    use defacto_ir::run_with_inputs;

    #[test]
    fn matches_reference() {
        let k = kernel_sized(12, 4);
        let img: Vec<i64> = image(12, 5).iter().map(|v| v % 16).collect();
        let tpl: Vec<i64> = image(4, 6).iter().map(|v| v % 8).collect();
        let (ws, _) = run_with_inputs(&k, &[("I", img.clone()), ("T", tpl.clone())]).unwrap();
        assert_eq!(
            ws.array("R").unwrap(),
            reference(&img, &tpl, 12, 4).as_slice()
        );
    }

    #[test]
    fn matching_template_peaks_at_its_location() {
        // A template equal to a window of the image correlates maximally
        // there for a non-negative image.
        let n = 10;
        let t = 3;
        let mut img = vec![1i64; n * n];
        // Bright blob at (4,5).
        for v in 0..t {
            for u in 0..t {
                img[(4 + v) * n + 5 + u] = 9;
            }
        }
        let tpl = vec![9i64; t * t];
        let k = kernel_sized(n, t);
        let (ws, _) = run_with_inputs(&k, &[("I", img.clone()), ("T", tpl.clone())]).unwrap();
        let r = ws.array("R").unwrap();
        let out = n - t;
        let (best, _) = r.iter().enumerate().max_by_key(|(_, &v)| v).unwrap();
        assert_eq!((best / out, best % out), (4, 5));
    }

    #[test]
    fn four_deep_nest() {
        let k = kernel();
        let nest = k.perfect_nest().unwrap();
        assert_eq!(nest.depth(), 4);
        assert_eq!(nest.trip_counts(), vec![16, 16, 8, 8]);
    }
}
