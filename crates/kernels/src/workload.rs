//! Deterministic synthetic workload generators.
//!
//! The paper's kernels run on multimedia data — signals, images, text.
//! These generators produce deterministic pseudo-random inputs of the
//! right value ranges, seeded so every experiment is reproducible. The
//! generator is a self-contained SplitMix64 so workloads are identical
//! across platforms and independent of any external RNG crate.

/// SplitMix64: tiny, fast, and well-distributed for workload synthesis.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `lo..=hi`.
    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        let span = (hi - lo + 1) as u64;
        lo + (self.next_u64() % span) as i64
    }
}

/// A signed 16-bit-ish signal of `n` samples in `[-1000, 1000]`.
pub fn signal(n: usize, seed: u64) -> Vec<i64> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.range(-1000, 1000)).collect()
}

/// An 8-bit grayscale image of `n×n` pixels with smooth gradients plus
/// noise — flat images make edge detectors trivially zero, so a plain
/// uniform generator would under-exercise SOBEL.
pub fn image(n: usize, seed: u64) -> Vec<i64> {
    let mut rng = SplitMix64::new(seed);
    let mut out = Vec::with_capacity(n * n);
    for i in 0..n {
        for j in 0..n {
            let gradient = (i * 255 / n.max(1) + j * 127 / n.max(1)) as i64;
            let noise = rng.range(-20, 20);
            out.push((gradient + noise).clamp(0, 255));
        }
    }
    out
}

/// Text over a 4-letter alphabet (small alphabets make pattern matches
/// frequent enough to exercise every counter).
pub fn text(n: usize, seed: u64) -> Vec<i64> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.range(97, 100)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(signal(16, 1), signal(16, 1));
        assert_eq!(image(8, 2), image(8, 2));
        assert_eq!(text(32, 3), text(32, 3));
        assert_ne!(signal(16, 1), signal(16, 2));
    }

    #[test]
    fn value_ranges() {
        assert!(signal(100, 5).iter().all(|&v| (-1000..=1000).contains(&v)));
        assert!(image(10, 5).iter().all(|&v| (0..=255).contains(&v)));
        assert!(text(100, 5).iter().all(|&v| (97..=100).contains(&v)));
    }

    #[test]
    fn image_has_edges() {
        let img = image(16, 9);
        // Not flat: some adjacent pixels differ.
        assert!(img.windows(2).any(|w| w[0] != w[1]));
    }
}
